"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflows of the paper's evaluation:

- ``list-apps`` — the 45-application workload and its classifications.
- ``characterize APP...`` — the Section 3 studies for named apps.
- ``run-solo APP`` — one application, one allocation, full measurements.
- ``consolidate FG BG`` — compare shared/fair/biased (+ optionally UCP or
  the dynamic controller) on either backend (``--backend analytical`` runs
  the interval engine over application models; ``--backend trace`` runs
  the same policy code over address-level trace replay).
- ``dynamic FG BG`` — run the Algorithm 6.1/6.2 controller, print its trace.
- ``figure ID`` — regenerate a paper figure/table (1, 2, ..., 13, headline).
- ``trace-sweep`` — way-allocation utility curves from one profiled replay.
- ``trace-dynamic`` — the dynamic controller driving an address-level
  trace co-run through the epoch-resumable replay kernel.
- ``campaign plan|run|summarize`` — fleet-scale experiment grids:
  expand a JSON manifest into content-addressed cells, execute them as
  batched roster shards into a resumable multi-shard store, reduce the
  store back into the compare/render pipeline.
"""

import argparse
import sys

from repro.analysis import Characterizer, ConsolidationStudy
from repro.analysis.classify import classify_llc_utility, classify_scalability
from repro.sim import Machine
from repro.util.errors import ReproError, ValidationError
from repro.util.tables import format_table
from repro.workloads import all_applications, get_application


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Cook et al., ISCA 2013 (cache partitioning).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listp = sub.add_parser("list-apps", help="list the workload")
    listp.add_argument("--suite", default=None)

    char = sub.add_parser("characterize", help="Section 3 studies")
    char.add_argument("apps", nargs="+")

    desc = sub.add_parser("describe", help="show an application's model")
    desc.add_argument("apps", nargs="+")

    solo = sub.add_parser("run-solo", help="run one application alone")
    solo.add_argument("app")
    solo.add_argument("--threads", type=int, default=4)
    solo.add_argument("--ways", type=int, default=12)

    cons = sub.add_parser("consolidate", help="compare partitioning policies")
    cons.add_argument(
        "fg",
        help="foreground application (or trace kind with --backend trace)",
    )
    cons.add_argument(
        "bg",
        help="background application (or trace kind with --backend trace)",
    )
    cons.add_argument("--ucp", action="store_true", help="include the UCP baseline")
    cons.add_argument(
        "--backend",
        default="analytical",
        choices=("analytical", "trace"),
        help="simulation substrate: the statistical interval engine, or "
        "address-level trace replay (fg/bg name synthetic trace kinds)",
    )
    cons.add_argument(
        "--dynamic",
        action="store_true",
        help="also run the Algorithm 6.2 dynamic controller",
    )
    cons.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the outcomes as a versioned run-set JSON "
        "(diffable with 'repro compare')",
    )
    cons.add_argument(
        "--check",
        action="store_true",
        help="(trace backend) cross-validate the policy layer's shared/"
        "fair runs against direct way-mask replay (non-zero on mismatch)",
    )
    cons.add_argument(
        "--accesses", type=int, default=60_000,
        help="(trace backend) accesses per workload",
    )
    cons.add_argument(
        "--footprint-mb", type=float, default=4.0,
        help="(trace backend) foreground footprint",
    )
    cons.add_argument(
        "--alpha", type=float, default=0.9, help="(trace backend) zipf skew"
    )
    cons.add_argument(
        "--seed", type=int, default=1, help="(trace backend) trace seed"
    )
    cons.add_argument(
        "--tenants",
        nargs="+",
        default=None,
        metavar="NAME",
        help="additional co-running tenants beyond fg/bg: the policies "
        "run over the full N-tenant group (group way-partitioning) "
        "instead of the two-tenant pair",
    )

    dyn = sub.add_parser("dynamic", help="run the dynamic controller")
    dyn.add_argument("fg")
    dyn.add_argument("bg", nargs="+")
    dyn.add_argument(
        "--actions",
        type=int,
        default=25,
        help="reallocation actions to print (0 = all)",
    )

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("id", help="1..13 or 'headline'")
    fig.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for expensive sweeps (default: REPRO_WORKERS or 1)",
    )

    rep = sub.add_parser("report", help="full paper-vs-measured report")
    rep.add_argument("--output", default=None, help="write to a file")

    ev = sub.add_parser("evaluate", help="run the evaluation, keep artifacts")
    ev.add_argument("--output", default="results", help="artifact directory")
    ev.add_argument("--stages", nargs="*", default=None)
    ev.add_argument("--force", action="store_true")
    ev.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for expensive sweeps (default: REPRO_WORKERS or 1)",
    )

    sweep = sub.add_parser(
        "trace-sweep",
        help="way-allocation sweep from one profiled replay (UMON-style)",
    )
    from repro.workloads.trace import trace_kinds

    sweep.add_argument(
        "--trace",
        default="zipf",
        choices=tuple(trace_kinds()),
        help="synthetic trace kind for the profiled workload",
    )
    sweep.add_argument("--accesses", type=int, default=60_000)
    sweep.add_argument("--footprint-mb", type=float, default=4.0)
    sweep.add_argument("--alpha", type=float, default=0.9, help="zipf skew")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--ways",
        default=None,
        help="comma-separated allocations to report (default 1..12)",
    )
    sweep.add_argument(
        "--co-run",
        action="store_true",
        help="profile the trace co-running with a streaming background "
        "through the full hierarchy instead of standalone",
    )
    sweep.add_argument(
        "--check",
        action="store_true",
        help="verify the profile against brute-force per-mask re-simulation "
        "(exits non-zero on any mismatch)",
    )
    sweep.add_argument(
        "--no-pack",
        action="store_true",
        help="bypass the compiled trace-pack cache and replay the "
        "generator directly (slower; for cross-checking the pack path)",
    )
    sweep.add_argument(
        "--engine-stat",
        action="store_true",
        help="print the engine's own perf-stat block (pack cache "
        "hits/misses, profiler passes) after the sweep",
    )
    sweep.add_argument(
        "--domains",
        type=int,
        default=2,
        help="co-running domains including the foreground (2-4; "
        "requires --co-run)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the --check fan-out "
        "(default: REPRO_WORKERS or 1)",
    )
    sweep.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the per-split profile scores as a versioned run-set "
        "JSON (2-domain co-run only)",
    )

    tdyn = sub.add_parser(
        "trace-dynamic",
        help="dynamic controller over an address-level trace co-run "
        "(epoch-resumable replay, flush-free reallocation)",
    )
    tdyn.add_argument(
        "--trace",
        default="chase",
        choices=tuple(trace_kinds()),
        help="synthetic trace kind for the foreground",
    )
    tdyn.add_argument("--accesses", type=int, default=12_000)
    tdyn.add_argument("--footprint-mb", type=float, default=8.0)
    tdyn.add_argument("--alpha", type=float, default=0.9, help="zipf skew")
    tdyn.add_argument("--seed", type=int, default=7)
    tdyn.add_argument(
        "--epoch-accesses",
        type=int,
        default=4_000,
        help="combined accesses per control epoch",
    )
    tdyn.add_argument("--total-accesses", type=int, default=200_000)
    tdyn.add_argument(
        "--actions",
        type=int,
        default=25,
        help="timeline entries to print (0 = all)",
    )
    tdyn.add_argument(
        "--engine-stat",
        action="store_true",
        help="print the engine's own perf-stat block after the run",
    )
    tdyn.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the dynamic outcome as a versioned run-set JSON",
    )

    tclu = sub.add_parser(
        "trace-cluster",
        help="LFOC-style clustering policy over an N-tenant trace group "
        "(profile way utility, classify, apportion, replay)",
    )
    tclu.add_argument(
        "--tenants",
        nargs="+",
        default=["zipf", "stream", "chase", "stream"],
        metavar="KIND",
        choices=tuple(trace_kinds()),
        help="2-4 synthetic trace kinds, one replay domain each "
        "(repeats allowed; the first is the primary tenant)",
    )
    tclu.add_argument("--accesses", type=int, default=60_000)
    tclu.add_argument("--footprint-mb", type=float, default=4.0)
    tclu.add_argument(
        "--bg-footprint-mb", type=float, default=8.0,
        help="footprint of every tenant after the first",
    )
    tclu.add_argument("--alpha", type=float, default=0.9, help="zipf skew")
    tclu.add_argument("--seed", type=int, default=1)
    tclu.add_argument(
        "--check",
        action="store_true",
        help="verify the batched group replay bit-identically against a "
        "sequential per-tenant reference engine (non-zero on mismatch)",
    )
    tclu.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the cluster outcome as a versioned run-set JSON",
    )

    cmp_ = sub.add_parser(
        "compare",
        help="diff two evaluate artifact directories, run-set JSON "
        "files, or multi-shard campaign stores",
    )
    cmp_.add_argument("before")
    cmp_.add_argument("after")
    cmp_.add_argument("--stages", nargs="*", default=["headline"])
    cmp_.add_argument("--tolerance", type=float, default=0.02)
    cmp_.add_argument(
        "--fail-on-moved",
        action="store_true",
        help="exit non-zero when any metric moved beyond tolerance (or "
        "any record exists on only one side) — the CI regression gate",
    )

    camp = sub.add_parser(
        "campaign",
        help="fleet-scale experiment campaigns (plan / run / summarize)",
    )
    campsub = camp.add_subparsers(dest="campaign_command", required=True)

    cplan = campsub.add_parser(
        "plan", help="expand a manifest and report the shard plan"
    )
    cplan.add_argument("manifest", help="campaign manifest JSON")
    cplan.add_argument(
        "--dry-run",
        action="store_true",
        help="planning never executes cells; this flag is accepted for "
        "symmetry with 'campaign run'",
    )
    cplan.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="count cells already persisted in this store as skipped",
    )
    cplan.add_argument("--shard-size", type=int, default=None)
    cplan.add_argument("--fallback-shard-size", type=int, default=None)

    crun = campsub.add_parser(
        "run", help="execute a campaign into a multi-shard run-set store"
    )
    crun.add_argument("manifest", help="campaign manifest JSON")
    crun.add_argument(
        "--store", required=True, metavar="DIR",
        help="directory of RunSet shard files (the checkpoint store)",
    )
    crun.add_argument(
        "--resume",
        action="store_true",
        help="skip every cell whose record the store already holds",
    )
    crun.add_argument(
        "--check",
        action="store_true",
        help="after running, re-execute every cell sequentially and "
        "require exact metric agreement (non-zero on mismatch)",
    )
    crun.add_argument(
        "--check-stride", type=int, default=1,
        help="with --check, verify every Nth cell (default: all)",
    )
    crun.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the merged records as one run-set JSON",
    )
    crun.add_argument("--workers", type=int, default=None)
    crun.add_argument(
        "--threads", type=int, default=None,
        help="native kernel threads per roster shard "
        "(default: REPRO_NATIVE_THREADS or all usable CPUs)",
    )
    crun.add_argument("--shard-size", type=int, default=None)
    crun.add_argument("--fallback-shard-size", type=int, default=None)
    crun.add_argument("--max-attempts", type=int, default=None)
    crun.add_argument(
        "--no-roster",
        action="store_true",
        help="force the sequential per-cell path (the benchmark baseline)",
    )
    crun.add_argument(
        "--stop-after-shards", type=int, default=None,
        help="checkpoint and exit after N shards (resume later)",
    )
    crun.add_argument(
        "--engine-stat",
        action="store_true",
        help="print the engine's own perf-stat block afterwards",
    )

    csum = campsub.add_parser(
        "summarize", help="reduce a campaign store into a report"
    )
    csum.add_argument("store", help="campaign store directory")
    csum.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the summary as JSON instead of text",
    )

    return parser


def _cmd_list_apps(args, out):
    apps = all_applications()
    if args.suite:
        apps = [a for a in apps if a.suite == args.suite]
    rows = [
        (
            a.name,
            a.suite,
            a.expected_scalability_class,
            a.expected_llc_class,
            "yes" if a.bandwidth_sensitive else "no",
            f"{a.llc_apki:g}",
        )
        for a in apps
    ]
    out.write(
        format_table(
            ["application", "suite", "scalability", "LLC utility", "bw-sensitive", "APKI"],
            rows,
        )
        + "\n"
    )


def _cmd_characterize(args, out):
    characterizer = Characterizer()
    rows = []
    for name in args.apps:
        app = get_application(name)
        scal = characterizer.scalability_curve(app)
        llc = characterizer.llc_curve(app)
        rows.append(
            (
                name,
                f"{scal[max(scal)]:.2f}x",
                classify_scalability(scal),
                f"{llc[2] / llc[12]:.2f}x",
                classify_llc_utility(llc),
                f"{characterizer.prefetch_sensitivity(app):.2f}",
                f"{characterizer.bandwidth_sensitivity(app):.2f}",
            )
        )
    out.write(
        format_table(
            ["app", "speedup", "scal class", "1MB/6MB", "LLC class", "pf", "vs hog"],
            rows,
        )
        + "\n"
    )


def _cmd_describe(args, out):
    import pprint

    from repro.workloads.describe import describe, validate_model_consistency

    for name in args.apps:
        out.write(pprint.pformat(describe(name), width=90, sort_dicts=False) + "\n")
        findings = validate_model_consistency(name)
        out.write(
            ("model consistency: OK" if not findings else f"findings: {findings}")
            + "\n"
        )


def _cmd_run_solo(args, out):
    machine = Machine()
    app = get_application(args.app)
    threads = 1 if app.scalability.single_threaded else args.threads
    result = machine.run_solo(app, threads=threads, ways=args.ways)
    out.write(
        format_table(
            ["metric", "value"],
            [
                ("runtime (s)", f"{result.runtime_s:.2f}"),
                ("instructions", f"{result.instructions:.3e}"),
                ("MPKI", f"{result.mpki:.2f}"),
                ("socket energy (kJ)", f"{result.socket_energy_j / 1e3:.2f}"),
                ("wall energy (kJ)", f"{result.wall_energy_j / 1e3:.2f}"),
            ],
            title=f"{app.name}: {threads} threads, {args.ways} ways",
        )
        + "\n"
    )


def _write_runset(outcomes, capabilities, path, out, meta=None):
    from repro.analysis.store import runset_from_outcomes, save_runset

    runset = runset_from_outcomes(
        outcomes, capabilities=capabilities, meta=meta
    )
    count = save_runset(runset, path)
    out.write(f"run set: {count} records -> {path}\n")


def _group_policy_list(args, include_cluster=True):
    policies = ["shared", "fair", "biased"]
    if include_cluster:
        policies.append("cluster")
    if args.dynamic:
        policies.append("dynamic")
    return policies


def _consolidate_group(args, out):
    """``consolidate --tenants``: run the policies over an N-tenant
    group (fg, bg, and the extra tenants) instead of the pair."""
    from repro.core.policies import run_group_policy

    names = [args.fg, args.bg] + list(args.tenants)
    if args.backend == "trace":
        from repro.analysis.experiments import trace_group_spec
        from repro.backend import TraceBackend
        from repro.workloads.trace import trace_kinds

        kinds = tuple(trace_kinds())
        for name in names:
            if name not in kinds:
                raise ValidationError(
                    f"--backend trace takes synthetic trace kinds {kinds}; "
                    f"got {name!r}"
                )
        backend = TraceBackend(total_accesses=args.accesses)
        group = trace_group_spec(
            names,
            accesses=args.accesses,
            footprint_mb=args.footprint_mb,
            alpha=args.alpha,
            seed=args.seed,
        )
    else:
        from repro.backend import AnalyticalBackend

        backend = AnalyticalBackend()
        group = AnalyticalBackend.group_spec(names)
    outcomes = [
        run_group_policy(backend, group, p) for p in _group_policy_list(args)
    ]
    caps = backend.capabilities()
    rows = [
        (
            o.policy,
            "/".join(str(c) for c in o.split.way_counts),
            f"{o.fg_cost:.4g}",
            f"{o.bg_rate:.4g}",
        )
        for o in outcomes
    ]
    out.write(
        format_table(
            [
                "policy",
                "ways per tenant",
                f"fg cost ({caps.fg_cost_unit})",
                f"peers ({caps.bg_rate_unit})",
            ],
            rows,
            title=" + ".join(group.names) + f" — {args.backend} backend",
        )
        + "\n"
    )
    if args.check:
        if args.backend != "trace":
            raise ValidationError("--check needs --backend trace")
        from repro.analysis.experiments import verify_trace_group_replay

        checked = sum(
            verify_trace_group_replay(backend, group, o)
            for o in outcomes
            if o.policy != "dynamic"  # timeline-driven, not one fixed split
        )
        out.write(
            f"check: group replay agrees with sequential per-tenant "
            f"reference ({checked} comparisons)\n"
        )
    if args.json:
        _write_runset(
            outcomes,
            caps,
            args.json,
            out,
            meta={"source": "consolidate", "tenants": list(group.names)},
        )


def _cmd_consolidate(args, out):
    if args.tenants:
        _consolidate_group(args, out)
        return
    if args.backend == "trace":
        _consolidate_trace(args, out)
        return
    from repro.backend import AnalyticalBackend
    from repro.core.policies import run_policy_on

    machine = Machine()
    fg = get_application(args.fg)
    bg = get_application(args.bg)
    backend = AnalyticalBackend(machine)
    spec = AnalyticalBackend.pair_spec(fg, bg)
    threads = 1 if fg.scalability.single_threaded else 4
    solo = machine.run_solo(fg, threads=threads)
    policies = ["shared", "fair", "biased"]
    if args.dynamic:
        policies.append("dynamic")
    outcomes = [run_policy_on(backend, spec, p) for p in policies]
    if args.ucp:
        from repro.core.ucp import run_ucp

        outcomes.append(run_ucp(machine, fg, bg))
    rows = [
        (
            o.policy,
            f"{o.fg_ways}/{o.bg_ways}",
            f"{o.fg_runtime_s / solo.runtime_s:.3f}",
            f"{o.bg_rate_ips / 1e9:.2f}",
        )
        for o in outcomes
    ]
    out.write(
        format_table(
            ["policy", "fg/bg ways", "fg slowdown", "bg Ginstr/s"],
            rows,
            title=f"{fg.name} (fg) + {bg.name} (bg)",
        )
        + "\n"
    )
    if args.json:
        _write_runset(
            outcomes,
            backend.capabilities(),
            args.json,
            out,
            meta={"source": "consolidate", "fg": fg.name, "bg": bg.name},
        )


def _consolidate_trace(args, out):
    from repro.analysis.experiments import (
        trace_pair_spec,
        verify_trace_policy_replay,
    )
    from repro.backend import TraceBackend
    from repro.core.policies import run_policy_on
    from repro.workloads.trace import trace_kinds

    kinds = tuple(trace_kinds())
    for name in (args.fg, args.bg):
        if name not in kinds:
            raise ValidationError(
                f"--backend trace takes synthetic trace kinds {kinds}; "
                f"got {name!r}"
            )
    backend = TraceBackend(total_accesses=args.accesses)
    spec = trace_pair_spec(
        args.fg,
        args.bg,
        accesses=args.accesses,
        footprint_mb=args.footprint_mb,
        alpha=args.alpha,
        seed=args.seed,
    )
    policies = ["shared", "fair", "biased"]
    if args.dynamic:
        policies.append("dynamic")
    outcomes = [run_policy_on(backend, spec, p) for p in policies]
    rows = [
        (
            o.policy,
            f"{o.fg_ways}/{o.bg_ways}",
            f"{o.fg_cost:.2f}",
            f"{o.bg_rate:.2f}",
        )
        for o in outcomes
    ]
    out.write(
        format_table(
            ["policy", "fg/bg ways", "fg cyc/access", "bg acc/kcycle"],
            rows,
            title=f"{spec.fg_name} (fg) + {spec.bg_name} (bg) — trace backend",
        )
        + "\n"
    )
    if args.check:
        checked = verify_trace_policy_replay(backend, spec)
        out.write(
            f"check: policy layer agrees with direct way-mask replay "
            f"({checked} comparisons)\n"
        )
    if args.json:
        _write_runset(
            outcomes,
            backend.capabilities(),
            args.json,
            out,
            meta={
                "source": "consolidate",
                "fg": spec.fg_name,
                "bg": spec.bg_name,
                "accesses": args.accesses,
            },
        )


def _cmd_dynamic(args, out):
    from repro.core.dynamic import DynamicPartitionController

    machine = Machine()
    fg = get_application(args.fg)
    backgrounds = [get_application(n) for n in args.bg]
    if len(backgrounds) == 1:
        from repro.backend import AnalyticalBackend
        from repro.core.policies import policy_dynamic

        backend = AnalyticalBackend(machine)
        outcome = policy_dynamic(
            backend, AnalyticalBackend.pair_spec(fg, backgrounds[0])
        )
        pair = outcome.pair
        controller = outcome.measurement.extra["controller"]
        bg_rate = pair.bg_rate_ips
    else:
        from repro.sim.allocation import Allocation

        names = [b.name for b in backgrounds]
        controller = DynamicPartitionController(fg.name, names)
        masks = controller.masks()
        fg_alloc = Allocation(
            threads=1 if fg.scalability.single_threaded else 4,
            cores=(0, 1),
            mask=masks[fg.name],
        )
        bg_allocs = [
            Allocation(
                threads=1 if b.scalability.single_threaded else 2,
                cores=(2 + i,),
                mask=masks[b.name],
            )
            for i, b in enumerate(backgrounds[:2])
        ]
        group = machine.run_group(
            fg, backgrounds[:2], fg_alloc, bg_allocs, controller=controller
        )
        pair = group
        bg_rate = group.bg_rate_ips
    from repro.analysis.render import render_controller_actions

    out.write(
        render_controller_actions(controller.actions, limit=args.actions)
        + "\n"
    )
    out.write(
        f"fg runtime {pair.fg.runtime_s:.1f} s; background {bg_rate / 1e9:.2f} "
        f"Ginstr/s; {len(controller.actions)} reallocations\n"
    )


def _cmd_figure(args, out):
    from repro.analysis import experiments as ex
    from repro.analysis import render
    from repro.workloads.registry import REPRESENTATIVES

    from repro.exec import resolve_workers

    machine = Machine()
    characterizer = Characterizer(machine)
    study = ConsolidationStudy(machine)
    subset = sorted(REPRESENTATIVES.values())
    workers = args.workers
    if args.id in ("9", "10", "11", "13", "headline") and resolve_workers(workers) > 1:
        study.warm(workers=workers)
    dispatch = {
        "1": lambda: render.render_fig01(
            ex.fig01_thread_scalability(characterizer)
        ),
        "2": lambda: render.render_fig02(ex.fig02_llc_sensitivity(characterizer)),
        "3": lambda: render.render_sensitivity(
            ex.fig03_prefetch_sensitivity(characterizer),
            "Fig. 3 — prefetcher sensitivity",
            "time(on)/time(off)",
        ),
        "4": lambda: render.render_sensitivity(
            ex.fig04_bandwidth_sensitivity(characterizer),
            "Fig. 4 — bandwidth sensitivity",
            "time(hog)/time(alone)",
        ),
        "5": lambda: render.render_fig05(ex.fig05_clustering(characterizer)),
        "6": lambda: render.render_fig06(
            ex.fig06_allocation_space(
                characterizer,
                thread_counts=(1, 2, 4, 8),
                way_counts=(2, 4, 6, 9, 12),
                workers=workers,
            )
        ),
        "7": lambda: render.render_fig06(
            ex.fig06_allocation_space(
                characterizer,
                thread_counts=(1, 2, 4, 8),
                way_counts=(2, 4, 6, 9, 12),
                workers=workers,
            )
        ),
        "8": lambda: render.render_fig08(
            ex.fig08_pairwise_slowdowns(machine, subset, workers=workers)
        ),
        "9": lambda: render.render_policy_rows(
            ex.fig09_partitioning_policies(study), "Fig. 9 — fg slowdown by policy"
        ),
        "10": lambda: render.render_policy_rows(
            ex.fig10_consolidation_energy(study),
            "Fig. 10 — energy vs sequential",
        ),
        "11": lambda: render.render_policy_rows(
            ex.fig11_weighted_speedup(study), "Fig. 11 — weighted speedup",
            value_format="{:.2f}",
        ),
        "12": lambda: render.render_fig12(
            ex.fig12_mcf_phases(machine, way_counts=(2, 9, 12))
        ),
        "13": lambda: render.render_fig13(
            ex.fig13_dynamic_background_throughput(study)
        ),
        "headline": lambda: render.render_headline(ex.headline_numbers(study)),
    }
    if args.id not in dispatch:
        raise ReproError(f"unknown figure {args.id!r}; pick 1..13 or 'headline'")
    out.write(dispatch[args.id]() + "\n")


def _cmd_report(args, out):
    from repro.analysis.report import generate_report

    text = generate_report()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        out.write(f"report written to {args.output}\n")
    else:
        out.write(text + "\n")


def _cmd_evaluate(args, out):
    from repro.analysis.batch import EvaluationRunner

    runner = EvaluationRunner(args.output, workers=args.workers)
    written = runner.run(stages=args.stages, force=args.force)
    for stage, path in written.items():
        out.write(f"{stage}: {path}\n")


def _trace_factory(args, length=None, tid=0):
    """A picklable factory for the CLI-selected trace (``functools.partial``
    of the registry constructor, so process-pool checks can ship it)."""
    from repro.analysis.experiments import trace_kind_factory

    return trace_kind_factory(
        args.trace,
        length if length is not None else args.accesses,
        footprint_mb=args.footprint_mb,
        alpha=args.alpha,
        seed=args.seed,
        tid=tid,
    )


def _cmd_trace_sweep(args, out):
    from repro.analysis.experiments import (
        background_factories,
        trace_way_utility,
        verify_trace_domains,
    )
    from repro.analysis.render import render_trace_sweep
    from repro.cache.profile import WaySweep, verify_profile

    if args.domains != 2 and not args.co_run:
        raise ValidationError("--domains needs --co-run")
    way_counts = (
        [int(w) for w in args.ways.split(",")] if args.ways else None
    )
    factory = _trace_factory(args)
    use_packs = not args.no_pack
    if args.co_run:
        data = trace_way_utility(
            fg_factory=factory, use_packs=use_packs, domains=args.domains
        )
        out.write(render_trace_sweep(data) + "\n")
    else:
        if use_packs:
            from repro.workloads.tracepack import get_pack

            curve = WaySweep().run_pack(get_pack(factory()))[0]
        else:
            curve = WaySweep().run_single(factory)
        data = {"curves": {args.trace: curve}}
        out.write(
            render_trace_sweep(
                data, title=f"Way-utility curve — {args.trace} (one profiled pass)"
            )
            + "\n"
        )
    if args.check:
        if args.co_run:
            factories = [factory] + [
                f for _, f, _, _ in background_factories(args.domains)
            ]
            cells = verify_trace_domains(
                factories, way_counts=way_counts, workers=args.workers,
                use_packs=use_packs,
            )
            out.write(
                f"check: profiled hits match per-mask re-simulation for "
                f"{len(cells)} domains x {len(cells[0])} allocations\n"
            )
        else:
            rows = verify_profile(
                factory, way_counts=way_counts, backend="kernel",
                use_pack=use_packs,
            )
            out.write(
                f"check: profiled hits match per-mask re-simulation at "
                f"{len(rows)} allocations\n"
            )
    if args.json:
        from repro.analysis.store import save_runset

        count = save_runset(_sweep_runset(data, args), args.json)
        out.write(f"run set: {count} records -> {args.json}\n")
    if args.engine_stat:
        from repro.perf.stat import format_engine_stat

        out.write(format_engine_stat() + "\n")


def _sweep_runset(data, args):
    """Per-allocation profile scores as a run set (one record per split,
    ``policy='static-NN'``), so two sweeps — e.g. native vs pure-Python
    kernels — can be diffed with ``repro compare``."""
    from repro import __version__
    from repro.analysis.store import RunRecord, RunSet
    from repro.cache.profile import LLC_NUM_WAYS

    curves = data["curves"]
    records = []
    if args.co_run:
        fg_curve = curves["fg"]
        bg_curve = curves["bg"]
        for fg_ways in range(1, LLC_NUM_WAYS):
            bg_ways = LLC_NUM_WAYS - fg_ways
            records.append(
                RunRecord(
                    policy=f"static-{fg_ways:02d}",
                    backend="trace",
                    fg=args.trace,
                    bg="bg",
                    fg_ways=fg_ways,
                    bg_ways=bg_ways,
                    metrics={
                        "fg_cost": float(fg_curve.misses(fg_ways)),
                        "bg_rate": float(bg_curve.hits(bg_ways)),
                        "fg_ways": float(fg_ways),
                        "bg_ways": float(bg_ways),
                    },
                    units={"fg_cost": "misses", "bg_rate": "hits"},
                    provenance={"source": "profile", "domains": args.domains},
                )
            )
    else:
        curve = curves[args.trace]
        for ways in range(1, LLC_NUM_WAYS + 1):
            records.append(
                RunRecord(
                    policy=f"static-{ways:02d}",
                    backend="trace",
                    fg=args.trace,
                    bg="-",
                    fg_ways=ways,
                    bg_ways=LLC_NUM_WAYS - ways,
                    metrics={
                        "fg_cost": float(curve.misses(ways)),
                        "fg_ways": float(ways),
                    },
                    units={"fg_cost": "misses"},
                    provenance={"source": "profile"},
                )
            )
    return RunSet(
        records=records,
        backend="trace",
        model_version=__version__,
        meta={"source": "trace-sweep", "trace": args.trace},
    )


def _cmd_trace_dynamic(args, out):
    import functools

    from repro.analysis.render import render_dynamic_timeline
    from repro.backend import TraceBackend
    from repro.core.policies import policy_dynamic
    from repro.util.units import MB
    from repro.workloads.trace import make_trace

    backend = TraceBackend(
        total_accesses=args.accesses,
        epoch_accesses=args.epoch_accesses,
        dynamic_total_accesses=args.total_accesses,
    )
    spec = TraceBackend.pair_spec(
        _trace_factory(args, tid=0),
        functools.partial(
            make_trace, "stream", args.accesses, int(8 * MB), tid=4
        ),
    )
    outcome = policy_dynamic(backend, spec)
    result = outcome.measurement.extra["result"]
    out.write(render_dynamic_timeline(result, limit=args.actions) + "\n")
    if args.json:
        _write_runset(
            [outcome],
            backend.capabilities(),
            args.json,
            out,
            meta={
                "source": "trace-dynamic",
                "trace": args.trace,
                "total_accesses": args.total_accesses,
            },
        )
    if args.engine_stat:
        from repro.perf.stat import format_engine_stat

        out.write(format_engine_stat() + "\n")


def _cmd_trace_cluster(args, out):
    from repro.analysis.experiments import (
        trace_group_spec,
        verify_trace_group_replay,
    )
    from repro.backend import TraceBackend
    from repro.core.policies import run_group_policy

    backend = TraceBackend(total_accesses=args.accesses)
    group = trace_group_spec(
        args.tenants,
        accesses=args.accesses,
        footprint_mb=args.footprint_mb,
        alpha=args.alpha,
        seed=args.seed,
        bg_footprint_mb=args.bg_footprint_mb,
    )
    outcome = run_group_policy(backend, group, "cluster")
    plan = outcome.plan
    split = outcome.split
    m = outcome.measurement
    rows = [
        (
            name,
            plan.classes[name] if plan else "?",
            str(split.way_counts[i]),
            f"0x{split.mask_bits[i]:03x}",
            f"{m.costs[i]:.4f}",
            f"{m.rates[i]:.4f}",
        )
        for i, name in enumerate(outcome.names)
    ]
    out.write(
        format_table(
            [
                "tenant",
                "class",
                "ways",
                "mask",
                "cyc/access",
                "acc/kcycle",
            ],
            rows,
            title="LFOC-style cluster apportioning — trace backend",
        )
        + "\n"
    )
    if plan:
        clusters = ", ".join(
            f"{label}[{'+'.join(members)}]={ways}w"
            for label, members, ways in plan.clusters
        )
        out.write(f"clusters (bottom-up): {clusters}\n")
    if args.check:
        checked = verify_trace_group_replay(backend, group, outcome)
        out.write(
            f"check: batched group replay agrees with sequential "
            f"per-tenant reference ({checked} comparisons)\n"
        )
    if args.json:
        _write_runset(
            [outcome],
            backend.capabilities(),
            args.json,
            out,
            meta={
                "source": "trace-cluster",
                "tenants": list(group.names),
                "accesses": args.accesses,
            },
        )


def _is_runset_side(path):
    """True when ``path`` is run-set shaped: a run-set JSON file, or a
    directory of run-set shard files (a campaign store)."""
    import json
    import os

    if os.path.isfile(path):
        return True
    if not os.path.isdir(path):
        return False
    from repro.analysis.store import list_runset_shards

    for shard in list_runset_shards(path):
        try:
            with open(shard) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return False
        return isinstance(payload, dict) and "runset_version" in payload
    return False


def _cmd_compare(args, out):
    from repro.analysis.compare import diff_runsets, format_deltas, regressions

    if _is_runset_side(args.before) or _is_runset_side(args.after):
        # Run-set JSON files or campaign stores (possibly mixed).
        moved, checked, unmatched = diff_runsets(
            args.before, args.after, tolerance=args.tolerance
        )
        if unmatched:
            out.write(
                "only on one side: "
                + ", ".join(
                    "{}:{}".format(key[0], "+".join(key[1:]))
                    for key in unmatched
                )
                + "\n"
            )
        if moved:
            out.write(format_deltas(moved) + "\n")
            out.write(
                f"{len(moved)} of {checked} comparable metrics moved "
                "beyond tolerance\n"
            )
        else:
            out.write(
                f"all {checked} comparable metrics agree within "
                f"{args.tolerance:.0%}\n"
            )
        if args.fail_on_moved and (moved or unmatched):
            raise SystemExit(1)
        return
    moved, checked = regressions(
        args.before, args.after, stages=args.stages, tolerance=args.tolerance
    )
    if moved:
        out.write(format_deltas(moved) + "\n")
        out.write(f"{len(moved)} of {checked} metrics moved beyond tolerance\n")
    else:
        out.write(f"all {checked} metrics agree within {args.tolerance:.0%}\n")
    if args.fail_on_moved and moved:
        raise SystemExit(1)


def _load_campaign_manifest(path):
    """Load a manifest; unknown keys are a *usage* error (exit 2), the
    same contract as ``bench_smoke --only`` with an unknown arm."""
    from repro.campaign import UnknownManifestKey, load_manifest

    try:
        return load_manifest(path)
    except UnknownManifestKey as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _campaign_axis_lines(cells):
    from repro.campaign.manifest import axis_counts

    lines = []
    counts = axis_counts(cells)
    for axis in ("backend", "policy", "pair", "tenants", "geometry"):
        if axis not in counts:
            continue
        rendered = ", ".join(
            f"{value}={count}" for value, count in sorted(counts[axis].items())
        )
        lines.append(f"  by {axis}: {rendered}")
    return lines


def _cmd_campaign_plan(args, out):
    from repro.campaign import expand_manifest, plan_shards
    from repro.campaign.planner import (
        DEFAULT_FALLBACK_SHARD_SIZE,
        DEFAULT_SHARD_SIZE,
    )

    manifest = _load_campaign_manifest(args.manifest)
    cells = expand_manifest(manifest)
    done_ids = ()
    if args.store:
        from repro.campaign.runner import _existing_records

        done_ids = _existing_records(args.store)
    plan = plan_shards(
        cells,
        done_ids=done_ids,
        shard_size=args.shard_size or DEFAULT_SHARD_SIZE,
        fallback_shard_size=(
            args.fallback_shard_size or DEFAULT_FALLBACK_SHARD_SIZE
        ),
    )
    out.write(f"campaign '{manifest.name}': {len(cells)} cells\n")
    for line in _campaign_axis_lines(cells):
        out.write(line + "\n")
    out.write(
        f"  batchable: {plan.batchable_cells} cells in "
        f"{len(plan.roster_shards)} roster shards (one native call each)\n"
    )
    out.write(
        f"  grid: {plan.grid_cells} cells in "
        f"{len(plan.grid_shards)} analytical grid shards "
        "(one vectorized solve each)\n"
    )
    out.write(
        f"  sweep: {plan.sweep_cells} biased cells in "
        f"{len(plan.sweep_shards)} measured-sweep shards "
        "(11 allocations per cell, one native call each)\n"
    )
    out.write(
        f"  dynamic: {plan.dynamic_cells} cells in "
        f"{len(plan.dynamic_shards)} dynamic-roster shards "
        "(one epoch-batched controller roster each)\n"
    )
    out.write(
        f"  cluster: {plan.cluster_cells} cells in "
        f"{len(plan.cluster_shards)} profile-then-replay shards "
        "(one batched final replay each)\n"
    )
    out.write(
        f"  fallback: {plan.fallback_cells} cells in "
        f"{len(plan.fallback_shards)} shards (exec-pool per-cell)\n"
    )
    if args.store:
        out.write(f"  already stored: {len(plan.skipped)} cells skipped\n")
    out.write(f"  estimated shards: {plan.total_shards}\n")


def _cmd_campaign_run(args, out):
    import time

    from repro.campaign import expand_manifest, run_campaign, verify_campaign
    from repro.campaign.runner import DEFAULT_MAX_ATTEMPTS

    manifest = _load_campaign_manifest(args.manifest)
    cells = expand_manifest(manifest)
    start = time.perf_counter()
    result = run_campaign(
        manifest,
        args.store,
        cells=cells,
        resume=args.resume,
        shard_size=args.shard_size,
        fallback_shard_size=args.fallback_shard_size,
        threads=args.threads,
        workers=args.workers,
        max_attempts=(
            args.max_attempts
            if args.max_attempts is not None
            else DEFAULT_MAX_ATTEMPTS
        ),
        no_roster=args.no_roster,
        stop_after_shards=args.stop_after_shards,
    )
    elapsed = time.perf_counter() - start
    out.write(
        f"campaign '{manifest.name}': {result.cells_run} cells run, "
        f"{result.cells_skipped} skipped, {result.shards_written} shards "
        f"written in {elapsed:.2f}s"
        + (f" ({result.retries} retries)" if result.retries else "")
        + (" [stopped early]" if result.stopped_early else "")
        + "\n"
    )
    if args.json:
        from repro.analysis.store import load_runset_dir, save_runset

        merged = load_runset_dir(args.store)
        merged.meta["campaign"] = manifest.name
        count = save_runset(merged, args.json)
        out.write(f"run set: {count} records -> {args.json}\n")
    if args.check:
        if result.stopped_early:
            raise ValidationError(
                "--check requires a complete campaign; this run stopped "
                "early (resume it first)"
            )
        checked = verify_campaign(
            manifest, args.store, cells=cells, stride=args.check_stride
        )
        out.write(
            f"check: {checked} cells re-run sequentially, all metrics "
            "exact\n"
        )
    if args.engine_stat:
        from repro.perf.stat import format_engine_stat

        out.write(format_engine_stat() + "\n")


def _cmd_campaign_summarize(args, out):
    from repro.campaign import summarize_campaign
    from repro.campaign.summary import format_campaign_summary

    summary = summarize_campaign(args.store)
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        out.write(f"summary -> {args.json}\n")
        return
    out.write(format_campaign_summary(summary) + "\n")


def _cmd_campaign(args, out):
    handler = {
        "plan": _cmd_campaign_plan,
        "run": _cmd_campaign_run,
        "summarize": _cmd_campaign_summarize,
    }[args.campaign_command]
    handler(args, out)


_COMMANDS = {
    "campaign": _cmd_campaign,
    "compare": _cmd_compare,
    "describe": _cmd_describe,
    "evaluate": _cmd_evaluate,
    "list-apps": _cmd_list_apps,
    "report": _cmd_report,
    "characterize": _cmd_characterize,
    "run-solo": _cmd_run_solo,
    "consolidate": _cmd_consolidate,
    "dynamic": _cmd_dynamic,
    "figure": _cmd_figure,
    "trace-sweep": _cmd_trace_sweep,
    "trace-dynamic": _cmd_trace_dynamic,
    "trace-cluster": _cmd_trace_cluster,
}


def main(argv=None, out=None):
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
