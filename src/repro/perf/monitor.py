"""Interval sampling over counter sets.

``IntervalMonitor`` is the measurement half of the paper's phase-detection
framework (Section 6.2): it samples a counter set on a fixed period
(100 ms by default) and derives MPKI/IPC for each window.
"""

from dataclasses import dataclass

from repro.perf.events import CYCLES, INSTRUCTIONS, LLC_ACCESSES, LLC_MISSES
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Sample:
    """Derived metrics for one sampling window."""

    timestamp_s: float
    instructions: float
    cycles: float
    llc_accesses: float
    llc_misses: float

    @property
    def mpki(self):
        """LLC misses per kilo-instruction — the controller's input."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def apki(self):
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.llc_accesses / self.instructions

    @property
    def ipc(self):
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles


class IntervalMonitor:
    """Samples a CounterSet every ``period_s`` of simulated time."""

    def __init__(self, counters, period_s=0.1):
        if period_s <= 0:
            raise ValidationError("sampling period must be positive")
        self.counters = counters
        self.period_s = period_s
        self.samples = []
        self._last_snapshot = counters.snapshot()
        self._now_s = 0.0
        self._next_sample_s = period_s

    def advance(self, dt_s):
        """Advance simulated time; emits samples when windows close.

        Returns the list of samples emitted during this advance (possibly
        empty), so callers can react to each closed window in order.
        """
        if dt_s < 0:
            raise ValidationError("time cannot go backwards")
        self._now_s += dt_s
        emitted = []
        while self._next_sample_s <= self._now_s + 1e-12:
            emitted.append(self._emit(self._next_sample_s))
            self._next_sample_s += self.period_s
        return emitted

    def _emit(self, timestamp_s):
        snap = self.counters.snapshot()
        delta = {k: snap[k] - self._last_snapshot.get(k, 0.0) for k in snap}
        self._last_snapshot = snap
        sample = Sample(
            timestamp_s=timestamp_s,
            instructions=delta.get(INSTRUCTIONS, 0.0),
            cycles=delta.get(CYCLES, 0.0),
            llc_accesses=delta.get(LLC_ACCESSES, 0.0),
            llc_misses=delta.get(LLC_MISSES, 0.0),
        )
        self.samples.append(sample)
        return sample

    @property
    def latest(self):
        return self.samples[-1] if self.samples else None
