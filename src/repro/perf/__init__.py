"""Performance-counter infrastructure (the libpfm/perf_events analogue).

The paper measures performance with libpfm over Linux perf_events
(Section 2.2) and drives its dynamic controller from 100 ms MPKI samples
(Section 6.2). This package provides the same read-delta counter
discipline against the simulated platform.
"""

from repro.perf.events import (
    CYCLES,
    INSTRUCTIONS,
    LLC_ACCESSES,
    LLC_MISSES,
    CounterSet,
    PerfCounter,
)
from repro.perf.monitor import IntervalMonitor, Sample

__all__ = [
    "CYCLES",
    "CounterSet",
    "INSTRUCTIONS",
    "IntervalMonitor",
    "LLC_ACCESSES",
    "LLC_MISSES",
    "PerfCounter",
    "Sample",
]
