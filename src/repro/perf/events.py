"""Hardware event counters.

Counters are monotonic totals written by the simulation engine; consumers
snapshot and difference them, never reading "rates" directly — the same
discipline perf_events imposes.
"""

from repro.util.errors import ValidationError

INSTRUCTIONS = "instructions"
CYCLES = "cycles"
LLC_ACCESSES = "llc_accesses"
LLC_MISSES = "llc_misses"

STANDARD_EVENTS = (INSTRUCTIONS, CYCLES, LLC_ACCESSES, LLC_MISSES)


class PerfCounter:
    """A single monotonically increasing event counter."""

    def __init__(self, event):
        self.event = event
        self._value = 0.0

    def add(self, amount):
        if amount < 0:
            raise ValidationError(f"{self.event}: counters are monotonic")
        self._value += amount

    @property
    def value(self):
        return self._value


class CounterSet:
    """A group of counters attached to one application/domain."""

    def __init__(self, events=STANDARD_EVENTS):
        self._counters = {event: PerfCounter(event) for event in events}

    def add(self, event, amount):
        if event not in self._counters:
            raise ValidationError(f"event {event!r} not programmed")
        self._counters[event].add(amount)

    def read(self, event):
        if event not in self._counters:
            raise ValidationError(f"event {event!r} not programmed")
        return self._counters[event].value

    def snapshot(self):
        return {event: c.value for event, c in self._counters.items()}

    def delta(self, since):
        """Difference against a previous snapshot."""
        return {event: c.value - since.get(event, 0.0) for event, c in self._counters.items()}

    @property
    def events(self):
        return tuple(self._counters)
