"""Process-wide engine counters (solver and memo instrumentation).

The simulation engine is itself a measured system: the interval memo
hits or misses, the occupancy solver iterates or takes a fast path.
These land in one global :class:`~repro.perf.events.CounterSet` so
``perf/stat.py`` can report them with the same read-delta discipline as
the simulated hardware events. Counters are per-process — parallel
workers accumulate their own totals.
"""

from repro.perf.events import CounterSet

MEMO_HITS = "memo_hits"
MEMO_MISSES = "memo_misses"
OCCUPANCY_SOLVES = "occupancy_solves"
OCCUPANCY_ITERATIONS = "occupancy_iterations"
OCCUPANCY_FAST_PATH = "occupancy_fast_path"
TRACE_ACCESSES = "trace_accesses"
KERNEL_BATCHES = "kernel_batches"
KERNEL_BATCHED_ACCESSES = "kernel_batched_accesses"
PROFILER_PASSES = "profiler_passes"
PACK_HITS = "pack_hits"
PACK_MISSES = "pack_misses"
PACK_COMPILED_ACCESSES = "pack_compiled_accesses"
PACK_REPLAYS = "pack_replays"
BATCH_CALLS = "batch_calls"
BATCH_CELLS = "batch_cells"
DYNBATCH_CALLS = "dynbatch_calls"
DYNBATCH_CELLS = "dynbatch_cells"
GRID_CALLS = "grid_calls"
GRID_CELLS = "grid_cells"
CAMPAIGN_SHARDS = "campaign_shards"
CAMPAIGN_CELLS_RUN = "campaign_cells_run"
CAMPAIGN_CELLS_SKIPPED = "campaign_cells_skipped"
CAMPAIGN_RETRIES = "campaign_retries"

ENGINE_EVENTS = (
    MEMO_HITS,
    MEMO_MISSES,
    OCCUPANCY_SOLVES,
    OCCUPANCY_ITERATIONS,
    OCCUPANCY_FAST_PATH,
    TRACE_ACCESSES,
    KERNEL_BATCHES,
    KERNEL_BATCHED_ACCESSES,
    PROFILER_PASSES,
    PACK_HITS,
    PACK_MISSES,
    PACK_COMPILED_ACCESSES,
    PACK_REPLAYS,
    BATCH_CALLS,
    BATCH_CELLS,
    DYNBATCH_CALLS,
    DYNBATCH_CELLS,
    GRID_CALLS,
    GRID_CELLS,
    CAMPAIGN_SHARDS,
    CAMPAIGN_CELLS_RUN,
    CAMPAIGN_CELLS_SKIPPED,
    CAMPAIGN_RETRIES,
)

_counters = CounterSet(ENGINE_EVENTS)


def engine_counters():
    """The live engine CounterSet (snapshot/delta like any other)."""
    return _counters


def reset_engine_counters():
    """Replace the global counter set; returns the fresh one."""
    global _counters
    _counters = CounterSet(ENGINE_EVENTS)
    return _counters


def add(event, amount=1.0):
    """Deposit into the live counter set (used by the engine hot paths)."""
    _counters.add(event, amount)
