"""``perf stat``-style reporting of run measurements.

The paper's toolchain is libpfm/perf_events; presenting results the way
``perf stat`` does keeps the simulated platform familiar to the same
audience. ``format_stat`` renders a RunResult; ``format_comparison``
renders several runs side by side with relative deltas.
"""

from repro.util.errors import ValidationError


def _fmt(value):
    if value >= 1e9:
        return f"{value / 1e9:,.3f} G"
    if value >= 1e6:
        return f"{value / 1e6:,.3f} M"
    return f"{value:,.0f}  "


def format_stat(result, config=None):
    """Render one RunResult like a ``perf stat`` summary block."""
    if result.runtime_s <= 0:
        raise ValidationError("cannot report a zero-length run")
    lines = [f" Performance counter stats for '{result.name}':", ""]
    rows = [
        ("instructions", result.instructions, None),
        ("LLC-loads", result.llc_accesses, None),
        (
            "LLC-load-misses",
            result.llc_misses,
            f"{100 * result.llc_misses / result.llc_accesses:.2f}% of all LLC hits"
            if result.llc_accesses
            else None,
        ),
        ("MPKI", result.mpki, None),
        ("instructions/sec", result.ips, None),
    ]
    if config is not None:
        cycles = result.runtime_s * config.frequency_hz
        ipc = result.instructions / cycles if cycles else 0.0
        rows.insert(1, ("cycles", cycles, f"{ipc:.2f} insn per cycle"))
    for event, value, note in rows:
        annotation = f"   # {note}" if note else ""
        lines.append(f"  {_fmt(value):>14}  {event}{annotation}")
    lines.append("")
    lines.append(f"  {result.socket_energy_j:,.1f} Joules power/energy-pkg/")
    if result.pp0_energy_j:
        lines.append(f"  {result.pp0_energy_j:,.1f} Joules power/energy-cores/")
    lines.append("")
    lines.append(f"  {result.runtime_s:.3f} seconds time elapsed")
    return "\n".join(lines)


def format_engine_stat(counters=None):
    """Render the engine's own counters (memo, occupancy solver).

    The simulator is a measured system too: this is the ``perf stat``
    block for the engine itself. Pass a snapshot dict from
    :func:`repro.perf.engine_counters.engine_counters` (or nothing for
    the live process-wide totals).
    """
    from repro.perf import engine_counters as ec

    if counters is None:
        counters = ec.engine_counters().snapshot()
    hits = counters.get(ec.MEMO_HITS, 0.0)
    misses = counters.get(ec.MEMO_MISSES, 0.0)
    solves = counters.get(ec.OCCUPANCY_SOLVES, 0.0)
    iterations = counters.get(ec.OCCUPANCY_ITERATIONS, 0.0)
    fast = counters.get(ec.OCCUPANCY_FAST_PATH, 0.0)
    trace_accesses = counters.get(ec.TRACE_ACCESSES, 0.0)
    batches = counters.get(ec.KERNEL_BATCHES, 0.0)
    batched = counters.get(ec.KERNEL_BATCHED_ACCESSES, 0.0)
    profiler_passes = counters.get(ec.PROFILER_PASSES, 0.0)
    pack_hits = counters.get(ec.PACK_HITS, 0.0)
    pack_misses = counters.get(ec.PACK_MISSES, 0.0)
    pack_compiled = counters.get(ec.PACK_COMPILED_ACCESSES, 0.0)
    pack_replays = counters.get(ec.PACK_REPLAYS, 0.0)
    batch_calls = counters.get(ec.BATCH_CALLS, 0.0)
    batch_cells = counters.get(ec.BATCH_CELLS, 0.0)
    dynbatch_calls = counters.get(ec.DYNBATCH_CALLS, 0.0)
    dynbatch_cells = counters.get(ec.DYNBATCH_CELLS, 0.0)
    grid_calls = counters.get(ec.GRID_CALLS, 0.0)
    grid_cells = counters.get(ec.GRID_CELLS, 0.0)
    campaign_shards = counters.get(ec.CAMPAIGN_SHARDS, 0.0)
    campaign_run = counters.get(ec.CAMPAIGN_CELLS_RUN, 0.0)
    campaign_skipped = counters.get(ec.CAMPAIGN_CELLS_SKIPPED, 0.0)
    campaign_retries = counters.get(ec.CAMPAIGN_RETRIES, 0.0)
    campaign_planned = campaign_run + campaign_skipped
    lookups = hits + misses
    pack_lookups = pack_hits + pack_misses
    iterated = solves - fast
    rows = [
        (
            "memo-hits",
            hits,
            f"{100 * hits / lookups:.2f}% of all memo lookups" if lookups else None,
        ),
        ("memo-misses", misses, None),
        (
            "occupancy-solves",
            solves,
            f"{100 * fast / solves:.2f}% closed-form" if solves else None,
        ),
        (
            "occupancy-iterations",
            iterations,
            f"{iterations / iterated:.1f} per iterative solve" if iterated else None,
        ),
        ("trace-accesses", trace_accesses, None),
        (
            "kernel-batches",
            batches,
            f"{batched / batches:,.0f} accesses per batch" if batches else None,
        ),
        ("profiler-passes", profiler_passes, None),
        (
            "pack-hits",
            pack_hits,
            f"{100 * pack_hits / pack_lookups:.2f}% of pack lookups"
            if pack_lookups
            else None,
        ),
        (
            "pack-misses",
            pack_misses,
            f"{pack_compiled:,.0f} accesses compiled" if pack_misses else None,
        ),
        ("pack-replays", pack_replays, None),
        (
            "batch-calls",
            batch_calls,
            f"{batch_cells / batch_calls:,.1f} cells per call"
            if batch_calls
            else None,
        ),
        (
            "dynbatch-calls",
            dynbatch_calls,
            f"{dynbatch_cells / dynbatch_calls:,.1f} cells per epoch call"
            if dynbatch_calls
            else None,
        ),
        ("dynbatch-cells", dynbatch_cells, None),
        (
            "grid-calls",
            grid_calls,
            f"{grid_cells / grid_calls:,.1f} cells per call"
            if grid_calls
            else None,
        ),
        ("grid-cells", grid_cells, None),
        (
            "campaign-shards",
            campaign_shards,
            f"{campaign_run / campaign_shards:,.1f} cells per shard"
            if campaign_shards
            else None,
        ),
        ("campaign-cells-run", campaign_run, None),
        (
            "campaign-cells-skipped",
            campaign_skipped,
            f"{100 * campaign_skipped / campaign_planned:.2f}% of planned "
            "cells already stored"
            if campaign_planned
            else None,
        ),
        ("campaign-retries", campaign_retries, None),
    ]
    lines = [" Performance counter stats for 'engine':", ""]
    for event, value, note in rows:
        annotation = f"   # {note}" if note else ""
        lines.append(f"  {_fmt(value):>14}  {event}{annotation}")
    # Native replay kernels are part of the measured system: report
    # each as "ok" or the recorded reason it is off (no compiler,
    # REPRO_NATIVE=0, compile failure) so "why is native off?" is
    # answerable from the same block.
    from repro.cache import native

    lines.append("")
    for name, status in sorted(native.kernel_status().items()):
        lines.append(f"  native-kernel/{name}: {status}")
    threading = native.threading_status()
    detail = f"; {threading['reason']}" if threading["reason"] else ""
    lines.append(f"  native-batch/threading: {threading['mode']}{detail}")
    epoch = native.threading_status("epochbatch")
    detail = f"; {epoch['reason']}" if epoch["reason"] else ""
    lines.append(f"  native-epochbatch/threading: {epoch['mode']}{detail}")
    return "\n".join(lines)


def format_comparison(results, baseline_index=0):
    """Side-by-side comparison of runs against a baseline run."""
    if not results:
        raise ValidationError("nothing to compare")
    if not 0 <= baseline_index < len(results):
        raise ValidationError("baseline index out of range")
    base = results[baseline_index]
    header = f"{'run':<24}{'time (s)':>12}{'vs base':>10}{'MPKI':>10}{'pkg (J)':>12}"
    lines = [header, "-" * len(header)]
    for result in results:
        ratio = result.runtime_s / base.runtime_s
        lines.append(
            f"{result.name:<24}{result.runtime_s:>12.2f}{ratio:>10.3f}"
            f"{result.mpki:>10.2f}{result.socket_energy_j:>12.1f}"
        )
    return "\n".join(lines)
