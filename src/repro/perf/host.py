"""Host provenance for benchmark artifacts.

A perf number without its host context is unreviewable: the batch
speedup depends on CPU count, the native gate, and the thread knobs.
``host_provenance`` captures the execution environment in plain data so
every ``BENCH_*.json`` payload records where its numbers came from —
including every ``REPRO_NATIVE*`` variable and the per-kernel
compile/disable status, so "why was native off on that run?" is
answerable from the artifact alone.
"""

import os
import platform


def host_provenance():
    """A JSON-ready description of the measuring host."""
    from repro.cache import native
    from repro.exec.pool import usable_cpus

    env = {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_NATIVE") or key == "REPRO_WORKERS"
    }
    threading = native.threading_status()
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "native_enabled": native.enabled(),
        "threading_mode": threading["mode"],
        "threading_reason": threading["reason"],
        "kernel_status": dict(native.kernel_status()),
        "env": env,
    }


__all__ = ["host_provenance"]
