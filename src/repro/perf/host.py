"""Host provenance for benchmark artifacts.

A perf number without its host context is unreviewable: the batch
speedup depends on CPU count, the native gate, and the thread knobs.
``host_provenance`` captures the execution environment in plain data so
every ``BENCH_*.json`` payload records where its numbers came from —
including every ``REPRO_NATIVE*`` variable, the per-kernel
compile/disable status, and the *resolved* worker/thread counts those
knobs produce on this host, so "why was native off on that run?" and
"how parallel was it actually?" are answerable from the artifact alone
even when no ``REPRO_*`` variable was set.
"""

import os
import platform


def host_provenance():
    """A JSON-ready description of the measuring host."""
    from repro.cache import native
    from repro.exec.pool import resolve_workers, usable_cpus

    env = {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_NATIVE") or key == "REPRO_WORKERS"
    }
    threading = native.threading_status()
    cpus = usable_cpus()
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "usable_cpus": cpus,
        "native_enabled": native.enabled(),
        "threading_mode": threading["mode"],
        "threading_reason": threading["reason"],
        # Each run_items-pool kernel reports its own compiled mode: the
        # epoch-batch object can lag or lead batchwalk's across partial
        # cache rebuilds, and dynbatch numbers hinge on which mode ran.
        "threading_by_kernel": {
            name: native.threading_status(name)["mode"]
            for name in ("batchwalk", "epochbatch")
        },
        "kernel_status": dict(native.kernel_status()),
        # The *resolved* knobs, not just the raw env (which serializes
        # as {} when nothing is set): what a pool or a batched native
        # call sized at this moment would actually use.
        "resolved_workers": resolve_workers(None),
        "resolved_native_threads": native.resolve_native_threads(cpus),
        "env": env,
    }


__all__ = ["host_provenance"]
