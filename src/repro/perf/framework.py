"""The phase-detection framework of Section 6.2, standalone.

"We have created a software framework to monitor behavior and respond to
phase changes by reallocating cache resources. ... The framework detects
phase changes by looking for changes in LLC misses per kilo-instruction
over a 100 millisecond interval."

:class:`PhaseMonitoringFramework` composes an :class:`IntervalMonitor`
over an application's counters with an Algorithm 6.1 detector and a
callback interface, so consumers other than the cache controller (a
scheduler, a logger, a DVFS governor) can subscribe to phase events —
the "performance monitoring aspect" the paper expects to be reusable.
"""

from dataclasses import dataclass

from repro.core.phase import PhaseDetector
from repro.perf.events import CounterSet
from repro.perf.monitor import IntervalMonitor
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class PhaseEvent:
    """One detected phase-boundary event."""

    time_s: float
    kind: str  # "phase-start" | "phase-settled"
    mpki: float
    sample: object  # the Sample that triggered it


class PhaseMonitoringFramework:
    """Counters -> 100 ms windows -> Algorithm 6.1 -> callbacks."""

    def __init__(self, counters=None, period_s=0.1, detector=None):
        self.counters = counters or CounterSet()
        self.monitor = IntervalMonitor(self.counters, period_s=period_s)
        self.detector = detector or PhaseDetector()
        self.events = []
        self._subscribers = []
        self._in_transition = False

    def subscribe(self, callback):
        """Register ``callback(event)``; returns an unsubscribe callable."""
        if not callable(callback):
            raise ValidationError("subscriber must be callable")
        self._subscribers.append(callback)

        def unsubscribe():
            self._subscribers.remove(callback)

        return unsubscribe

    def feed(self, dt_s, instructions, llc_misses, llc_accesses=0, cycles=0):
        """Account activity and advance time; emits events as windows close.

        Returns the PhaseEvents emitted during this advance.
        """
        self.counters.add("instructions", instructions)
        self.counters.add("llc_misses", llc_misses)
        self.counters.add("llc_accesses", llc_accesses)
        self.counters.add("cycles", cycles)
        emitted = []
        for sample in self.monitor.advance(dt_s):
            result = self.detector.update(sample.mpki)
            if result == 2:
                self._in_transition = True
                emitted.append(self._emit("phase-start", sample))
            elif result == 0 and self._in_transition:
                self._in_transition = False
                emitted.append(self._emit("phase-settled", sample))
        return emitted

    def _emit(self, kind, sample):
        event = PhaseEvent(
            time_s=sample.timestamp_s, kind=kind, mpki=sample.mpki, sample=sample
        )
        self.events.append(event)
        for callback in list(self._subscribers):
            callback(event)
        return event

    @property
    def phase_count(self):
        """Number of phase starts observed so far."""
        return sum(1 for e in self.events if e.kind == "phase-start")

    def mpki_history(self):
        return [s.mpki for s in self.monitor.samples]
