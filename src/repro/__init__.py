"""repro — a reproduction of Cook et al., ISCA 2013.

"A Hardware Evaluation of Cache Partitioning to Improve Utilization and
Energy-Efficiency while Preserving Responsiveness."

The package simulates the paper's prototype platform (a Sandy Bridge
client chip with way-based LLC partitioning), models its 45-application
workload, implements the shared/fair/biased static policies and the
dynamic MPKI-driven partitioning controller (Algorithms 6.1/6.2), and
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import Machine, get_application, run_biased, run_shared

    machine = Machine()
    fg = get_application("471.omnetpp")
    bg = get_application("ferret")
    shared = run_shared(machine, fg, bg)
    biased = run_biased(machine, fg, bg)
    print(shared.fg_runtime_s, biased.fg_runtime_s)
"""

from repro.analysis import Characterizer, ConsolidationStudy
from repro.core import (
    DynamicPartitionController,
    PhaseDetector,
    cluster_applications,
    run_biased,
    run_fair,
    run_policy,
    run_shared,
    sweep_static_partitions,
)
from repro.cpu import SandyBridgeConfig
from repro.runtime import CoScheduleHarness, ResctrlFilesystem
from repro.sim import Allocation, Machine
from repro.workloads import (
    all_applications,
    applications_of_suite,
    get_application,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "Characterizer",
    "CoScheduleHarness",
    "ConsolidationStudy",
    "DynamicPartitionController",
    "Machine",
    "PhaseDetector",
    "ResctrlFilesystem",
    "SandyBridgeConfig",
    "all_applications",
    "applications_of_suite",
    "cluster_applications",
    "get_application",
    "run_biased",
    "run_fair",
    "run_policy",
    "run_shared",
    "sweep_static_partitions",
]
