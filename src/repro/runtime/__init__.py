"""OS-level runtime layer: pinning, partition control, and run harnesses.

Mirrors how the paper (and a production deployment on CAT hardware) would
drive the mechanism: ``taskset``-style CPU pinning (Section 2.1), a
resctrl-style filesystem interface over the partitioning MSRs (the
interface shipping Intel parts expose), and a harness that sets up the
paper's standard co-scheduling configuration (4 threads on 2 dedicated
cores per application, Section 5).
"""

from repro.runtime.harness import CoScheduleHarness, paper_pair_allocations
from repro.runtime.planner import ConsolidationPlan, ConsolidationPlanner
from repro.runtime.resctrl import ResctrlFilesystem, ResctrlGroup
from repro.runtime.scheduler import (
    ContentionAwareScheduler,
    InterferencePredictor,
    PairingPrediction,
    SchedulingDecision,
)
from repro.runtime.taskset import PinRegistry, taskset

__all__ = [
    "CoScheduleHarness",
    "ConsolidationPlan",
    "ConsolidationPlanner",
    "ContentionAwareScheduler",
    "InterferencePredictor",
    "PairingPrediction",
    "PinRegistry",
    "ResctrlFilesystem",
    "ResctrlGroup",
    "SchedulingDecision",
    "paper_pair_allocations",
    "taskset",
]
