"""End-to-end consolidation planning.

The capstone API tying the pieces into the workflow the paper's
introduction describes: a latency-sensitive foreground with a slowdown
budget, a queue of batch work, and a machine whose idle resources are
money. The planner:

1. sizes the foreground's LLC partition from its miss-ratio curve
   (:class:`~repro.core.multi_fg.SlowdownBoundAllocator`),
2. picks the batch job whose co-execution the interference predictor
   prices within budget (:class:`~repro.runtime.scheduler`),
3. if capacity isolation cannot meet the budget (a bandwidth-sensitive
   foreground), attaches the Section 8 bandwidth-QoS contract,
4. and can execute the plan to verify the prediction.
"""

from dataclasses import dataclass, field

from repro.core.bandwidth_qos import QosContract, apply_qos
from repro.core.multi_fg import ForegroundRequest, SlowdownBoundAllocator
from repro.runtime.harness import paper_pair_allocations
from repro.runtime.scheduler import InterferencePredictor
from repro.util.errors import ValidationError


@dataclass
class ConsolidationPlan:
    """The planner's decision for one foreground + batch queue."""

    fg_name: str
    bg_name: str
    fg_ways: int
    bg_ways: int
    predicted_fg_slowdown: float
    predicted_bg_rate_ips: float
    qos_contract: object = None  # QosContract or None
    rejected: list = field(default_factory=list)  # (bg_name, slowdown)

    @property
    def uses_qos(self):
        return self.qos_contract is not None


class ConsolidationPlanner:
    """Plans and executes foreground/batch consolidation."""

    def __init__(self, machine, qos_reservation=0.35):
        self.machine = machine
        self.allocator = SlowdownBoundAllocator(machine.config)
        self.predictor = InterferencePredictor(machine)
        self.qos_reservation = qos_reservation

    def plan(self, fg, batch_queue, slowdown_bound=1.05, allow_qos=True):
        """Build a plan; raises if no candidate fits even with QoS."""
        if not batch_queue:
            raise ValidationError("need at least one batch candidate")
        request = ForegroundRequest(
            fg,
            slowdown_bound,
            threads=1 if fg.scalability.single_threaded else 4,
        )
        # Floor at 2 ways (1 MB): a single way is direct-mapped and
        # pathological (Section 3.2) — the same floor Algorithm 6.2 uses.
        fg_ways = max(self.allocator.minimum_ways(request), 2)
        fg_ways = min(fg_ways, self.machine.config.llc_ways - 1)
        bg_ways = self.machine.config.llc_ways - fg_ways

        rejected = []
        best = None
        for bg in batch_queue:
            prediction = self.predictor.predict(fg, bg, fg_ways, bg_ways)
            if prediction.fg_slowdown <= slowdown_bound:
                if best is None or prediction.bg_rate_ips > best.bg_rate_ips:
                    best = prediction
            else:
                rejected.append((bg.name, prediction.fg_slowdown))
        if best is not None:
            return ConsolidationPlan(
                fg_name=fg.name,
                bg_name=best.bg_name,
                fg_ways=fg_ways,
                bg_ways=bg_ways,
                predicted_fg_slowdown=best.fg_slowdown,
                predicted_bg_rate_ips=best.bg_rate_ips,
                rejected=rejected,
            )
        if not allow_qos:
            raise ValidationError(
                f"no batch candidate fits a {slowdown_bound:.2f} bound; "
                f"rejected: {rejected}"
            )
        # Capacity isolation was not enough: the foreground is bandwidth
        # sensitive. Attach the QoS contract and re-price.
        contract = QosContract(
            fg.name, reserved_fraction=self.qos_reservation, latency_priority=True
        )
        restore = apply_qos(self.machine, [contract])
        try:
            best = None
            for bg in batch_queue:
                prediction = self.predictor.predict(fg, bg, fg_ways, bg_ways)
                if prediction.fg_slowdown <= slowdown_bound and (
                    best is None or prediction.bg_rate_ips > best.bg_rate_ips
                ):
                    best = prediction
        finally:
            restore()
        if best is None:
            raise ValidationError(
                f"no batch candidate fits a {slowdown_bound:.2f} bound even "
                f"with bandwidth QoS; rejected: {rejected}"
            )
        return ConsolidationPlan(
            fg_name=fg.name,
            bg_name=best.bg_name,
            fg_ways=fg_ways,
            bg_ways=bg_ways,
            predicted_fg_slowdown=best.fg_slowdown,
            predicted_bg_rate_ips=best.bg_rate_ips,
            qos_contract=contract,
            rejected=rejected,
        )

    def execute(self, plan, fg, bg):
        """Run a plan; returns (PairResult, measured fg slowdown)."""
        if fg.name != plan.fg_name or bg.name != plan.bg_name.split("#")[0]:
            raise ValidationError("plan does not match the given applications")
        threads = 1 if fg.scalability.single_threaded else 4
        solo = self.machine.run_solo(fg, threads=threads)
        fg_alloc, bg_alloc = paper_pair_allocations(
            fg, bg, plan.fg_ways, plan.bg_ways, self.machine.config.llc_ways
        )
        restore = None
        if plan.uses_qos:
            restore = apply_qos(self.machine, [plan.qos_contract])
        try:
            pair = self.machine.run_pair(fg, bg, fg_alloc, bg_alloc)
        finally:
            if restore is not None:
                restore()
        return pair, pair.fg.runtime_s / solo.runtime_s
