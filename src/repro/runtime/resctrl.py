"""A resctrl-style control interface over the partitioning hardware.

On shipping Intel parts, Cache Allocation Technology is driven through the
``/sys/fs/resctrl`` filesystem: control groups with a ``schemata`` file
("L3:0=ff0"), a ``cpus``/``tasks`` file, and ``mon_data`` occupancy
counters. The paper's prototype predates that interface, but a production
version of its controller would be written against it — so this module
provides an in-memory equivalent whose writes land on the simulated MSR
file, letting the dynamic controller be expressed exactly as it would be
on real CAT hardware.
"""

import re

from repro.cache.llc import WayMask
from repro.cpu.msr import MsrFile
from repro.util.errors import SchedulingError, ValidationError

_SCHEMATA_RE = re.compile(r"^L3:0=([0-9a-fA-F]+)$")


def parse_schemata(text, num_ways=12):
    """Parse a one-line L3 schemata string into a WayMask."""
    match = _SCHEMATA_RE.match(text.strip())
    if not match:
        raise ValidationError(f"malformed schemata {text!r}")
    bits = int(match.group(1), 16)
    if bits >= 1 << num_ways:
        raise ValidationError(f"mask 0x{bits:x} wider than {num_ways} ways")
    mask = WayMask.from_bits(bits, num_ways)
    ways = sorted(mask.ways)
    if ways != list(range(ways[0], ways[0] + len(ways))):
        raise ValidationError("resctrl requires contiguous way masks")
    return mask


def format_schemata(mask):
    return f"L3:0={mask.bits:x}"


class ResctrlGroup:
    """One control group: a CLOS, its schemata, and its CPUs."""

    def __init__(self, name, clos, filesystem):
        self.name = name
        self.clos = clos
        self._fs = filesystem
        self._cpus = set()

    # -- schemata ----------------------------------------------------------

    @property
    def schemata(self):
        return format_schemata(self.mask)

    @schemata.setter
    def schemata(self, text):
        self.set_mask(parse_schemata(text, self._fs.num_ways))

    @property
    def mask(self):
        bits = self._fs.msr.clos_mask(self.clos)
        if bits == 0:  # never programmed: default to all ways
            return WayMask.full(self._fs.num_ways)
        return WayMask.from_bits(bits, self._fs.num_ways)

    def set_mask(self, mask):
        self._fs.msr.set_clos_mask(self.clos, mask.bits)

    def set_ways(self, count, offset=0):
        self.set_mask(WayMask.contiguous(count, offset, self._fs.num_ways))

    # -- cpus -----------------------------------------------------------------

    @property
    def cpus(self):
        return sorted(self._cpus)

    def assign_cpus(self, cpus):
        for cpu in cpus:
            current = self._fs.group_of_cpu(cpu)
            if current is not None and current is not self:
                current._cpus.discard(cpu)
            self._fs.msr.set_clos(cpu, self.clos)
            self._cpus.add(cpu)

    # -- monitoring (mon_data) ---------------------------------------------------

    def llc_occupancy_bytes(self):
        """mon_data/.../llc_occupancy equivalent, fed by the engine."""
        return self._fs.occupancy_bytes.get(self.name, 0)


class ResctrlFilesystem:
    """The mount point: the default group plus created control groups."""

    MAX_GROUPS = 4  # the prototype exposes one CLOS per core

    def __init__(self, msr=None, num_ways=12):
        self.msr = msr or MsrFile()
        self.num_ways = num_ways
        self.occupancy_bytes = {}
        self._groups = {}
        self.default_group = ResctrlGroup("", clos=0, filesystem=self)
        self.default_group.set_mask(WayMask.full(num_ways))
        self._groups[""] = self.default_group

    def create_group(self, name):
        if not name or "/" in name:
            raise ValidationError(f"invalid group name {name!r}")
        if name in self._groups:
            raise SchedulingError(f"group {name!r} already exists")
        if len(self._groups) >= self.MAX_GROUPS:
            raise SchedulingError("out of hardware classes of service")
        group = ResctrlGroup(name, clos=len(self._groups), filesystem=self)
        group.set_mask(WayMask.full(self.num_ways))
        self._groups[name] = group
        return group

    def remove_group(self, name):
        if name == "":
            raise ValidationError("cannot remove the default group")
        group = self._groups.pop(name, None)
        if group is None:
            raise ValidationError(f"no such group {name!r}")
        self.default_group.assign_cpus(group.cpus)

    def group(self, name):
        try:
            return self._groups[name]
        except KeyError:
            raise ValidationError(f"no such group {name!r}") from None

    def groups(self):
        return dict(self._groups)

    def group_of_cpu(self, cpu):
        for group in self._groups.values():
            if cpu in group._cpus:
                return group
        return None

    def masks_by_group(self):
        return {name: g.mask for name, g in self._groups.items()}

    def update_occupancy(self, occupancy_bytes_by_group):
        """Engine hook: refresh mon_data occupancy readings."""
        self.occupancy_bytes.update(occupancy_bytes_by_group)
