"""taskset-style CPU pinning.

The paper pins applications to sets of hyperthreads with Linux ``taskset``
and keeps co-scheduled applications on disjoint cores to avoid L1/L2
thrashing (Sections 2.1, 5). ``PinRegistry`` enforces those invariants.
"""

from repro.cpu.topology import CpuTopology
from repro.util.errors import SchedulingError, ValidationError


def taskset(topology, threads, first_core=0):
    """Return the hyperthread ids for pinning ``threads`` paper-style."""
    return topology.fill_order(threads, first_core=first_core)


class PinRegistry:
    """Tracks which hyperthreads each task owns; rejects conflicts."""

    def __init__(self, topology=None):
        self.topology = topology or CpuTopology()
        self._owner_of_tid = {}
        self._tids_of_task = {}

    def pin(self, task, tids):
        """Pin ``task`` to hyperthreads ``tids`` (exclusive ownership)."""
        tids = list(tids)
        if not tids:
            raise ValidationError("cannot pin a task to zero hyperthreads")
        for tid in tids:
            self.topology.thread(tid)  # validates range
            owner = self._owner_of_tid.get(tid)
            if owner is not None and owner != task:
                raise SchedulingError(
                    f"hyperthread {tid} already owned by {owner!r}"
                )
        self.unpin(task)
        for tid in tids:
            self._owner_of_tid[tid] = task
        self._tids_of_task[task] = tids
        return tids

    def pin_threads(self, task, count, first_core=0):
        """Pin using the paper's fill order starting at ``first_core``."""
        return self.pin(task, taskset(self.topology, count, first_core))

    def unpin(self, task):
        for tid in self._tids_of_task.pop(task, []):
            self._owner_of_tid.pop(tid, None)

    def tids_of(self, task):
        return list(self._tids_of_task.get(task, []))

    def cores_of(self, task):
        return self.topology.cores_used(self.tids_of(task))

    def tasks(self):
        return list(self._tids_of_task)

    def shares_core(self, task_a, task_b):
        """True if two tasks have hyperthreads on a common core."""
        return bool(set(self.cores_of(task_a)) & set(self.cores_of(task_b)))
