"""High-level co-scheduling harness.

Builds the paper's standard multiprogramming configuration (Section 5):
each application gets 4 hyperthreads on 2 dedicated cores, the foreground
on cores {0, 1} and the background on cores {2, 3}, with an LLC policy
applied on top (shared / fair / biased / dynamic).
"""

from repro.cache.llc import WayMask
from repro.cpu.topology import CpuTopology
from repro.runtime.taskset import PinRegistry
from repro.sim.allocation import Allocation
from repro.util.errors import SchedulingError, ValidationError


def _threads_for(app, requested):
    """Honour single-threaded and power-of-2-only restrictions."""
    if app.scalability.single_threaded:
        return 1
    threads = requested
    if app.scalability.pow2_only:
        while threads & (threads - 1):
            threads -= 1
    return max(1, threads)


def paper_pair_allocations(fg, bg, fg_ways=12, bg_ways=12, llc_ways=12, threads=4):
    """The Section 5 setup: 4 threads / 2 cores each, disjoint cores.

    ``fg_ways``/``bg_ways`` carve contiguous masks from opposite ends of
    the cache; passing 12/12 gives fully shared (overlapping) masks.
    """
    if fg_ways < 1 or bg_ways < 1:
        raise ValidationError("both applications need at least one way")
    if fg_ways + bg_ways > 2 * llc_ways:
        raise ValidationError("mask request exceeds the LLC")
    fg_threads = _threads_for(fg, threads)
    bg_threads = _threads_for(bg, threads)
    fg_mask = WayMask.contiguous(fg_ways, 0, llc_ways)
    bg_mask = WayMask.contiguous(bg_ways, llc_ways - bg_ways, llc_ways)
    fg_alloc = Allocation(threads=fg_threads, cores=(0, 1), mask=fg_mask)
    bg_alloc = Allocation(threads=bg_threads, cores=(2, 3), mask=bg_mask)
    return fg_alloc, bg_alloc


class CoScheduleHarness:
    """Pins a foreground/background pair and runs it under a policy."""

    def __init__(self, machine, resctrl=None, topology=None):
        self.machine = machine
        self.resctrl = resctrl
        self.topology = topology or CpuTopology(
            machine.config.num_cores, machine.config.threads_per_core
        )
        self.pins = PinRegistry(self.topology)

    def setup_pair(self, fg, bg, threads=4):
        """Pin both applications paper-style; returns (fg_tids, bg_tids)."""
        if fg.name == bg.name:
            raise SchedulingError("foreground and background must differ")
        fg_tids = self.pins.pin_threads(fg.name, _threads_for(fg, threads), first_core=0)
        bg_tids = self.pins.pin_threads(
            bg.name, _threads_for(bg, threads), first_core=self.topology.num_cores // 2
        )
        if self.pins.shares_core(fg.name, bg.name):
            raise SchedulingError("applications ended up sharing a core")
        return fg_tids, bg_tids

    def run(self, fg, bg, fg_ways=12, bg_ways=12, threads=4, **kwargs):
        """Pin, apply masks (also via resctrl when attached), and run."""
        self.setup_pair(fg, bg, threads)
        fg_alloc, bg_alloc = paper_pair_allocations(
            fg, bg, fg_ways, bg_ways, self.machine.config.llc_ways, threads
        )
        if self.resctrl is not None:
            self._program_resctrl(fg, bg, fg_alloc, bg_alloc)
        try:
            return self.machine.run_pair(fg, bg, fg_alloc, bg_alloc, **kwargs)
        finally:
            self.pins.unpin(fg.name)
            self.pins.unpin(bg.name)

    def _program_resctrl(self, fg, bg, fg_alloc, bg_alloc):
        groups = self.resctrl.groups()
        fg_group = groups.get("fg") or self.resctrl.create_group("fg")
        bg_group = groups.get("bg") or self.resctrl.create_group("bg")
        fg_group.set_mask(fg_alloc.mask)
        bg_group.set_mask(bg_alloc.mask)
        fg_group.assign_cpus(self.pins.tids_of(fg.name))
        bg_group.assign_cpus(self.pins.tids_of(bg.name))
