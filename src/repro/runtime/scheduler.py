"""Contention-aware co-scheduling.

The paper's datacenter motivation assumes *someone* decides which
background job to place behind a latency-sensitive application. Related
work it cites ([13] Fedorova et al.) does this by predicting contention;
this module provides that component on top of our models:

- :class:`InterferencePredictor` predicts a pairing's steady state from a
  single interval-solver evaluation (no simulation run): foreground
  slowdown and background throughput, under any partitioning policy.
- :class:`ContentionAwareScheduler` picks, from a queue of background
  candidates, the one maximizing background throughput subject to a
  foreground slowdown bound — falling back to the least-harmful
  candidate when none fits.

The predictor is exact for single-phase applications (the steady state
*is* one interval) and a weighted average over phases otherwise.
"""

from dataclasses import dataclass

from repro.cache.llc import WayMask
from repro.runtime.harness import paper_pair_allocations
from repro.sim.interval import AppState, solve_interval
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class PairingPrediction:
    """Predicted steady state of one fg/bg pairing."""

    bg_name: str
    fg_slowdown: float
    bg_rate_ips: float
    fg_ways: int
    bg_ways: int


class InterferencePredictor:
    """Steady-state predictions from the interval solver."""

    def __init__(self, machine):
        self.machine = machine

    def _solve(self, states):
        return solve_interval(
            states,
            self.machine.config,
            self.machine.memory_system,
            self.machine.power_model,
        )

    def _phase_points(self, app):
        """(weight, progress) midpoints of each phase."""
        points = []
        cumulative = 0.0
        for phase in app.phases:
            points.append((phase.weight, cumulative + phase.weight / 2))
            cumulative += phase.weight
        return points

    def solo_rate(self, app, allocation):
        """Phase-weighted solo instruction rate under ``allocation``."""
        total = 0.0
        for weight, progress in self._phase_points(app):
            state = AppState(app=app, allocation=allocation, progress=progress)
            rate = self._solve([state]).per_app[app.name].rate_ips
            total += weight / rate  # time-per-instruction averages
        return 1.0 / total

    def predict(self, fg, bg, fg_ways=12, bg_ways=12):
        """Predict the pairing's steady state under a static split."""
        if fg.name == bg.name:
            import dataclasses

            bg = dataclasses.replace(bg, name=f"{bg.name}#2", phases=bg.phases)
        fg_alloc, bg_alloc = paper_pair_allocations(
            fg, bg, fg_ways, bg_ways, self.machine.config.llc_ways
        )
        solo = self.solo_rate(fg, fg_alloc.with_mask(WayMask.full(self.machine.config.llc_ways)))
        fg_time = 0.0
        bg_rate_accumulator = 0.0
        for weight, progress in self._phase_points(fg):
            fg_state = AppState(app=fg, allocation=fg_alloc, progress=progress)
            bg_state = AppState(app=bg, allocation=bg_alloc, progress=0.5)
            solution = self._solve([fg_state, bg_state])
            fg_rate = solution.per_app[fg.name].rate_ips
            fg_time += weight / fg_rate
            bg_rate_accumulator += weight * solution.per_app[bg.name].rate_ips
        co_rate = 1.0 / fg_time
        return PairingPrediction(
            bg_name=bg.name,
            fg_slowdown=solo / co_rate,
            bg_rate_ips=bg_rate_accumulator,
            fg_ways=fg_ways,
            bg_ways=bg_ways,
        )


@dataclass
class SchedulingDecision:
    """The scheduler's pick plus the full candidate ranking."""

    chosen: PairingPrediction  # None only when candidates were empty
    feasible: bool
    predictions: list


class ContentionAwareScheduler:
    """Chooses a background co-runner under a fg slowdown bound."""

    def __init__(self, machine, slowdown_bound=1.05, fg_ways=12, bg_ways=12):
        if slowdown_bound < 1.0:
            raise ValidationError("a slowdown bound below 1.0 is unsatisfiable")
        self.predictor = InterferencePredictor(machine)
        self.slowdown_bound = slowdown_bound
        self.fg_ways = fg_ways
        self.bg_ways = bg_ways

    def choose(self, fg, candidates):
        """Pick the best background for ``fg`` from ``candidates``."""
        if not candidates:
            raise ValidationError("need at least one background candidate")
        predictions = [
            self.predictor.predict(fg, bg, self.fg_ways, self.bg_ways)
            for bg in candidates
        ]
        feasible = [p for p in predictions if p.fg_slowdown <= self.slowdown_bound]
        if feasible:
            chosen = max(feasible, key=lambda p: p.bg_rate_ips)
            return SchedulingDecision(chosen=chosen, feasible=True, predictions=predictions)
        chosen = min(predictions, key=lambda p: p.fg_slowdown)
        return SchedulingDecision(chosen=chosen, feasible=False, predictions=predictions)
