"""Versioned on-disk stores for measurement results.

Two record kinds live here:

- the *characterization store* — the characterizer's memoized solo
  RunResults, so a later process (or a CI job splitting the benches)
  starts warm. Only plain measurement data is stored — results are
  reproducible, so a stale file is merely slower, never wrong (and a
  version stamp invalidates files from older model versions);
- the *run-record store* — :class:`RunRecord` / :class:`RunSet`, the
  backend-neutral outcome of a policy run (policy, backend, split, and
  the fg-cost/bg-rate metrics with their units). ``repro consolidate
  --json``, the trace commands, and ``repro compare`` all speak this
  schema, so a run produced on one backend can be diffed against the
  other.

Both stores carry a schema-version field, write atomically (temp file +
``os.replace``), and raise :class:`~repro.util.errors.ValidationError` —
never a bare ``KeyError``/``TypeError`` — on corrupt files.
"""

import glob
import itertools
import json
import os
from dataclasses import dataclass, field

from repro.sim.engine import RunResult
from repro.util.errors import ValidationError

STORE_VERSION = 1
RUNSET_VERSION = 1


def _atomic_write_json(payload, path):
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)


def _key_to_string(key):
    app, threads, ways, prefetchers_on = key
    return f"{app}|{threads}|{ways}|{int(prefetchers_on)}"


def _key_from_string(text):
    try:
        app, threads, ways, prefetchers_on = text.rsplit("|", 3)
        return (app, int(threads), int(ways), bool(int(prefetchers_on)))
    except (ValueError, AttributeError) as exc:
        raise ValidationError(
            f"malformed characterization key {text!r}: expected "
            "'app|threads|ways|prefetchers'"
        ) from exc


def _result_to_dict(result):
    return {
        "name": result.name,
        "runtime_s": result.runtime_s,
        "instructions": result.instructions,
        "llc_misses": result.llc_misses,
        "llc_accesses": result.llc_accesses,
        "socket_energy_j": result.socket_energy_j,
        "wall_energy_j": result.wall_energy_j,
        "avg_power_w": result.avg_power_w,
        "pp0_energy_j": result.pp0_energy_j,
    }


def save_characterizer(characterizer, path, model_version=None):
    """Write the characterizer's solo-run cache to ``path``."""
    from repro import __version__

    payload = {
        "store_version": STORE_VERSION,
        "model_version": model_version or __version__,
        "runs": {
            _key_to_string(key): _result_to_dict(result)
            for key, result in characterizer._solo_cache.items()
        },
    }
    _atomic_write_json(payload, path)
    return len(payload["runs"])


def load_characterizer(characterizer, path, model_version=None):
    """Warm a characterizer's cache from ``path``.

    Returns the number of runs loaded; 0 (and no changes) when the file
    is absent or was written by a different model version.
    """
    from repro import __version__

    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"corrupt characterization store: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValidationError(
            f"corrupt characterization store {path}: not a JSON object"
        )
    if payload.get("store_version") != STORE_VERSION:
        return 0
    if payload.get("model_version") != (model_version or __version__):
        return 0
    runs = payload.get("runs")
    if not isinstance(runs, dict):
        raise ValidationError(
            f"corrupt characterization store {path}: 'runs' is not a mapping"
        )
    loaded = 0
    for key_text, data in runs.items():
        key = _key_from_string(key_text)
        try:
            result = RunResult(**data)
        except TypeError as exc:
            raise ValidationError(
                f"corrupt characterization store {path}: bad run payload "
                f"for {key_text!r}: {exc}"
            ) from exc
        characterizer._solo_cache.setdefault(key, result)
        loaded += 1
    return loaded


# -- run records: policy outcomes in a backend-neutral schema -----------------


@dataclass(frozen=True)
class RunRecord:
    """One policy outcome, reduced to plain comparable data.

    ``metrics`` holds at least ``fg_cost`` and ``bg_rate`` plus the
    chosen split (``fg_ways``/``bg_ways``); ``units`` labels the cost
    and rate axes so cross-backend diffs can refuse to compare
    incommensurable numbers. ``provenance`` carries whatever identifies
    the run (run options, sweep source, controller actions count).
    """

    policy: str
    backend: str
    fg: str
    bg: str
    fg_ways: int
    bg_ways: int
    metrics: dict
    units: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    # Resolved tenant names for N-tenant group records; empty for pair
    # records (whose on-disk shape is unchanged).
    tenants: tuple = ()

    @property
    def key(self):
        """The identity a diff matches records on.

        Pair records keep the historical ``(policy, fg, bg)`` triple;
        group records key on the full tenant tuple.
        """
        if self.tenants:
            return (self.policy,) + tuple(self.tenants)
        return (self.policy, self.fg, self.bg)

    def to_dict(self):
        data = {
            "policy": self.policy,
            "backend": self.backend,
            "fg": self.fg,
            "bg": self.bg,
            "fg_ways": self.fg_ways,
            "bg_ways": self.bg_ways,
            "metrics": dict(self.metrics),
            "units": dict(self.units),
            "provenance": dict(self.provenance),
        }
        if self.tenants:
            data["tenants"] = list(self.tenants)
        return data

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise ValidationError(f"run record is not a mapping: {data!r}")
        tenants = data.get("tenants", ())
        if isinstance(tenants, (str, bytes, dict)) or not all(
            isinstance(t, str) for t in tenants
        ):
            raise ValidationError(
                f"malformed run record: 'tenants' must be a list of "
                f"names, got {tenants!r}"
            )
        try:
            return cls(
                policy=data["policy"],
                backend=data["backend"],
                fg=data["fg"],
                bg=data["bg"],
                fg_ways=int(data["fg_ways"]),
                bg_ways=int(data["bg_ways"]),
                metrics={k: float(v) for k, v in data["metrics"].items()},
                units=dict(data.get("units", {})),
                provenance=dict(data.get("provenance", {})),
                tenants=tuple(tenants),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValidationError(f"malformed run record: {exc!r}") from exc


@dataclass
class RunSet:
    """A named batch of run records from one invocation."""

    records: list
    backend: str = ""
    model_version: str = ""
    meta: dict = field(default_factory=dict)

    def by_key(self):
        """``{(policy, fg, bg): record}``; later duplicates win."""
        return {record.key: record for record in self.records}

    def to_dict(self):
        return {
            "runset_version": RUNSET_VERSION,
            "backend": self.backend,
            "model_version": self.model_version,
            "meta": dict(self.meta),
            "records": [record.to_dict() for record in self.records],
        }


def record_from_outcome(outcome, units=None, provenance=None):
    """A :class:`RunRecord` from a policy-layer ``PolicyOutcome``."""
    metrics = {
        "fg_cost": float(outcome.fg_cost),
        "bg_rate": float(outcome.bg_rate),
        "fg_ways": float(outcome.fg_ways),
        "bg_ways": float(outcome.bg_ways),
    }
    prov = dict(provenance or {})
    measurement = outcome.measurement
    if measurement is not None and measurement.extra.get("actions") is not None:
        prov.setdefault("dynamic_actions", len(measurement.extra["actions"]))
    if outcome.sweep:
        prov.setdefault("sweep_points", len(outcome.sweep))
    return RunRecord(
        policy=outcome.policy,
        backend=outcome.backend,
        fg=outcome.fg_name,
        bg=outcome.bg_name,
        fg_ways=outcome.fg_ways,
        bg_ways=outcome.bg_ways,
        metrics=metrics,
        units=dict(units or {}),
        provenance=prov,
    )


def record_from_group_outcome(outcome, units=None, provenance=None):
    """A :class:`RunRecord` from a policy-layer ``GroupOutcome``.

    ``fg``/``bg`` summarize the group (primary name, "+"-joined peers)
    for display; the record's identity is the full ``tenants`` tuple.
    """
    metrics = {
        "fg_cost": float(outcome.fg_cost),
        "bg_rate": float(outcome.bg_rate),
        "fg_ways": float(outcome.fg_ways),
        "bg_ways": float(outcome.bg_ways),
    }
    prov = dict(provenance or {})
    measurement = outcome.measurement
    if measurement is not None and measurement.extra.get("actions") is not None:
        prov.setdefault("dynamic_actions", len(measurement.extra["actions"]))
    if outcome.sweep:
        prov.setdefault("sweep_points", len(outcome.sweep))
    if outcome.plan is not None:
        prov.setdefault("tenant_classes", dict(outcome.plan.classes))
    names = tuple(outcome.names)
    return RunRecord(
        policy=outcome.policy,
        backend=outcome.backend,
        fg=names[0],
        bg="+".join(names[1:]),
        fg_ways=outcome.fg_ways,
        bg_ways=outcome.bg_ways,
        metrics=metrics,
        units=dict(units or {}),
        provenance=prov,
        tenants=names,
    )


def runset_from_outcomes(outcomes, backend=None, capabilities=None, meta=None):
    """A :class:`RunSet` from policy outcomes (one backend per set).

    Accepts a mix of pair ``PolicyOutcome`` and N-tenant
    ``GroupOutcome`` entries (the latter carry a ``names`` roster).
    """
    from repro import __version__

    units = {}
    if capabilities is not None:
        units = {
            "fg_cost": capabilities.fg_cost_unit,
            "bg_rate": capabilities.bg_rate_unit,
        }
    records = [
        record_from_group_outcome(o, units=units)
        if hasattr(o, "names")
        else record_from_outcome(o, units=units)
        for o in outcomes
    ]
    names = {record.backend for record in records}
    if backend is None:
        backend = capabilities.name if capabilities else "|".join(sorted(names))
    return RunSet(
        records=records,
        backend=backend,
        model_version=__version__,
        meta=dict(meta or {}),
    )


def save_runset(runset, path):
    """Atomically write a :class:`RunSet` as versioned JSON."""
    _atomic_write_json(runset.to_dict(), path)
    return len(runset.records)


# -- multi-shard run-set stores ----------------------------------------------
#
# A campaign (or any set of concurrent writers) persists its records as
# many small shard files in one directory. Each writer gets a unique
# filename — pid plus a per-process counter — so two processes (or two
# shards of one process) can never race on one path; there is no
# last-write-wins ``os.replace`` between writers, only within a single
# shard's own atomic tmp-then-replace.

_shard_counter = itertools.count()


def shard_path(directory, prefix="shard"):
    """A fresh, collision-free shard filename inside ``directory``."""
    while True:
        name = f"{prefix}-{os.getpid()}-{next(_shard_counter):06d}.json"
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            return path


def save_runset_shard(runset, directory, prefix="shard"):
    """Atomically write a RunSet as a uniquely named shard file.

    Returns the path written. Safe under concurrent writers: the name
    embeds the writer's pid and a monotonic per-process counter, and the
    write itself is tmp-file + ``os.replace``.
    """
    os.makedirs(directory, exist_ok=True)
    path = shard_path(directory, prefix=prefix)
    _atomic_write_json(runset.to_dict(), path)
    return path


def merge_runsets(runsets, meta=None):
    """One RunSet holding every record of ``runsets``, in input order."""
    runsets = list(runsets)
    records = [record for runset in runsets for record in runset.records]
    backends = sorted({r.backend for r in runsets if r.backend})
    versions = sorted({r.model_version for r in runsets if r.model_version})
    return RunSet(
        records=records,
        backend="|".join(backends),
        model_version=versions[-1] if versions else "",
        meta=dict(meta or {}),
    )


def list_runset_shards(directory):
    """The shard files of a multi-shard store, in sorted (stable) order."""
    return sorted(glob.glob(os.path.join(directory, "*.json")))


def load_runset_dir(directory):
    """Merge every shard file in ``directory`` into one RunSet.

    Raises :class:`~repro.util.errors.ValidationError` naming the
    offending file when any shard is corrupt or foreign-versioned, and
    when the directory holds no shards at all.
    """
    if not os.path.isdir(directory):
        raise ValidationError(f"no run-set directory at {directory}")
    paths = list_runset_shards(directory)
    if not paths:
        raise ValidationError(f"no run-set shards in {directory}")
    return merge_runsets(
        [load_runset(path) for path in paths],
        meta={"shards": len(paths), "directory": os.path.abspath(directory)},
    )


def load_runset(path):
    """Read a :class:`RunSet`; ValidationError on corrupt/foreign files."""
    if not os.path.exists(path):
        raise ValidationError(f"no run set at {path}")
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"corrupt run set {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValidationError(f"corrupt run set {path}: not a JSON object")
    version = payload.get("runset_version")
    if version != RUNSET_VERSION:
        raise ValidationError(
            f"run set {path} has schema version {version!r}; "
            f"this build reads version {RUNSET_VERSION}"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise ValidationError(f"corrupt run set {path}: 'records' is not a list")
    return RunSet(
        records=[RunRecord.from_dict(item) for item in records],
        backend=payload.get("backend", ""),
        model_version=payload.get("model_version", ""),
        meta=payload.get("meta", {}) or {},
    )
