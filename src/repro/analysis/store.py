"""Persisting characterization results across processes.

The full-suite benches re-measure the same solo runs in every process.
``CharacterizationStore`` serializes the characterizer's memoized
RunResults to JSON so a later process (or a CI job splitting the benches)
starts warm. Only plain measurement data is stored — results are
reproducible, so a stale file is merely slower, never wrong (and a
version stamp invalidates files from older model versions).
"""

import json
import os

from repro.sim.engine import RunResult
from repro.util.errors import ValidationError

STORE_VERSION = 1


def _key_to_string(key):
    app, threads, ways, prefetchers_on = key
    return f"{app}|{threads}|{ways}|{int(prefetchers_on)}"


def _key_from_string(text):
    app, threads, ways, prefetchers_on = text.rsplit("|", 3)
    return (app, int(threads), int(ways), bool(int(prefetchers_on)))


def _result_to_dict(result):
    return {
        "name": result.name,
        "runtime_s": result.runtime_s,
        "instructions": result.instructions,
        "llc_misses": result.llc_misses,
        "llc_accesses": result.llc_accesses,
        "socket_energy_j": result.socket_energy_j,
        "wall_energy_j": result.wall_energy_j,
        "avg_power_w": result.avg_power_w,
        "pp0_energy_j": result.pp0_energy_j,
    }


def save_characterizer(characterizer, path, model_version=None):
    """Write the characterizer's solo-run cache to ``path``."""
    from repro import __version__

    payload = {
        "store_version": STORE_VERSION,
        "model_version": model_version or __version__,
        "runs": {
            _key_to_string(key): _result_to_dict(result)
            for key, result in characterizer._solo_cache.items()
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["runs"])


def load_characterizer(characterizer, path, model_version=None):
    """Warm a characterizer's cache from ``path``.

    Returns the number of runs loaded; 0 (and no changes) when the file
    is absent or was written by a different model version.
    """
    from repro import __version__

    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"corrupt characterization store: {exc}") from exc
    if payload.get("store_version") != STORE_VERSION:
        return 0
    if payload.get("model_version") != (model_version or __version__):
        return 0
    loaded = 0
    for key_text, data in payload["runs"].items():
        key = _key_from_string(key_text)
        characterizer._solo_cache.setdefault(key, RunResult(**data))
        loaded += 1
    return loaded
