"""Regression comparison between two result artifact sets.

``python -m repro evaluate`` writes JSON artifacts; this module diffs two
such directories (e.g. before and after a model change) and reports
which headline quantities moved — the regression gate a maintained
release runs in CI. It also diffs two :class:`~repro.analysis.store.RunSet`
files (``repro consolidate --json``): records are matched by
``(policy, fg, bg)``, so a run set produced on one backend can be
compared against the other — split choices compare directly, while
cost/rate metrics are only compared when both sides measured them in
the same unit.
"""

import json
import os
from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class MetricDelta:
    stage: str
    metric: str
    before: float
    after: float

    @property
    def absolute(self):
        return self.after - self.before

    @property
    def relative(self):
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return self.after / self.before - 1.0


def _load(directory, stage):
    path = os.path.join(directory, f"{stage}.json")
    if not os.path.exists(path):
        raise ValidationError(f"missing artifact {path}")
    with open(path) as handle:
        return json.load(handle)


def _flatten(prefix, node, out):
    if isinstance(node, dict):
        for key, value in node.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), value, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)


def compare_stage(before_dir, after_dir, stage):
    """All numeric metric deltas for one stage."""
    before = {}
    after = {}
    _flatten("", _load(before_dir, stage), before)
    _flatten("", _load(after_dir, stage), after)
    deltas = []
    for metric in sorted(set(before) & set(after)):
        deltas.append(
            MetricDelta(
                stage=stage,
                metric=metric,
                before=before[metric],
                after=after[metric],
            )
        )
    return deltas


def regressions(before_dir, after_dir, stages=("headline",), tolerance=0.02):
    """Metrics that moved more than ``tolerance`` (relative).

    Returns (moved, checked_count). An empty ``moved`` list means the
    two runs agree within tolerance on every shared metric.
    """
    moved = []
    checked = 0
    for stage in stages:
        for delta in compare_stage(before_dir, after_dir, stage):
            checked += 1
            if abs(delta.relative) > tolerance and abs(delta.absolute) > 1e-6:
                moved.append(delta)
    return moved, checked


def diff_runsets(before, after, tolerance=0.02):
    """Diff two RunSets record-by-record.

    ``before``/``after`` are :class:`~repro.analysis.store.RunSet`
    instances, paths to saved run-set JSON, or directories of run-set
    shard files (a multi-shard campaign store merges before diffing).
    Records pair up by ``(policy, fg, bg)`` — or, for N-tenant group
    records, by ``(policy, *tenants)``. Split choices
    (``fg_ways``/``bg_ways``) are always compared; ``fg_cost``/
    ``bg_rate`` only when both records label them with the same unit
    (so an analytical-vs-trace diff reports allocation agreement
    without comparing seconds to cycles).

    Returns ``(moved, checked, unmatched)``: deltas beyond tolerance,
    the number of metric comparisons made, and keys present on only
    one side.
    """
    from repro.analysis.store import RunSet, load_runset, load_runset_dir

    def _coerce(side):
        if isinstance(side, RunSet):
            return side
        if os.path.isdir(side):
            return load_runset_dir(side)
        return load_runset(side)

    before = _coerce(before)
    after = _coerce(after)
    before_by_key = before.by_key()
    after_by_key = after.by_key()
    unmatched = sorted(
        set(before_by_key) ^ set(after_by_key),
    )
    moved = []
    checked = 0
    for key in sorted(set(before_by_key) & set(after_by_key)):
        rec_before, rec_after = before_by_key[key], after_by_key[key]
        # Keys are (policy, fg, bg) for pairs and (policy, *tenants)
        # for N-tenant group records — format length-agnostically.
        stage = "{}:{}".format(key[0], "+".join(key[1:]))
        for metric in sorted(set(rec_before.metrics) & set(rec_after.metrics)):
            if metric not in ("fg_ways", "bg_ways"):
                unit_before = rec_before.units.get(metric)
                unit_after = rec_after.units.get(metric)
                if unit_before != unit_after:
                    continue
            checked += 1
            delta = MetricDelta(
                stage=stage,
                metric=metric,
                before=rec_before.metrics[metric],
                after=rec_after.metrics[metric],
            )
            if abs(delta.relative) > tolerance and abs(delta.absolute) > 1e-6:
                moved.append(delta)
    return moved, checked, unmatched


def format_deltas(deltas):
    from repro.util.tables import format_table

    rows = [
        (
            d.stage,
            d.metric,
            f"{d.before:.4f}",
            f"{d.after:.4f}",
            f"{d.relative:+.1%}",
        )
        for d in deltas
    ]
    return format_table(
        ["stage", "metric", "before", "after", "change"],
        rows,
        title="Evaluation deltas",
    )
