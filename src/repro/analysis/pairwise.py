"""Asymmetry analysis of the pairwise slowdown matrix (Section 5.1).

The paper reads Fig. 8 two ways:

- *sensitive* applications suffer when anything runs behind them — a
  dark column: average slowdown as foreground exceeds 10%;
- *aggressive* applications hurt whatever runs in front of them — a
  dark row: average slowdown caused as background exceeds 10%.

It names both sets explicitly; ``classify_interference`` recomputes them
from a measured matrix so the golden tests can pin the lists.
"""

from dataclasses import dataclass

from repro.util.errors import ValidationError

SENSITIVITY_THRESHOLD = 0.10  # the paper's "over 10%"
MILD_THRESHOLD = 0.025  # the paper's "less than 2.5%"


@dataclass
class InterferenceProfile:
    """Per-application view of the pairwise matrix."""

    name: str
    avg_slowdown_as_fg: float  # column average (sensitivity)
    worst_slowdown_as_fg: float
    avg_slowdown_caused_as_bg: float  # row average (aggressiveness)
    worst_slowdown_caused_as_bg: float

    @property
    def sensitive(self):
        return self.avg_slowdown_as_fg > SENSITIVITY_THRESHOLD

    @property
    def aggressive(self):
        return self.avg_slowdown_caused_as_bg > SENSITIVITY_THRESHOLD

    @property
    def mild(self):
        return self.avg_slowdown_as_fg < MILD_THRESHOLD


def classify_interference(matrix):
    """Build per-app interference profiles from {(fg, bg): slowdown}.

    Self-pairs are excluded from averages, as the paper's heat map
    discussion considers distinct co-runners.
    """
    if not matrix:
        raise ValidationError("empty slowdown matrix")
    names = sorted({fg for fg, _ in matrix} | {bg for _, bg in matrix})
    profiles = {}
    for name in names:
        as_fg = [
            v - 1.0 for (fg, bg), v in matrix.items() if fg == name and bg != name
        ]
        as_bg = [
            v - 1.0 for (fg, bg), v in matrix.items() if bg == name and fg != name
        ]
        if not as_fg or not as_bg:
            raise ValidationError(f"{name}: matrix is not complete")
        profiles[name] = InterferenceProfile(
            name=name,
            avg_slowdown_as_fg=sum(as_fg) / len(as_fg),
            worst_slowdown_as_fg=max(as_fg),
            avg_slowdown_caused_as_bg=sum(as_bg) / len(as_bg),
            worst_slowdown_caused_as_bg=max(as_bg),
        )
    return profiles


def sensitive_applications(profiles):
    return sorted(n for n, p in profiles.items() if p.sensitive)


def aggressive_applications(profiles):
    return sorted(n for n, p in profiles.items() if p.aggressive)


def mild_applications(profiles):
    """Apps that barely notice co-runners (the paper's ~half the suite)."""
    return sorted(n for n, p in profiles.items() if p.mild)
