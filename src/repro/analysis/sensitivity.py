"""Controller parameter sensitivity (Section 6.3).

"A sensitivity study to set the MPKI derivative thresholds for phase
detection and allocation size found selected parameters: MPKI_THR1 =
0.02, MPKI_THR2 = 0.02, and MPKI_THR3 = 0.05. We've found the results
largely insensitive to small parameter changes."

``threshold_sensitivity`` reruns a dynamic pair across a grid of
thresholds and reports foreground slowdown and background throughput for
each — the reproduction of that study, and a guard that our controller
inherits the same robustness.
"""

from dataclasses import dataclass

from repro.core.dynamic import DynamicPartitionController
from repro.core.phase import PhaseDetector
from repro.runtime.harness import paper_pair_allocations
from repro.util.errors import ValidationError

DEFAULT_THR1_GRID = (0.01, 0.02, 0.04)
DEFAULT_THR3_GRID = (0.03, 0.05, 0.08)


@dataclass(frozen=True)
class SensitivityPoint:
    thr1: float
    thr3: float
    fg_slowdown: float
    bg_rate_ips: float
    actions: int


def run_dynamic_with_thresholds(machine, fg, bg, thr1, thr2, thr3):
    """One dynamic co-run with explicit controller thresholds."""
    detector = PhaseDetector(thr1=thr1, thr2=thr2)
    controller = DynamicPartitionController(
        fg_name=fg.name,
        bg_name=bg.name if bg.name != fg.name else f"{bg.name}#2",
        llc_ways=machine.config.llc_ways,
        way_mb=machine.config.way_mb,
        thr3=thr3,
        detector=detector,
    )
    masks = controller.masks()
    fg_alloc, bg_alloc = paper_pair_allocations(
        fg, bg, llc_ways=machine.config.llc_ways
    )
    pair = machine.run_pair(
        fg,
        bg,
        fg_alloc.with_mask(masks[controller.fg_name]),
        bg_alloc.with_mask(masks[controller.bg_name]),
        bg_continuous=True,
        controller=controller,
    )
    return pair, controller


def threshold_sensitivity(
    machine,
    fg,
    bg,
    thr1_grid=DEFAULT_THR1_GRID,
    thr3_grid=DEFAULT_THR3_GRID,
):
    """Sweep (THR1=THR2, THR3) grid; returns a list of SensitivityPoints."""
    if not thr1_grid or not thr3_grid:
        raise ValidationError("grids cannot be empty")
    threads = 1 if fg.scalability.single_threaded else 4
    solo = machine.run_solo(fg, threads=threads)
    points = []
    for thr1 in thr1_grid:
        for thr3 in thr3_grid:
            pair, controller = run_dynamic_with_thresholds(
                machine, fg, bg, thr1=thr1, thr2=thr1, thr3=thr3
            )
            points.append(
                SensitivityPoint(
                    thr1=thr1,
                    thr3=thr3,
                    fg_slowdown=pair.fg.runtime_s / solo.runtime_s,
                    bg_rate_ips=pair.bg_rate_ips,
                    actions=len(controller.actions),
                )
            )
    return points


def spread(points, attribute="fg_slowdown"):
    """Relative spread (max/min - 1) of a metric across the grid."""
    values = [getattr(p, attribute) for p in points]
    lo = min(values)
    if lo <= 0:
        raise ValidationError(f"non-positive {attribute} in the grid")
    return max(values) / lo - 1.0
