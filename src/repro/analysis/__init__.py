"""Experiment drivers: one entry point per paper table and figure.

``Characterizer`` caches the per-application measurements (Sections 3.1-
3.4) that several figures share; ``ConsolidationStudy`` caches the
representative-pair runs shared by Figs. 9-13 and the headline numbers.
The ``figNN_*`` / ``tabNN_*`` functions in :mod:`repro.analysis.experiments`
return plain data structures that the benchmark harness prints.
"""

from repro.analysis.characterize import Characterizer
from repro.analysis.classify import (
    classify_llc_utility,
    classify_scalability,
    llc_utility_table,
    scalability_table,
)
from repro.analysis.consolidation import ConsolidationStudy

__all__ = [
    "Characterizer",
    "ConsolidationStudy",
    "classify_llc_utility",
    "classify_scalability",
    "llc_utility_table",
    "scalability_table",
]
