"""Pareto analysis of the allocation space (the Fig. 6/7 observation).

"We also can see many resource allocations achieve near optimal
execution time, indicating that there should be spare resources
available for background work" — this module quantifies that: the
runtime/energy Pareto frontier of the 96-allocation space, and the
*yieldable* resources (threads and ways an application can give up while
staying within a tolerance of its best point).
"""

from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class AllocationPoint:
    threads: int
    ways: int
    runtime_s: float
    energy_j: float


def _points(grid, energy_key="wall_energy_j"):
    return [
        AllocationPoint(
            threads=threads,
            ways=ways,
            runtime_s=cell["runtime_s"],
            energy_j=cell[energy_key],
        )
        for (threads, ways), cell in grid.items()
    ]


def pareto_frontier(grid, energy_key="wall_energy_j"):
    """Allocations not dominated in (runtime, energy).

    A point dominates another when it is no worse on both axes and
    strictly better on one.
    """
    points = _points(grid, energy_key)
    if not points:
        raise ValidationError("empty allocation grid")
    frontier = []
    for p in points:
        dominated = any(
            (q.runtime_s <= p.runtime_s and q.energy_j <= p.energy_j)
            and (q.runtime_s < p.runtime_s or q.energy_j < p.energy_j)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.runtime_s)


def near_optimal_allocations(grid, tolerance=0.025, energy_key="wall_energy_j"):
    """Allocations within ``tolerance`` of the best energy."""
    points = _points(grid, energy_key)
    if not points:
        raise ValidationError("empty allocation grid")
    best = min(p.energy_j for p in points)
    return [p for p in points if p.energy_j <= best * (1 + tolerance)]


@dataclass(frozen=True)
class YieldableResources:
    """What an application can give up at near-optimal energy."""

    ways_yieldable: int
    threads_yieldable: int
    near_optimal_count: int
    total_allocations: int

    @property
    def mb_yieldable(self):
        return self.ways_yieldable * 0.5


def yieldable_resources(grid, tolerance=0.025, energy_key="wall_energy_j"):
    """The Fig. 7 quantity: resources freed without leaving the lowest-
    energy contour."""
    near = near_optimal_allocations(grid, tolerance, energy_key)
    max_ways = max(w for _, w in grid)
    max_threads = max(t for t, _ in grid)
    return YieldableResources(
        ways_yieldable=max_ways - min(p.ways for p in near),
        threads_yieldable=max_threads - min(p.threads for p in near),
        near_optimal_count=len(near),
        total_allocations=len(grid),
    )
