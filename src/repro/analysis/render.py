"""Text rendering of each figure's data for the CLI.

The benchmarks print rich tables; the ``python -m repro figure N``
command uses these lighter renderers so every figure is readable
straight from a terminal without pytest.
"""

import statistics as st

from repro.util.plot import heatmap, line_plot, sparkline  # noqa: F401 (sparkline used by fig01)
from repro.util.tables import format_table


def render_fig01(curves):
    rows = []
    for name, curve in sorted(curves.items()):
        series = [curve.get(t) for t in range(1, 9)]
        rows.append(
            (
                name,
                f"{max(v for v in series if v is not None):.2f}x",
                sparkline([v for v in series if v is not None]),
            )
        )
    return format_table(
        ["application", "peak speedup", "1..8 threads"],
        rows,
        title="Fig. 1 — thread scalability",
    )


def render_fig02(data):
    blocks = []
    for app, by_threads in data.items():
        series = {
            f"{t}T": [(w, curve[w]) for w in sorted(curve)]
            for t, curve in sorted(by_threads.items())
        }
        blocks.append(
            line_plot(
                series,
                height=8,
                width=48,
                title=f"Fig. 2 — {app}: runtime (s) vs ways",
            )
        )
    return "\n\n".join(blocks)


def render_sensitivity(data, title, label):
    biggest = max(abs(v - 1.0) for v in data.values()) or 1.0
    rows = []
    for name, value in sorted(data.items(), key=lambda i: i[1]):
        bar = "#" * int(abs(value - 1.0) / biggest * 30)
        rows.append((name, f"{value:.3f}", bar))
    return format_table(["application", label, "|value - 1|"], rows, title=title)


def render_fig05(out):
    rows = [
        (cid, out["representatives"][cid], ", ".join(members))
        for cid, members in out["clusters"].items()
    ]
    return format_table(
        ["cluster", "medoid", "members"],
        rows,
        title=f"Fig. 5 / Table 3 — {out['num_clusters']} clusters",
    )


def render_fig06(space):
    blocks = []
    for app, grid in space.items():
        matrix = {
            (threads, ways): cell["runtime_s"]
            for (threads, ways), cell in grid.items()
        }
        thread_labels = sorted({t for t, _ in matrix})
        way_labels = sorted({w for _, w in matrix})
        blocks.append(
            heatmap(
                matrix,
                thread_labels,
                way_labels,
                title=f"Fig. 6 — {app}: runtime (rows=threads, cols=ways; dark=slow)",
            )
        )
    return "\n\n".join(blocks)


def render_fig08(matrix):
    names = sorted({fg for fg, _ in matrix})
    return heatmap(
        matrix,
        names,
        names,
        title="Fig. 8 — fg slowdown (rows=fg, cols=bg)",
        lo=1.0,
        hi=1.2,
    )


def render_policy_rows(rows, title, value_format="{:.3f}"):
    table_rows = []
    for pair, values in sorted(rows.items()):
        table_rows.append(
            [f"{pair[0]}+{pair[1]}"]
            + [value_format.format(values[p]) for p in ("shared", "fair", "biased")]
        )
    summary = [
        "avg:"
        + "  ".join(
            f" {p}={st.mean(v[p] for v in rows.values()):.3f}"
            for p in ("shared", "fair", "biased")
        )
    ]
    return (
        format_table(["pair", "shared", "fair", "biased"], table_rows, title=title)
        + "\n"
        + summary[0]
    )


def render_fig12(series):
    plot_series = {
        name: [(p["instructions"], p["mpki"]) for p in points]
        for name, points in series.items()
    }
    return line_plot(
        plot_series,
        height=12,
        width=64,
        title="Fig. 12 — 429.mcf MPKI vs retired instructions",
    )


def render_fig13(rows):
    table_rows = [
        (
            f"{fg}+{bg}",
            f"{v['bg_throughput_dynamic']:.2f}",
            f"{v['bg_throughput_shared']:.2f}",
            f"{v['fg_slowdown_dynamic']:.3f}",
        )
        for (fg, bg), v in sorted(rows.items())
    ]
    return format_table(
        ["pair", "bg dyn/static", "bg shared/static", "fg slowdown (dyn)"],
        table_rows,
        title="Fig. 13 — dynamic partitioning",
    )


def render_controller_actions(actions, limit=25, title=None):
    """The dynamic controller's reallocation trail as a table.

    ``limit`` truncates long trails; 0 shows every action.
    """
    actions = list(actions)
    shown = actions if not limit else actions[:limit]
    rows = [
        (f"{a.time_s:.1f}", a.fg_ways, f"{a.mpki:.1f}", a.reason)
        for a in shown
    ]
    text = format_table(["t (s)", "fg ways", "MPKI", "action"], rows,
                        title=title)
    if limit and len(actions) > limit:
        text += (
            f"\n({len(actions) - limit} more actions; --actions 0 shows all)"
        )
    return text


def render_dynamic_timeline(result, limit=25):
    """A trace-driven dynamic run: reallocation timeline + domain stats.

    ``result`` is a :class:`~repro.sim.trace_engine.DynamicTraceResult`;
    ``limit`` truncates the timeline (0 shows every reallocation).
    """
    timeline = result.timeline
    shown = timeline if not limit else timeline[:limit]
    rows = [
        (
            str(e["epoch"]),
            f"{e['time_s']:.1f}",
            str(e["fg_ways"]),
            f"{e['mpki']:.1f}",
            " ".join(
                f"{name}={e['masks'][name]:#05x}" for name in sorted(e["masks"])
            ),
            e["reason"],
        )
        for e in shown
    ]
    driver = "native epoch kernel" if result.native else "python epoch driver"
    lines = [
        format_table(
            ["epoch", "t (s)", "fg ways", "MPKI", "way masks", "action"],
            rows,
            title=f"Trace-driven dynamic partitioning ({driver})",
        )
    ]
    if limit and len(timeline) > limit:
        lines.append(
            f"({len(timeline) - limit} more reallocations; "
            "--actions 0 shows all)"
        )
    for name, s in sorted(result.stats.items()):
        miss_ratio = s.llc_misses / s.accesses if s.accesses else 0.0
        lines.append(
            f"{name}: {s.accesses} accesses, avg latency {s.avg_latency:.2f} "
            f"cycles, LLC miss ratio {100 * miss_ratio:.2f}%"
        )
    lines.append(
        f"{result.epochs} epochs, {len(timeline)} reallocations, "
        f"{len(result.actions)} controller actions"
    )
    return "\n".join(lines)


def render_trace_sweep(data, title="Way-utility curves (one profiled co-run)"):
    """Per-domain hits/miss-ratio under every way allocation."""
    curves = data["curves"]
    names = list(curves)
    num_ways = max(c.num_ways for c in curves.values())
    header = ["ways"]
    for name in names:
        header += [f"{name} hits", f"{name} miss%"]
    rows = []
    for ways in range(1, num_ways + 1):
        row = [str(ways)]
        for name in names:
            curve = curves[name]
            row += [str(curve.hits(ways)), f"{100 * curve.miss_ratio(ways):.1f}"]
        rows.append(tuple(row))
    lines = [format_table(header, rows, title=title)]
    for name in names:
        curve = curves[name]
        lines.append(
            f"{name}: {curve.accesses} LLC refs, "
            f"hits(1..{curve.num_ways}) {sparkline(list(curve.curve().values()))}"
        )
    return "\n".join(lines)


def render_headline(numbers):
    rows = []
    for policy, metrics in numbers.items():
        for metric, value in metrics.items():
            rows.append((policy, metric, f"{value:.3f}"))
    return format_table(["policy", "metric", "value"], rows, title="Headline numbers")
