"""Batch evaluation: run the whole study once, keep the artifacts.

``EvaluationRunner`` executes the paper's evaluation stage by stage and
writes one JSON artifact per stage plus a manifest. Stages whose
artifact already exists are skipped (resumability), so an interrupted
run — or a re-run after touching only the docs — costs nothing.

`python -m repro evaluate --output results/` drives it from the CLI.
"""

import json
import os
import statistics as st

from repro.analysis import experiments as ex
from repro.analysis.characterize import Characterizer
from repro.analysis.classify import classify_llc_utility, classify_scalability
from repro.analysis.consolidation import ConsolidationStudy
from repro.exec import resolve_workers
from repro.sim import Machine
from repro.util.errors import ValidationError
from repro.workloads import all_applications

MANIFEST = "manifest.json"


class EvaluationRunner:
    """Runs evaluation stages and persists their outputs as JSON."""

    def __init__(
        self, output_dir, machine=None, characterizer=None, study=None, workers=None
    ):
        self.output_dir = output_dir
        os.makedirs(output_dir, exist_ok=True)
        self.machine = machine or Machine()
        self.characterizer = characterizer or Characterizer(self.machine)
        self.study = study or ConsolidationStudy(self.machine)
        self.workers = workers
        self._stages = {
            "classification": self._stage_classification,
            "scalability": self._stage_scalability,
            "policies": self._stage_policies,
            "energy": self._stage_energy,
            "dynamic": self._stage_dynamic,
            "headline": self._stage_headline,
            "runset": self._stage_runset,
        }

    # -- driving ------------------------------------------------------------

    def stage_names(self):
        return list(self._stages)

    def run(self, stages=None, force=False):
        """Run the requested stages; returns {stage: path}.

        Stages with an existing artifact are skipped unless ``force``.
        """
        stages = list(stages) if stages is not None else self.stage_names()
        unknown = [s for s in stages if s not in self._stages]
        if unknown:
            raise ValidationError(f"unknown stages: {unknown}")
        written = {}
        study_stages = {"policies", "energy", "dynamic", "headline", "runset"}
        pending = [
            s
            for s in stages
            if force or not os.path.exists(self._path(s))
        ]
        if resolve_workers(self.workers) > 1 and study_stages.intersection(pending):
            # One parallel warm-up fills every study cache the pending
            # stages will slice; the stages themselves stay serial.
            self.study.warm(workers=self.workers)
        for stage in stages:
            path = self._path(stage)
            if os.path.exists(path) and not force:
                written[stage] = path
                continue
            payload = self._stages[stage]()
            with open(path, "w") as handle:
                json.dump(payload, handle, indent=1)
            written[stage] = path
        self._write_manifest(written)
        return written

    def _path(self, stage):
        return os.path.join(self.output_dir, f"{stage}.json")

    def _write_manifest(self, written):
        from repro import __version__

        manifest = {
            "model_version": __version__,
            "stages": {stage: os.path.basename(p) for stage, p in written.items()},
        }
        with open(os.path.join(self.output_dir, MANIFEST), "w") as handle:
            json.dump(manifest, handle, indent=1)

    # -- stages ------------------------------------------------------------------

    def _stage_classification(self):
        rows = {}
        for app in all_applications():
            rows[app.name] = {
                "suite": app.suite,
                "scalability": classify_scalability(
                    self.characterizer.scalability_curve(app)
                ),
                "scalability_expected": app.expected_scalability_class,
                "llc_utility": classify_llc_utility(
                    self.characterizer.llc_curve(app)
                ),
                "llc_utility_expected": app.expected_llc_class,
            }
        matches = sum(
            1
            for row in rows.values()
            if row["scalability"] == row["scalability_expected"]
            and row["llc_utility"] == row["llc_utility_expected"]
        )
        return {"applications": rows, "matching": matches, "total": len(rows)}

    def _stage_scalability(self):
        return {
            app.name: self.characterizer.scalability_curve(app)
            for app in all_applications()
        }

    def _stage_policies(self):
        rows = ex.fig09_partitioning_policies(self.study)
        summary = {}
        for policy in ("shared", "fair", "biased"):
            values = [v[policy] for v in rows.values()]
            summary[policy] = {
                "avg_slowdown": st.mean(values) - 1,
                "worst_slowdown": max(values) - 1,
            }
        return {
            "pairs": {f"{fg}+{bg}": v for (fg, bg), v in rows.items()},
            "summary": summary,
        }

    def _stage_energy(self):
        energy = ex.fig10_consolidation_energy(self.study)
        speedup = ex.fig11_weighted_speedup(self.study)
        return {
            "energy": {f"{fg}+{bg}": v for (fg, bg), v in energy.items()},
            "weighted_speedup": {
                f"{fg}+{bg}": v for (fg, bg), v in speedup.items()
            },
        }

    def _stage_dynamic(self):
        rows = ex.fig13_dynamic_background_throughput(self.study)
        return {f"{fg}+{bg}": v for (fg, bg), v in rows.items()}

    def _stage_headline(self):
        return ex.headline_numbers(self.study)

    def _stage_runset(self):
        """Every representative-pair policy run as a versioned RunSet.

        The artifact is the same schema ``repro consolidate --json``
        writes, so ``repro compare`` can diff an evaluation batch
        against a single ad-hoc run (or a trace-backend run set).
        """
        from repro.analysis.store import RunRecord, runset_from_outcomes

        capabilities = self.study.backend.capabilities()
        outcomes = [
            self.study.policy(fg_id, bg_id, policy)
            for fg_id, bg_id in self.study.ordered_pairs()
            for policy in ("shared", "fair", "biased")
        ]
        runset = runset_from_outcomes(
            outcomes,
            capabilities=capabilities,
            meta={"source": "evaluate", "stage": "runset"},
        )
        units = {
            "fg_cost": capabilities.fg_cost_unit,
            "bg_rate": capabilities.bg_rate_unit,
        }
        for fg_id, bg_id in self.study.ordered_pairs():
            pair, controller = self.study.dynamic(fg_id, bg_id)
            fg_ways = controller.fg_ways
            bg_ways = capabilities.llc_ways - fg_ways
            runset.records.append(
                RunRecord(
                    policy="dynamic",
                    backend=capabilities.name,
                    fg=controller.fg_name,
                    bg=controller.bg_name,
                    fg_ways=fg_ways,
                    bg_ways=bg_ways,
                    metrics={
                        "fg_cost": pair.fg.runtime_s,
                        "bg_rate": pair.bg_rate_ips,
                        "fg_ways": float(fg_ways),
                        "bg_ways": float(bg_ways),
                    },
                    units=units,
                    provenance={"dynamic_actions": len(controller.actions)},
                )
            )
        return runset.to_dict()
