"""Generate a full paper-vs-measured markdown report.

``python -m repro report`` (or :func:`generate_report`) reruns the
summary experiments and emits a document in the EXPERIMENTS.md shape,
with this build's actual numbers — useful after any model change to see
every headline quantity at once.
"""

import statistics as st

from repro.analysis import experiments as ex
from repro.analysis.characterize import Characterizer
from repro.analysis.classify import classify_llc_utility, classify_scalability
from repro.analysis.consolidation import ConsolidationStudy
from repro.sim import Machine
from repro.workloads import all_applications

PAPER_HEADLINES = {
    ("shared", "energy_improvement"): 0.10,
    ("shared", "weighted_speedup"): 1.54,
    ("shared", "avg_slowdown"): 0.06,
    ("shared", "worst_slowdown"): 0.345,
    ("fair", "avg_slowdown"): 0.061,
    ("fair", "worst_slowdown"): 0.163,
    ("biased", "energy_improvement"): 0.12,
    ("biased", "weighted_speedup"): 1.60,
    ("biased", "avg_slowdown"): 0.023,
    ("biased", "worst_slowdown"): 0.074,
    ("dynamic", "fg_gap_to_best_static"): 0.02,
    ("dynamic", "bg_throughput_gain"): 0.19,
    ("dynamic", "bg_throughput_shared_gain"): 0.53,
}


def _section(title):
    return [f"\n## {title}\n"]


def generate_report(machine=None, characterizer=None, study=None):
    """Return the report as a markdown string."""
    machine = machine or Machine()
    characterizer = characterizer or Characterizer(machine)
    study = study or ConsolidationStudy(machine)
    lines = ["# Reproduction report (generated)\n"]
    lines += _classification_section(characterizer)
    lines += _working_set_section(characterizer)
    lines += _headline_section(study)
    lines += _dynamic_section(study)
    return "\n".join(lines)


def _classification_section(characterizer):
    lines = _section("Workload classification vs Tables 1 and 2")
    scal_ok = llc_ok = bw_ok = 0
    apps = all_applications()
    for app in apps:
        if (
            classify_scalability(characterizer.scalability_curve(app))
            == app.expected_scalability_class
        ):
            scal_ok += 1
        if (
            classify_llc_utility(characterizer.llc_curve(app))
            == app.expected_llc_class
        ):
            llc_ok += 1
        if app.name == "stream_uncached":
            bw_ok += 1
            continue
        measured = characterizer.bandwidth_sensitivity(app) > 1.18
        if measured == app.bandwidth_sensitive:
            bw_ok += 1
    lines.append(f"- scalability classes matching Table 1: **{scal_ok}/{len(apps)}**")
    lines.append(f"- LLC utility classes matching Table 2: **{llc_ok}/{len(apps)}**")
    lines.append(f"- bandwidth-sensitivity set matching Fig. 4: **{bw_ok}/{len(apps)}**")
    return lines


def _working_set_section(characterizer):
    lines = _section("Working sets (Section 3.2)")
    apps = all_applications()
    within_1mb = within_3mb = 0
    for app in apps:
        curve = characterizer.llc_curve(app)
        if curve[2] <= curve[12] * 1.03:
            within_1mb += 1
        if curve[6] <= curve[12] * 1.03:
            within_3mb += 1
    lines.append(
        f"- peak within 1 MB: **{within_1mb / len(apps):.0%}** (paper: 44%)"
    )
    lines.append(
        f"- peak within 3 MB: **{within_3mb / len(apps):.0%}** (paper: 78%)"
    )
    return lines


def _headline_section(study):
    lines = _section("Headline numbers (abstract / Section 8)")
    numbers = ex.headline_numbers(study)
    lines.append("| policy | metric | measured | paper |")
    lines.append("|---|---|---|---|")
    for policy, metrics in numbers.items():
        for metric, value in metrics.items():
            paper = PAPER_HEADLINES.get((policy, metric))
            paper_text = f"{paper:.3f}" if paper is not None else "—"
            lines.append(f"| {policy} | {metric} | {value:.3f} | {paper_text} |")
    return lines


def _dynamic_section(study):
    lines = _section("Dynamic controller (Section 6)")
    gaps, gains = [], []
    for fg, bg in study.ordered_pairs():
        d = study.dynamic_vs_best_static(fg, bg)
        gaps.append(d["fg_slowdown_dynamic"] - d["fg_slowdown_best_static"])
        gains.append(d["bg_throughput_dynamic"])
    lines.append(
        f"- max fg gap to best static: **{max(gaps):.3f}** (paper: within 0.02)"
    )
    lines.append(
        f"- bg throughput vs best static: avg **{st.mean(gains):.3f}**, "
        f"max **{max(gains):.2f}** (paper: 1.19 avg, 2.5 max)"
    )
    return lines
