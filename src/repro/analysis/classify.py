"""Classification rules behind Tables 1 and 2.

The paper groups applications qualitatively; these rules make the
grouping operational so the golden tests can enforce that the calibrated
models land in the published categories.
"""

from repro.util.errors import ValidationError

LOW, SATURATED, HIGH = "low", "saturated", "high"

# Scalability thresholds: "low" barely scales at all; "high" is still
# growing at 8 threads; everything else has saturated.
_LOW_SPEEDUP = 1.5
_HIGH_SPEEDUP = 3.0
_STILL_GROWING = 1.08

# LLC utility thresholds: "low" gains under 3% from 1 MB -> 6 MB; "high"
# still gains measurably over the last megabyte (5 MB -> 6 MB).
_LOW_TOTAL_GAIN = 0.03
_HIGH_TAIL_GAIN = 0.005


def classify_scalability(curve):
    """Classify a {threads: speedup} curve (Table 1)."""
    if not curve:
        raise ValidationError("empty scalability curve")
    threads = sorted(curve)
    top = curve[threads[-1]]
    if top < _LOW_SPEEDUP:
        return LOW
    earlier = [t for t in threads if t <= threads[-1] - 2]
    reference = curve[earlier[-1]] if earlier else curve[threads[0]]
    growth = top / reference if reference > 0 else 1.0
    if top >= _HIGH_SPEEDUP and growth > _STILL_GROWING:
        return HIGH
    return SATURATED


def classify_llc_utility(curve):
    """Classify a {ways: runtime_s} curve (Table 2).

    The pathological direct-mapped 1-way point is ignored, exactly as the
    paper ignores the 0.5 MB case.
    """
    needed = {2, 10, 12}
    if not needed.issubset(curve):
        raise ValidationError("utility classification needs ways {2, 10, 12}")
    total_gain = curve[2] / curve[12] - 1.0
    tail_gain = curve[10] / curve[12] - 1.0
    if total_gain < _LOW_TOTAL_GAIN:
        return LOW
    if tail_gain > _HIGH_TAIL_GAIN:
        return HIGH
    return SATURATED


def scalability_table(characterizer, apps):
    """Table 1: {suite: {class: [names]}} from measured curves."""
    return _grouped(
        apps,
        lambda app: classify_scalability(characterizer.scalability_curve(app)),
    )


def llc_utility_table(characterizer, apps, apki_bold_threshold=10.0):
    """Table 2: classification plus the >10 APKI bold flags."""
    table = _grouped(
        apps, lambda app: classify_llc_utility(characterizer.llc_curve(app))
    )
    bold = sorted(a.name for a in apps if a.llc_apki > apki_bold_threshold)
    return {"classes": table, "bold": bold}


def _grouped(apps, classify):
    out = {}
    for app in apps:
        suite = out.setdefault(app.suite, {LOW: [], SATURATED: [], HIGH: []})
        suite[classify(app)].append(app.name)
    return out
