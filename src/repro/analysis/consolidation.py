"""The representative-pair consolidation study (Sections 5 and 6).

Runs every combination of the six cluster representatives as foreground/
background pairs under each policy, caching aggressively because Figs.
9, 10, 11 and 13 and the headline numbers all slice the same runs.
"""

from repro.backend import AnalyticalBackend, PairSpec
from repro.core.metrics import energy_ratio, slowdown, weighted_speedup
from repro.core.policies import run_policy_on, sweep_static_partitions
from repro.exec import run_tasks
from repro.runtime.harness import paper_pair_allocations
from repro.sim.engine import Machine
from repro.util.errors import ValidationError
from repro.workloads.registry import representatives

PAPER_THREADS = 4
POLICIES = ("shared", "fair", "biased")


def _warm_pair_task(machine, item):
    """Everything the figures need for one (fg, bg) pair.

    Module-level so worker processes can import it; builds a shadow study
    around the (worker's) machine and returns plain result objects for
    the driver to merge into its own caches.
    """
    reps, fg_id, bg_id, include_once = item
    study = ConsolidationStudy(machine=machine, reps=reps)
    out = {
        "sweep": study.sweep(fg_id, bg_id),
        "continuous": {p: study.policy(fg_id, bg_id, p) for p in POLICIES},
        "dynamic": study.dynamic(fg_id, bg_id),
    }
    if include_once:
        out["once"] = {p: study.once(fg_id, bg_id, p) for p in POLICIES}
    return out


class ConsolidationStudy:
    """Caches solo, static-policy, and dynamic runs over app pairs."""

    def __init__(self, machine=None, reps=None):
        self.machine = machine or Machine()
        self.backend = AnalyticalBackend(self.machine)
        self.reps = reps or representatives()  # {"C1": app, ...}
        self._solo_fg = {}
        self._solo_whole = {}
        self._continuous = {}
        self._once = {}
        self._sweeps = {}
        self._dynamic = {}

    # -- pair enumeration --------------------------------------------------

    def cluster_ids(self):
        return sorted(self.reps)

    def ordered_pairs(self):
        """All 36 (fg, bg) combinations of the representatives."""
        ids = self.cluster_ids()
        return [(f, b) for f in ids for b in ids]

    def unordered_pairs(self):
        """The 21 unordered combinations (energy/speedup studies)."""
        ids = self.cluster_ids()
        return [(f, b) for i, f in enumerate(ids) for b in ids[i:]]

    def _apps(self, fg_id, bg_id):
        try:
            return self.reps[fg_id], self.reps[bg_id]
        except KeyError as exc:
            raise ValidationError(f"unknown cluster id {exc}") from None

    # -- bulk warm-up -------------------------------------------------------

    def warm(self, workers=None):
        """Fill every cache the figure drivers will read, possibly on a
        process pool.

        Serial or parallel, the cached values are identical — each pair
        is an independent deterministic simulation — so figures sliced
        from a warmed study match the lazily-computed ones exactly.
        """
        for cluster_id in self.cluster_ids():
            self.solo_fg(cluster_id)
            self.solo_whole(cluster_id)
        once_pairs = set(self.unordered_pairs())
        items = [
            (self.reps, fg_id, bg_id, (fg_id, bg_id) in once_pairs)
            for fg_id, bg_id in self.ordered_pairs()
        ]
        results = run_tasks(self.machine, _warm_pair_task, items, workers=workers)
        for (_, fg_id, bg_id, include_once), out in zip(items, results):
            self._sweeps.setdefault((fg_id, bg_id), out["sweep"])
            for policy, outcome in out["continuous"].items():
                self._continuous.setdefault((fg_id, bg_id, policy), outcome)
            self._dynamic.setdefault((fg_id, bg_id, False), out["dynamic"])
            if include_once:
                for policy, pair in out["once"].items():
                    self._once.setdefault((fg_id, bg_id, policy), pair)
        return self

    # -- baselines --------------------------------------------------------------

    def solo_fg(self, cluster_id):
        """The app alone in the paper's co-run slot (4 threads, 2 cores)."""
        if cluster_id not in self._solo_fg:
            app = self.reps[cluster_id]
            threads = 1 if app.scalability.single_threaded else PAPER_THREADS
            self._solo_fg[cluster_id] = self.machine.run_solo_cached(
                app, threads=threads, ways=self.machine.config.llc_ways
            )
        return self._solo_fg[cluster_id]

    def solo_whole(self, cluster_id):
        """The app alone on the whole machine (the sequential baseline)."""
        if cluster_id not in self._solo_whole:
            app = self.reps[cluster_id]
            threads = 1 if app.scalability.single_threaded else 8
            if app.scalability.pow2_only:
                while threads & (threads - 1):
                    threads -= 1
            self._solo_whole[cluster_id] = self.machine.run_solo_cached(
                app, threads=threads, ways=self.machine.config.llc_ways
            )
        return self._solo_whole[cluster_id]

    # -- policies with a continuously running background -----------------------------

    def sweep(self, fg_id, bg_id):
        key = (fg_id, bg_id)
        if key not in self._sweeps:
            fg, bg = self._apps(fg_id, bg_id)
            self._sweeps[key] = sweep_static_partitions(self.machine, fg, bg)
        return self._sweeps[key]

    def policy(self, fg_id, bg_id, policy):
        """PolicyOutcome for shared/fair/biased with continuous background.

        All policies go through the one protocol-level implementation
        (:func:`repro.core.policies.run_policy_on`) on the study's
        :class:`~repro.backend.analytical.AnalyticalBackend` — the
        biased search reuses the cached static sweep.
        """
        key = (fg_id, bg_id, policy)
        if key not in self._continuous:
            fg, bg = self._apps(fg_id, bg_id)
            sweep = self.sweep(fg_id, bg_id) if policy == "biased" else None
            self._continuous[key] = run_policy_on(
                self.backend, PairSpec(fg=fg, bg=bg), policy, sweep=sweep
            )
        return self._continuous[key]

    def fg_slowdown(self, fg_id, bg_id, policy):
        outcome = self.policy(fg_id, bg_id, policy)
        return slowdown(outcome.fg_runtime_s, self.solo_fg(fg_id).runtime_s)

    # -- run-once mode (energy and weighted speedup) ----------------------------------

    def once(self, fg_id, bg_id, policy):
        """PairResult with both apps running exactly once under ``policy``."""
        key = (fg_id, bg_id, policy)
        if key not in self._once:
            fg, bg = self._apps(fg_id, bg_id)
            if policy == "shared":
                fg_ways = bg_ways = self.machine.config.llc_ways
            elif policy == "fair":
                fg_ways = self.machine.config.llc_ways // 2
                bg_ways = self.machine.config.llc_ways - fg_ways
            elif policy == "biased":
                outcome = self.policy(fg_id, bg_id, "biased")
                fg_ways, bg_ways = outcome.fg_ways, outcome.bg_ways
            else:
                raise ValidationError(f"unknown policy {policy!r}")
            fg_alloc, bg_alloc = paper_pair_allocations(
                fg, bg, fg_ways, bg_ways, self.machine.config.llc_ways
            )
            self._once[key] = self.machine.run_pair(
                fg, bg, fg_alloc, bg_alloc, bg_continuous=False
            )
        return self._once[key]

    def energy_ratio(self, fg_id, bg_id, policy, meter="socket"):
        pair = self.once(fg_id, bg_id, policy)
        solos = [self.solo_whole(fg_id), self.solo_whole(bg_id)]
        if meter == "socket":
            return energy_ratio(
                pair.socket_energy_j, [s.socket_energy_j for s in solos]
            )
        return energy_ratio(pair.wall_energy_j, [s.wall_energy_j for s in solos])

    def weighted_speedup(self, fg_id, bg_id, policy):
        """Rate-based weighted speedup (Fig. 11) for one pair."""
        outcome = self.policy(fg_id, bg_id, policy)
        co_rates = [outcome.pair.fg.ips, outcome.pair.bg_rate_ips]
        solo_rates = [
            self.solo_whole(fg_id).ips,
            self.solo_whole(bg_id).ips,
        ]
        return weighted_speedup(co_rates, solo_rates)

    # -- the dynamic controller (Section 6) ----------------------------------------------

    def dynamic(self, fg_id, bg_id, timeline=False):
        """(PairResult, controller) for the dynamic controller run.

        Routed through :meth:`AnalyticalBackend.dynamic` — the backend
        builds the Algorithm 6.2 controller (self-pairs keyed on the
        engine's aliased clone name) and applies its initial masks,
        exactly as this method did before the backend protocol existed.
        """
        key = (fg_id, bg_id, timeline)
        if key not in self._dynamic:
            fg, bg = self._apps(fg_id, bg_id)
            spec = PairSpec(fg=fg, bg=bg, options={"timeline": timeline})
            measurement = self.backend.dynamic(spec)
            self._dynamic[key] = (
                measurement.raw, measurement.extra["controller"]
            )
        return self._dynamic[key]

    def dynamic_vs_best_static(self, fg_id, bg_id):
        """Fig. 13's quantities for one pair."""
        pair, controller = self.dynamic(fg_id, bg_id)
        best = self.policy(fg_id, bg_id, "biased")
        shared = self.policy(fg_id, bg_id, "shared")
        solo = self.solo_fg(fg_id).runtime_s
        return {
            "fg_slowdown_dynamic": pair.fg.runtime_s / solo,
            "fg_slowdown_best_static": best.fg_runtime_s / solo,
            "bg_throughput_dynamic": pair.bg_rate_ips / best.bg_rate_ips,
            "bg_throughput_shared": shared.bg_rate_ips / best.bg_rate_ips,
            "controller_actions": len(controller.actions),
        }
