"""One driver per paper table/figure.

Each function returns plain data (dicts/lists) that the benchmark harness
prints as the rows/series the paper reports. Expensive sweeps accept an
``apps`` subset; benchmarks pass a representative subset by default and
the full suite when REPRO_FULL=1.
"""

from repro.analysis.characterize import Characterizer
from repro.analysis.classify import llc_utility_table, scalability_table
from repro.core.clustering import cluster_applications
from repro.core.dynamic import DynamicPartitionController
from repro.exec import run_tasks
from repro.runtime.harness import paper_pair_allocations
from repro.workloads import all_applications, get_application
from repro.workloads.registry import REPRESENTATIVES

FIG2_APPS = ("swaptions", "tomcat", "471.omnetpp")


def _resolve(apps):
    if apps is None:
        return all_applications()
    return [get_application(a) if isinstance(a, str) else a for a in apps]


# -- Section 3: characterization --------------------------------------------


def fig01_thread_scalability(characterizer, apps=None):
    """Fig. 1: speedup versus thread count per application."""
    return {
        app.name: characterizer.scalability_curve(app) for app in _resolve(apps)
    }


def tab01_scalability_classes(characterizer, apps=None):
    """Table 1: scalability categories per suite."""
    return scalability_table(characterizer, _resolve(apps))


def fig02_llc_sensitivity(characterizer, apps=FIG2_APPS, thread_counts=(1, 2, 4, 8)):
    """Fig. 2: execution time versus LLC allocation for representatives."""
    out = {}
    for app in _resolve(apps):
        counts = (1,) if app.scalability.single_threaded else thread_counts
        out[app.name] = {t: characterizer.llc_curve(app, threads=t) for t in counts}
    return out


def tab02_llc_utility(characterizer, apps=None):
    """Table 2: LLC utility categories plus >10 APKI bold set."""
    return llc_utility_table(characterizer, _resolve(apps))


def fig03_prefetch_sensitivity(characterizer, apps=None):
    """Fig. 3: runtime with prefetchers on, normalized to off."""
    return {
        app.name: characterizer.prefetch_sensitivity(app) for app in _resolve(apps)
    }


def fig04_bandwidth_sensitivity(characterizer, apps=None):
    """Fig. 4: runtime next to the bandwidth hog, normalized to alone."""
    return {
        app.name: characterizer.bandwidth_sensitivity(app)
        for app in _resolve(apps)
        if app.name != "stream_uncached"
    }


def fig05_clustering(characterizer, apps=None, cut_distance=0.45):
    """Fig. 5 / Table 3: cluster the suite, report members + medoids.

    The paper cuts its dendrogram at 0.9; our model-derived feature
    vectors have tighter spreads, so the equivalent structure appears at
    0.45 (a documented deviation — the algorithm is identical).
    """
    features = characterizer.features_for(_resolve(apps))
    result = cluster_applications(features, cut_distance=cut_distance)
    return {
        "clusters": result.clusters(),
        "representatives": result.representatives,
        "num_clusters": result.num_clusters,
        "paper_representatives": dict(REPRESENTATIVES),
        "result": result,
    }


# -- Section 4: the allocation space ----------------------------------------------


def _fig06_cell(machine, cell):
    name, threads, ways = cell
    r = machine.run_solo_cached(get_application(name), threads=threads, ways=ways)
    return {
        "runtime_s": r.runtime_s,
        "mpki": r.mpki,
        "socket_energy_j": r.socket_energy_j,
        "wall_energy_j": r.wall_energy_j,
    }


def fig06_allocation_space(
    characterizer,
    apps=None,
    thread_counts=range(1, 9),
    way_counts=range(1, 13),
    workers=None,
):
    """Fig. 6: runtime/MPKI/socket/wall energy over all 96 allocations."""
    apps = _resolve(apps) if apps is not None else [
        get_application(n) for n in REPRESENTATIVES.values()
    ]
    cells = []
    for app in apps:
        for threads in thread_counts:
            try:
                app.scalability.validate_threads(threads)
            except Exception:
                continue
            for ways in way_counts:
                cells.append((app.name, threads, ways))
    results = run_tasks(characterizer.machine, _fig06_cell, cells, workers=workers)
    out = {app.name: {} for app in apps}
    for (name, threads, ways), result in zip(cells, results):
        out[name][(threads, ways)] = result
    return out


def fig07_energy_contours(allocation_space):
    """Fig. 7: wall energy normalized to each app's minimum."""
    out = {}
    for name, grid in allocation_space.items():
        best = min(cell["wall_energy_j"] for cell in grid.values())
        out[name] = {
            key: cell["wall_energy_j"] / best for key, cell in grid.items()
        }
    return out


# -- Section 5: multiprogrammed analyses -------------------------------------------


def _fig08_solo(machine, name):
    app = get_application(name)
    threads = 1 if app.scalability.single_threaded else 4
    return machine.run_solo_cached(app, threads=threads, ways=12).runtime_s


def _fig08_pair(machine, pair_names):
    fg = get_application(pair_names[0])
    bg = get_application(pair_names[1])
    fg_alloc, bg_alloc = paper_pair_allocations(
        fg, bg, llc_ways=machine.config.llc_ways
    )
    pair = machine.run_pair(fg, bg, fg_alloc, bg_alloc, bg_continuous=True)
    return pair.fg.runtime_s


def fig08_pairwise_slowdowns(machine, apps=None, workers=None):
    """Fig. 8: foreground slowdown for every (fg, bg) pair, shared LLC."""
    apps = _resolve(apps)
    names = [app.name for app in apps]
    solo = dict(zip(names, run_tasks(machine, _fig08_solo, names, workers=workers)))
    pairs = [(fg, bg) for fg in names for bg in names]
    fg_runtimes = run_tasks(machine, _fig08_pair, pairs, workers=workers)
    return {
        (fg, bg): runtime / solo[fg]
        for (fg, bg), runtime in zip(pairs, fg_runtimes)
    }


def fig09_partitioning_policies(study):
    """Fig. 9: fg slowdown under shared/fair/biased for all rep pairs."""
    rows = {}
    for fg, bg in study.ordered_pairs():
        rows[(fg, bg)] = {
            policy: study.fg_slowdown(fg, bg, policy)
            for policy in ("shared", "fair", "biased")
        }
    return rows


def fig10_consolidation_energy(study, meter="socket"):
    """Fig. 10: consolidated energy normalized to sequential execution."""
    rows = {}
    for fg, bg in study.unordered_pairs():
        rows[(fg, bg)] = {
            policy: study.energy_ratio(fg, bg, policy, meter=meter)
            for policy in ("shared", "fair", "biased")
        }
    return rows


def fig11_weighted_speedup(study):
    """Fig. 11: weighted speedup of consolidation over sequential."""
    rows = {}
    for fg, bg in study.unordered_pairs():
        rows[(fg, bg)] = {
            policy: study.weighted_speedup(fg, bg, policy)
            for policy in ("shared", "fair", "biased")
        }
    return rows


# -- Section 6: dynamic partitioning -----------------------------------------------


def fig12_mcf_phases(machine, way_counts=(2, 4, 6, 9, 12), include_dynamic=True):
    """Fig. 12: 429.mcf MPKI over retired instructions, static vs dynamic."""
    mcf = get_application("429.mcf")
    series = {}
    for ways in way_counts:
        series[f"{ways} ways"] = _mpki_series(machine, mcf, ways)
    if include_dynamic:
        series["dynamic"] = _dynamic_mpki_series(machine, mcf)
    return series


def _mpki_series(machine, app, ways):
    from repro.sim.allocation import Allocation
    from repro.sim.engine import Machine  # noqa: F401 (documentation import)
    from repro.sim.interval import AppState, solve_interval

    points = []
    retired = 0.0
    for phase in app.phases:
        alloc = Allocation.solo(threads=1, num_ways=ways, llc_ways=machine.config.llc_ways)
        state = AppState(app=app, allocation=alloc)
        state.progress = min(
            0.9999, retired / app.instructions + phase.weight / 2
        )
        sol = solve_interval(
            [state], machine.config, machine.memory_system, machine.power_model
        )
        retired += phase.weight * app.instructions
        points.append(
            {
                "instructions": retired,
                "mpki": sol.per_app[app.name].mpki,
                "ways": ways,
            }
        )
    return points


def _dynamic_mpki_series(machine, mcf):
    bg = get_application("swaptions")
    controller = DynamicPartitionController(
        fg_name=mcf.name,
        bg_name=bg.name,
        llc_ways=machine.config.llc_ways,
        way_mb=machine.config.way_mb,
    )
    masks = controller.masks()
    fg_alloc, bg_alloc = paper_pair_allocations(
        mcf, bg, llc_ways=machine.config.llc_ways
    )
    pair = machine.run_pair(
        mcf,
        bg,
        fg_alloc.with_mask(masks[mcf.name]),
        bg_alloc.with_mask(masks[bg.name]),
        bg_continuous=True,
        controller=controller,
        timeline=True,
    )
    points = []
    retired = 0.0
    for point in pair.timeline:
        info = point.per_app.get(mcf.name)
        if info is None:
            continue
        retired += info["rate_ips"] * 0.1
        points.append(
            {"instructions": retired, "mpki": info["mpki"], "ways": info["ways"]}
        )
    return points


def fig13_dynamic_background_throughput(study):
    """Fig. 13: bg throughput of dynamic and shared vs best static."""
    rows = {}
    for fg, bg in study.ordered_pairs():
        rows[(fg, bg)] = study.dynamic_vs_best_static(fg, bg)
    return rows


# -- Mechanism-level way utility (address-level ground truth) -----------------


# The canonical background mix for N-domain trace studies: (workload
# name, trace kind, length, positional args builder, kwargs, tid,
# think cycles). Domains beyond the foreground are drawn in order, so
# --domains 3 co-runs fg + the first two rows, --domains 4 all three.
def _mb(n):
    from repro.util.units import MB

    return n * MB


_BG_TABLE = (
    ("bg", "stream", 30_000, (32,), {}, 4, 2),
    ("bg2", "stream", 30_000, (16,), {}, 2, 2),
    ("bg3", "chase", 30_000, (2,), {"seed": 11}, 6, 4),
)


def background_factories(domains):
    """Picklable ``(name, factory, tid, think_cycles)`` rows for the
    background domains of an N-domain co-run (``domains`` includes the
    foreground, so 2 <= domains <= 4 on the four-core hierarchy)."""
    import functools

    from repro.util.errors import ValidationError
    from repro.workloads.trace import make_trace

    if not 2 <= domains <= 1 + len(_BG_TABLE):
        raise ValidationError(
            f"domains must be 2..{1 + len(_BG_TABLE)}, got {domains}"
        )
    rows = []
    for name, kind, length, mbs, kwargs, tid, think in _BG_TABLE[:domains - 1]:
        positional = tuple(_mb(m) for m in mbs)
        factory = functools.partial(
            make_trace, kind, length, *positional, tid=tid, **kwargs
        )
        rows.append((name, factory, tid, think))
    return rows


def trace_kind_factory(kind, length, footprint_mb=4.0, alpha=0.9, seed=1,
                       tid=0):
    """A picklable constructor for one synthetic trace kind.

    Maps each registered kind's knobs (footprint, zipf skew, seed) to
    its constructor arguments — the one place the CLI, the trace
    backend, and the bench agree on what ``--trace zipf
    --footprint-mb 4`` means.
    """
    import functools

    from repro.workloads.trace import make_trace

    footprint = int(_mb(footprint_mb))
    positional, kwargs = {
        "zipf": ((footprint,), {"alpha": alpha, "seed": seed}),
        "stream": ((footprint,), {}),
        "stride": ((), {"stride": 256}),
        "chase": ((footprint,), {"seed": seed}),
    }.get(kind, ((footprint,), {}))
    return functools.partial(
        make_trace, kind, length, *positional, tid=tid, **kwargs
    )


def trace_pair_spec(fg_kind="zipf", bg_kind="stream", accesses=60_000,
                    footprint_mb=4.0, alpha=0.9, seed=1,
                    bg_footprint_mb=8.0, fg_name=None, bg_name=None):
    """A backend :class:`~repro.backend.protocol.PairSpec` from two
    synthetic trace kinds (what ``repro consolidate --backend trace``
    runs the policy suite on)."""
    from repro.backend import TraceBackend

    return TraceBackend.pair_spec(
        trace_kind_factory(fg_kind, accesses, footprint_mb=footprint_mb,
                           alpha=alpha, seed=seed, tid=0),
        trace_kind_factory(bg_kind, accesses, footprint_mb=bg_footprint_mb,
                           alpha=alpha, seed=seed + 1, tid=4),
        fg_name=fg_name or fg_kind,
        bg_name=bg_name or (
            bg_kind if bg_kind != fg_kind else f"{bg_kind}#2"
        ),
    )


_GROUP_TIDS = (0, 4, 2, 6)  # cores 0, 2, 1, 3 under tid // 2
_GROUP_THINKS = (6, 2, 2, 2)


def trace_group_spec(kinds, accesses=60_000, footprint_mb=4.0, alpha=0.9,
                     seed=1, bg_footprint_mb=8.0):
    """A backend :class:`~repro.backend.protocol.TenantSet` from 2..4
    synthetic trace kinds (what ``repro trace-cluster`` and
    ``consolidate --tenants`` run the group policy suite on).

    Tenant 0 is the primary (the pair protocol's foreground: same tid,
    think cycles, footprint, and seed as :func:`trace_pair_spec`); the
    rest are peers on their own cores. Repeated kinds are aliased
    ("#2", "#3") so tenant names stay unique.
    """
    from repro.backend import TenantSet
    from repro.sim.trace_engine import TraceWorkload
    from repro.util.errors import ValidationError

    kinds = list(kinds)
    if not 2 <= len(kinds) <= len(_GROUP_TIDS):
        raise ValidationError(
            f"a trace group takes 2..{len(_GROUP_TIDS)} tenants (one per "
            f"core), got {len(kinds)}"
        )
    counts = {}
    tenants = []
    for i, kind in enumerate(kinds):
        counts[kind] = counts.get(kind, 0) + 1
        name = kind if counts[kind] == 1 else f"{kind}#{counts[kind]}"
        tid = _GROUP_TIDS[i]
        tenants.append(TraceWorkload(
            name,
            trace_kind_factory(
                kind, accesses,
                footprint_mb=footprint_mb if i == 0 else bg_footprint_mb,
                alpha=alpha, seed=seed + i, tid=tid,
            ),
            tid=tid,
            think_cycles=_GROUP_THINKS[i],
        ))
    return TenantSet(tenants=tenants)


def verify_trace_group_replay(backend, group, outcome):
    """Cross-check one group outcome against direct per-mask replay.

    Rebuilds the chosen split's masks on a hand-built engine — the
    sequential per-tenant reference — and requires every tenant's cost
    and rate to match *exactly*. Returns the number of comparisons;
    raises ValidationError on the first mismatch.
    """
    from repro.cache.llc import WayMask
    from repro.sim.trace_engine import TraceEngine
    from repro.util.errors import ValidationError

    llc_ways = backend.capabilities().llc_ways
    engine = TraceEngine(
        prefetchers_on=backend.prefetchers_on,
        backend=backend.cache_backend,
    )
    for tenant, bits in zip(group.tenants, outcome.split.mask_bits):
        engine.hierarchy.set_way_mask(
            tenant.tid // 2, WayMask.from_bits(bits, llc_ways)
        )
    workloads = list(group.tenants)
    if backend.use_packs:
        stats = engine.run_packed(
            workloads, total_accesses=backend.total_accesses
        )
    else:
        stats = engine.run(
            workloads, total_accesses=backend.total_accesses
        )
    checked = 0
    for i, name in enumerate(group.names):
        direct = (
            stats[name].avg_latency,
            stats[name].access_rate_per_kilocycle,
        )
        via_group = (
            outcome.measurement.costs[i],
            outcome.measurement.rates[i],
        )
        if direct != via_group:
            raise ValidationError(
                f"{name}: group path {via_group} != direct mask replay "
                f"{direct}"
            )
        checked += 2
    return checked


def verify_trace_policy_replay(backend, spec, policies=("shared", "fair")):
    """Cross-check TraceBackend policy runs against direct mask replay.

    Replays the pair through a hand-built engine with the chosen split's
    way masks applied — the pre-backend methodology — and requires the
    policy layer's fg cost and bg rate to match *exactly* (both paths
    are deterministic, so any drift means the backend translated the
    split into masks differently). Returns the number of comparisons;
    raises ValidationError on the first mismatch.
    """
    from repro.cache.llc import WayMask
    from repro.core.policies import run_policy_on
    from repro.sim.trace_engine import TraceEngine
    from repro.util.errors import ValidationError

    llc_ways = backend.capabilities().llc_ways
    checked = 0
    for policy in policies:
        outcome = run_policy_on(backend, spec, policy)
        engine = TraceEngine(
            prefetchers_on=backend.prefetchers_on,
            backend=backend.cache_backend,
        )
        core_of = engine.hierarchy.core_of_tid
        engine.hierarchy.set_way_mask(
            core_of(spec.fg.tid),
            WayMask.contiguous(outcome.fg_ways, 0, llc_ways),
        )
        engine.hierarchy.set_way_mask(
            core_of(spec.bg.tid),
            WayMask.contiguous(
                outcome.bg_ways, llc_ways - outcome.bg_ways, llc_ways
            ),
        )
        workloads = [spec.fg, spec.bg]
        if backend.use_packs:
            stats = engine.run_packed(
                workloads, total_accesses=backend.total_accesses
            )
        else:
            stats = engine.run(
                workloads, total_accesses=backend.total_accesses
            )
        direct = (
            stats[spec.fg_name].avg_latency,
            stats[spec.bg_name].access_rate_per_kilocycle,
        )
        via_policy = (outcome.fg_cost, outcome.bg_rate)
        if direct != via_policy:
            raise ValidationError(
                f"{policy}: policy layer {via_policy} != direct mask "
                f"replay {direct}"
            )
        checked += 2
    return checked


def trace_way_utility(fg_factory=None, bg_factory=None, total_accesses=120_000,
                      use_packs=True, domains=2):
    """Per-domain ``hits(ways)`` utility curves from one profiled co-run.

    The address-level companion to the fig. 2/6 sensitivity sweeps: a
    cache-friendly foreground and ``domains - 1`` background traces
    (streaming/chase mixes from ``_BG_TABLE``; ``bg_factory`` overrides
    the first) co-run once through the kernel-backend hierarchy with a
    way profiler attached, and every allocation point 1..12 is read from
    the stack-distance histograms instead of re-simulating per mask.
    Returns ``{"stats": {name: TraceStats}, "curves": {name: WayCurve}}``.
    """
    from repro.sim.trace_engine import TraceWorkload, way_allocation_sweep
    from repro.util.units import MB
    from repro.workloads.trace import ZipfTrace

    fg_factory = fg_factory or (
        lambda: ZipfTrace(40_000, 6 * MB, alpha=0.9, tid=0, seed=7)
    )
    workloads = [TraceWorkload("fg", fg_factory, tid=0, think_cycles=6)]
    for i, (name, factory, tid, think) in enumerate(
        background_factories(domains)
    ):
        if i == 0 and bg_factory is not None:
            factory = bg_factory
        workloads.append(
            TraceWorkload(name, factory, tid=tid, think_cycles=think)
        )
    stats, curves = way_allocation_sweep(
        workloads, total_accesses=total_accesses, use_packs=use_packs
    )
    named = {w.name: curves[w.tid // 2] for w in workloads}
    return {"stats": stats, "curves": named}


def _verify_domain_cell(item):
    """One domain's profile-vs-brute-force check (module-level so the
    process pool can pickle it)."""
    from repro.cache.profile import verify_profile

    factory, way_counts, use_pack = item
    return verify_profile(
        factory, way_counts=way_counts, backend="kernel", use_pack=use_pack
    )


def verify_trace_domains(factories, way_counts=None, workers=None,
                         use_packs=True):
    """Verify every domain of an N-domain sweep, one worker per domain.

    Each domain's single-pass profile is re-checked against per-mask
    brute-force re-simulation (:func:`repro.cache.profile.verify_profile`).
    The domains are independent, so they fan out through
    :func:`repro.exec.parallel_map`; with packs enabled the workers get
    the persisted pack directories via the pack-path initializer and
    memmap them instead of regenerating or shipping the traces. Returns
    the per-domain row lists, in input order; raises on any mismatch.
    """
    from repro.exec import parallel_map, persisted_pack_paths

    factories = list(factories)
    paths = ()
    if use_packs:
        from repro.workloads.tracepack import get_pack

        paths = persisted_pack_paths([get_pack(f()) for f in factories])
    items = [(f, way_counts, use_packs) for f in factories]
    return parallel_map(
        _verify_domain_cell, items, workers=workers, pack_paths=paths
    )


# -- Headline numbers (Sections 1 and 8) ---------------------------------------------


def headline_numbers(study):
    """The abstract's summary metrics, recomputed from the rep pairs."""
    import statistics as st

    slowdowns = {p: [] for p in ("shared", "fair", "biased")}
    for fg, bg in study.ordered_pairs():
        for policy in slowdowns:
            slowdowns[policy].append(study.fg_slowdown(fg, bg, policy))
    energy = {p: [] for p in ("shared", "biased")}
    speedup = {p: [] for p in ("shared", "biased")}
    for fg, bg in study.unordered_pairs():
        for policy in energy:
            energy[policy].append(study.energy_ratio(fg, bg, policy))
            speedup[policy].append(study.weighted_speedup(fg, bg, policy))
    dynamic = [
        study.dynamic_vs_best_static(fg, bg) for fg, bg in study.ordered_pairs()
    ]
    return {
        "shared": {
            "energy_improvement": 1 - st.mean(energy["shared"]),
            "weighted_speedup": st.mean(speedup["shared"]),
            "avg_slowdown": st.mean(slowdowns["shared"]) - 1,
            "worst_slowdown": max(slowdowns["shared"]) - 1,
        },
        "biased": {
            "energy_improvement": 1 - st.mean(energy["biased"]),
            "weighted_speedup": st.mean(speedup["biased"]),
            "avg_slowdown": st.mean(slowdowns["biased"]) - 1,
            "worst_slowdown": max(slowdowns["biased"]) - 1,
        },
        "fair": {
            "avg_slowdown": st.mean(slowdowns["fair"]) - 1,
            "worst_slowdown": max(slowdowns["fair"]) - 1,
        },
        "dynamic": {
            "fg_gap_to_best_static": max(
                d["fg_slowdown_dynamic"] - d["fg_slowdown_best_static"]
                for d in dynamic
            ),
            "bg_throughput_gain": st.mean(
                d["bg_throughput_dynamic"] for d in dynamic
            )
            - 1,
            "bg_throughput_max": max(d["bg_throughput_dynamic"] for d in dynamic),
            "bg_throughput_shared_gain": st.mean(
                d["bg_throughput_shared"] for d in dynamic
            )
            - 1,
        },
    }
