"""Per-application characterization (the Section 3 studies).

All measurements run on a shared :class:`repro.sim.Machine` and are
memoized, because the clustering features and several figures reuse them.
"""

from repro.runtime.harness import paper_pair_allocations
from repro.sim.engine import Machine
from repro.util.errors import ValidationError
from repro.workloads import get_application
from repro.workloads.base import ApplicationModel

BANDWIDTH_HOG = "stream_uncached"
THREAD_SWEEP = tuple(range(1, 9))
WAY_SWEEP = tuple(range(1, 13))


def _threads_supported(app, threads):
    try:
        app.scalability.validate_threads(threads)
        return True
    except ValidationError:
        return False


class Characterizer:
    """Runs and caches the paper's characterization experiments."""

    def __init__(self, machine=None):
        self.machine = machine or Machine()

    @property
    def _solo_cache(self):
        # Shared with Machine.run_solo_cached so the result store, the
        # figure drivers, and worker processes all warm the same cache.
        return self.machine.solo_cache

    # -- primitive measurement -------------------------------------------------

    def solo_runtime(self, app, threads, ways, prefetchers_on=True):
        return self.machine.run_solo_cached(
            app, threads=threads, ways=ways, prefetchers_on=prefetchers_on
        )

    # -- Section 3.1: thread scalability ------------------------------------

    def scalability_curve(self, app):
        """{threads: speedup over 1 thread}; skips invalid counts."""
        if app.scalability.single_threaded:
            return {t: 1.0 for t in THREAD_SWEEP}
        base = None
        curve = {}
        for threads in THREAD_SWEEP:
            if not _threads_supported(app, threads):
                continue
            result = self.solo_runtime(app, threads, self.machine.config.llc_ways)
            if base is None:
                base = result.runtime_s
            curve[threads] = base / result.runtime_s
        return curve

    # -- Section 3.2: LLC sensitivity -----------------------------------------

    def llc_curve(self, app, threads=4):
        """{ways: runtime_s} at a fixed thread count."""
        threads = self._fit_threads(app, threads)
        return {
            ways: self.solo_runtime(app, threads, ways).runtime_s
            for ways in WAY_SWEEP
        }

    # -- Section 3.3: prefetcher sensitivity -------------------------------------

    def prefetch_sensitivity(self, app, threads=4):
        """runtime(prefetchers on) / runtime(prefetchers off)."""
        threads = self._fit_threads(app, threads)
        ways = self.machine.config.llc_ways
        on = self.solo_runtime(app, threads, ways, prefetchers_on=True)
        off = self.solo_runtime(app, threads, ways, prefetchers_on=False)
        return on.runtime_s / off.runtime_s

    # -- Section 3.4: bandwidth sensitivity ----------------------------------------

    def bandwidth_sensitivity(self, app, threads=4):
        """runtime(next to the bandwidth hog) / runtime(alone)."""
        if app.name == BANDWIDTH_HOG:
            return 1.0
        hog = get_application(BANDWIDTH_HOG)
        threads = self._fit_threads(app, threads)
        solo = self.solo_runtime(app, threads, self.machine.config.llc_ways)
        fg_alloc, bg_alloc = paper_pair_allocations(
            app, hog, llc_ways=self.machine.config.llc_ways, threads=threads
        )
        pair = self.machine.run_pair(app, hog, fg_alloc, bg_alloc, bg_continuous=True)
        return pair.fg.runtime_s / solo.runtime_s

    # -- Section 3.5: the 19-value feature vector ------------------------------------

    def feature_vector(self, app):
        """7 thread features + 10 LLC features + prefetch + bandwidth.

        Within-application normalization first (shapes, not absolute
        runtimes); the clustering then rescales each feature across
        applications.
        """
        one_thread = self.solo_runtime(
            app, 1, self.machine.config.llc_ways
        ).runtime_s
        thread_features = []
        for threads in THREAD_SWEEP[1:]:  # 2..8 -> 7 features
            if _threads_supported(app, threads):
                t = self.solo_runtime(
                    app, threads, self.machine.config.llc_ways
                ).runtime_s
            else:
                t = one_thread  # irregular apps shouldn't cluster on gaps
            thread_features.append(t / one_thread)

        llc = self.llc_curve(app)
        full = llc[max(WAY_SWEEP)]
        llc_features = [llc[w] / full for w in range(2, 12)]  # 10 features

        return thread_features + llc_features + [
            self.prefetch_sensitivity(app),
            self.bandwidth_sensitivity(app),
        ]

    def features_for(self, apps, exclude_pow2_only=True):
        """Feature dict for clustering; fluidanimate-style apps excluded
        as in Section 3.5."""
        out = {}
        for app in apps:
            if isinstance(app, str):
                app = get_application(app)
            if exclude_pow2_only and app.scalability.pow2_only:
                continue
            out[app.name] = self.feature_vector(app)
        return out

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _fit_threads(app, threads):
        if app.scalability.single_threaded:
            return 1
        if isinstance(app, ApplicationModel) and app.scalability.pow2_only:
            while threads & (threads - 1):
                threads -= 1
        return max(1, threads)
