"""Shared-bandwidth domains: the ring interconnect and DRAM.

Bandwidth is the resource the paper could *not* partition (Sections 3.4,
5.2, 8): co-runners contend on the ring and at the memory controller, and
that contention persists even under perfect LLC partitioning. Each domain
grants throughput proportionally when oversubscribed and reports a latency
inflation factor from queueing.
"""

from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass
class BandwidthGrant:
    """Result of arbitration for one requester."""

    granted_bps: float
    latency_factor: float


class BandwidthDomain:
    """A fixed-capacity shared channel with M/D/1-style queueing delay.

    ``resolve`` maps per-requester demands (bytes/s) to grants. Under
    saturation every requester is throttled proportionally; the latency
    factor grows as utilization approaches 1, reproducing the long memory
    latencies sensitive applications suffer next to a bandwidth hog.
    """

    def __init__(self, name, capacity_bps, max_utilization=0.97):
        if capacity_bps <= 0:
            raise ValidationError("capacity must be positive")
        if not 0 < max_utilization < 1:
            raise ValidationError("max_utilization must be in (0, 1)")
        self.name = name
        self.capacity_bps = capacity_bps
        self.max_utilization = max_utilization

    def utilization(self, demands):
        total = sum(demands.values())
        return min(total / self.capacity_bps, 1.0)

    def latency_factor(self, utilization):
        """Queueing delay multiplier at a given utilization.

        Out-of-order cores hide most of the loaded-latency increase, so
        the inflation is mild (<= ~1.35x at saturation); starvation under
        contention is modelled by the weighted throughput arbitration in
        :meth:`resolve`, not by latency. (The paper's ccbench result —
        a pure latency-bound pointer chase that is *not* hurt by the
        bandwidth hog — pins this down.)
        """
        rho = min(utilization, 1.0)
        return 1.0 + 0.35 * rho ** 3

    # Fraction of each requester's fair-weighted share that is protected
    # from competition: memory controllers round-robin across banks, so a
    # low-bandwidth flow keeps making progress next to a streaming hog
    # (it sees inflated latency, not starvation).
    protected_fraction = 0.5

    def resolve(self, demands, weights=None):
        """Arbitrate by weighted max-min fairness with protected shares.

        Each requester first receives up to ``protected_fraction`` of its
        fair weighted share — low-demand flows are therefore never
        throttled. The remaining capacity is divided by weighted max-min:
        ``weights`` model how strongly each requester competes at the
        memory controller (streaming requesters with deep MLP keep more
        requests in flight and win a FR-FCFS-like scheduler), so a hog
        squeezes high-demand, low-weight victims hardest.
        """
        if not demands:
            return {}
        weights = weights or {}
        all_requesters = list(demands)
        total = sum(demands.values())
        factor = self.latency_factor(total / self.capacity_bps) if total > 0 else 1.0
        active = [k for k, d in demands.items() if d > 0]
        grants = {k: 0.0 for k in all_requesters}
        if not active:
            return {
                k: BandwidthGrant(granted_bps=0.0, latency_factor=factor)
                for k in all_requesters
            }
        weight_sum = sum(weights.get(k, 1.0) for k in active)
        residual = {}
        remaining_cap = self.capacity_bps
        for k in active:
            fair = self.capacity_bps * weights.get(k, 1.0) / weight_sum
            protected = min(demands[k], self.protected_fraction * fair)
            grants[k] = protected
            residual[k] = demands[k] - protected
            remaining_cap -= protected
        unsatisfied = {k for k in active if residual[k] > 1e-9}
        demands = residual  # stage 2 competes for the remainder
        while unsatisfied and remaining_cap > 1e-9:
            denom = sum(weights.get(k, 1.0) * demands[k] for k in unsatisfied)
            if denom <= 0:
                break
            satisfied_now = set()
            for k in unsatisfied:
                share = remaining_cap * weights.get(k, 1.0) * demands[k] / denom
                if share >= demands[k] - 1e-9:
                    grants[k] += demands[k]
                    satisfied_now.add(k)
            if not satisfied_now:
                for k in unsatisfied:
                    grants[k] += (
                        remaining_cap * weights.get(k, 1.0) * demands[k] / denom
                    )
                unsatisfied = set()
                break
            remaining_cap -= sum(demands[k] for k in satisfied_now)
            unsatisfied -= satisfied_now
        return {
            k: BandwidthGrant(granted_bps=grants[k], latency_factor=factor)
            for k in all_requesters
        }


class MemorySystem:
    """The serial composition of ring and DRAM domains.

    LLC traffic (hits + misses) crosses the ring; misses additionally cross
    the DRAM channels. The effective miss-latency factor multiplies both
    domains' queueing factors, and grants are limited by the tighter domain.
    """

    def __init__(self, config):
        self.config = config
        self.ring = BandwidthDomain("ring", config.ring_bandwidth_bps)
        self.dram = BandwidthDomain("dram", config.dram_bandwidth_bps)

    def resolve(self, llc_traffic_bps, dram_traffic_bps, weights=None):
        """Arbitrate both domains.

        Args:
            llc_traffic_bps: {app: bytes/s of LLC-level traffic}
            dram_traffic_bps: {app: bytes/s of DRAM traffic (misses,
                writebacks, prefetch overfetch)}
            weights: optional {app: arbitration weight} (see
                :meth:`BandwidthDomain.resolve`)

        Returns:
            {app: (throughput_scale, miss_latency_factor)} where
            ``throughput_scale`` in (0, 1] is how much of the demanded
            memory throughput the app can actually sustain.
        """
        ring_grants = self.ring.resolve(llc_traffic_bps, weights)
        dram_grants = self.dram.resolve(dram_traffic_bps, weights)
        out = {}
        for app in llc_traffic_bps:
            ring_g = ring_grants[app]
            dram_g = dram_grants[app]
            ring_scale = (
                ring_g.granted_bps / llc_traffic_bps[app]
                if llc_traffic_bps[app] > 0
                else 1.0
            )
            dram_scale = (
                dram_g.granted_bps / dram_traffic_bps.get(app, 0.0)
                if dram_traffic_bps.get(app, 0.0) > 0
                else 1.0
            )
            scale = min(ring_scale, dram_scale)
            latency = ring_g.latency_factor * dram_g.latency_factor
            out[app] = (scale, latency)
        return out
