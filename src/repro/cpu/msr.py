"""A model-specific-register file for the platform.

Two register families matter to this study:

- ``MISC_FEATURE_CONTROL`` (0x1A4): the four prefetcher-disable bits used
  in Section 3.3 (bit 0 MLC streamer, bit 1 MLC spatial, bit 2 DCU
  streamer, bit 3 DCU IP; a set bit *disables* the prefetcher).
- CAT-style partitioning registers: ``IA32_PQR_ASSOC`` (per logical CPU,
  selects a class of service) and ``IA32_L3_QOS_MASK_BASE + clos`` (the way
  bitmask of each class). The prototype chip predates public CAT, but the
  interface is equivalent and is what resctrl drives on shipping parts.
"""

from repro.util.errors import ValidationError

MISC_FEATURE_CONTROL = 0x1A4
IA32_PQR_ASSOC = 0xC8F
IA32_L3_QOS_MASK_BASE = 0xC90

PREFETCHER_BITS = {
    "mlc_streamer": 0,
    "mlc_spatial": 1,
    "dcu_streamer": 2,
    "dcu_ip": 3,
}


class MsrFile:
    """Per-logical-CPU MSR state with chip-level side effects via callbacks.

    ``on_write(cpu, msr, value)`` observers let the chip model translate
    register writes into prefetcher toggles and LLC mask updates, the same
    separation as wrmsr in a driver versus the hardware acting on it.
    """

    def __init__(self, num_cpus=8):
        if num_cpus < 1:
            raise ValidationError("need at least one logical cpu")
        self.num_cpus = num_cpus
        self._regs = [dict() for _ in range(num_cpus)]
        self._observers = []

    def add_observer(self, callback):
        self._observers.append(callback)

    def read(self, cpu, msr):
        self._check_cpu(cpu)
        return self._regs[cpu].get(msr, 0)

    def write(self, cpu, msr, value):
        self._check_cpu(cpu)
        if value < 0:
            raise ValidationError("MSR values are unsigned")
        self._regs[cpu][msr] = value
        for callback in self._observers:
            callback(cpu, msr, value)

    def _check_cpu(self, cpu):
        if not 0 <= cpu < self.num_cpus:
            raise ValidationError(f"cpu {cpu} out of range")

    # -- convenience wrappers used by the runtime layer --------------------

    def set_prefetcher(self, cpu, name, enabled):
        """Enable/disable one prefetcher by name on one logical CPU."""
        if name not in PREFETCHER_BITS:
            raise ValidationError(f"unknown prefetcher {name!r}")
        bit = PREFETCHER_BITS[name]
        value = self.read(cpu, MISC_FEATURE_CONTROL)
        if enabled:
            value &= ~(1 << bit)
        else:
            value |= 1 << bit
        self.write(cpu, MISC_FEATURE_CONTROL, value)

    def prefetcher_enabled(self, cpu, name):
        bit = PREFETCHER_BITS[name]
        return not (self.read(cpu, MISC_FEATURE_CONTROL) >> bit) & 1

    def set_clos(self, cpu, clos):
        """Associate a logical CPU with a class of service."""
        self.write(cpu, IA32_PQR_ASSOC, clos)

    def clos_of(self, cpu):
        return self.read(cpu, IA32_PQR_ASSOC)

    def set_clos_mask(self, clos, bits):
        """Program the way bitmask of a class of service (on cpu 0)."""
        if bits <= 0:
            raise ValidationError("a CLOS mask needs at least one way")
        self.write(0, IA32_L3_QOS_MASK_BASE + clos, bits)

    def clos_mask(self, clos):
        return self.read(0, IA32_L3_QOS_MASK_BASE + clos)
