"""The chip: wiring the MSR file to the hardware it controls.

`Chip` owns an address-level cache hierarchy and an MSR file, and makes
register writes *do* things, the way the paper's custom BIOS and wrmsr
calls did on the prototype:

- writes to ``MISC_FEATURE_CONTROL`` toggle the four prefetchers of the
  target logical CPU's core;
- writes to the CAT registers (``IA32_PQR_ASSOC`` and the
  ``IA32_L3_QOS_MASK`` family) reprogram the LLC's way masks.

This closes the loop for driver-style code: a controller that only knows
``wrmsr`` (or the resctrl layer on top of it) fully controls the
simulated hardware.
"""

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.llc import WayMask
from repro.cpu.config import SandyBridgeConfig
from repro.cpu.msr import (
    IA32_L3_QOS_MASK_BASE,
    IA32_PQR_ASSOC,
    MISC_FEATURE_CONTROL,
    PREFETCHER_BITS,
    MsrFile,
)

_PF_BY_BIT = {
    PREFETCHER_BITS["mlc_streamer"]: "mlc_streamer",
    PREFETCHER_BITS["mlc_spatial"]: "mlc_spatial",
    PREFETCHER_BITS["dcu_streamer"]: "dcu_streamer",
    PREFETCHER_BITS["dcu_ip"]: "dcu_ip",
}


class Chip:
    """The simulated package: cores, caches, and their control registers."""

    def __init__(self, config=None):
        self.config = config or SandyBridgeConfig()
        self.hierarchy = CacheHierarchy(
            num_cores=self.config.num_cores,
            l1_bytes=self.config.l1_bytes,
            l1_ways=self.config.l1_ways,
            l2_bytes=self.config.l2_bytes,
            l2_ways=self.config.l2_ways,
            llc_bytes=self.config.llc_bytes,
            llc_ways=self.config.llc_ways,
            line_size=self.config.line_size,
        )
        self.msr = MsrFile(num_cpus=self.config.num_threads)
        self.msr.add_observer(self._on_msr_write)
        # CLOS -> way mask bits; CPU -> CLOS (hardware-side mirrors).
        self._clos_masks = {0: WayMask.full(self.config.llc_ways).bits}
        self._clos_of_cpu = {cpu: 0 for cpu in range(self.config.num_threads)}

    # -- the hardware acting on register writes ----------------------------

    def _on_msr_write(self, cpu, msr, value):
        if msr == MISC_FEATURE_CONTROL:
            self._apply_prefetcher_bits(cpu, value)
        elif msr == IA32_PQR_ASSOC:
            self._clos_of_cpu[cpu] = value
            self._reprogram_llc()
        elif IA32_L3_QOS_MASK_BASE <= msr < IA32_L3_QOS_MASK_BASE + 16:
            self._clos_masks[msr - IA32_L3_QOS_MASK_BASE] = value
            self._reprogram_llc()

    def _apply_prefetcher_bits(self, cpu, value):
        core = self.hierarchy.core_of_tid(cpu)
        bank = self.hierarchy.prefetchers[core]
        for bit, name in _PF_BY_BIT.items():
            disabled = bool(value >> bit & 1)
            getattr(bank, name).enabled = not disabled

    def _reprogram_llc(self):
        """Core's mask = mask of the CLOS its first hyperthread uses.

        (Both hyperthreads of a core share a fill path on this part; a
        split assignment takes the lower thread's class, matching how
        the prototype resolved the ambiguity.)
        """
        for core in range(self.config.num_cores):
            cpu = core * self.config.threads_per_core
            clos = self._clos_of_cpu.get(cpu, 0)
            bits = self._clos_masks.get(clos)
            if not bits:
                bits = WayMask.full(self.config.llc_ways).bits
            self.hierarchy.set_way_mask(
                core, WayMask.from_bits(bits, self.config.llc_ways)
            )

    # -- convenience ----------------------------------------------------------

    def access(self, address, is_write=False, tid=0, pc=0):
        return self.hierarchy.access(address, is_write=is_write, tid=tid, pc=pc)

    def prefetchers_enabled(self, core):
        bank = self.hierarchy.prefetchers[core]
        return {name: getattr(bank, name).enabled for name in PREFETCHER_BITS}

    def way_mask_of_core(self, core):
        return self.hierarchy.llc.mask_of(core)
