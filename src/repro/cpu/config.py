"""Platform configuration mirroring the paper's prototype (Section 2.1)."""

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError
from repro.util.units import GB, GHZ, KB, MB


@dataclass(frozen=True)
class SandyBridgeConfig:
    """All machine constants in one immutable object.

    Defaults describe the prototype: 4 OoO cores with 2 hyperthreads each,
    32 KB L1D + 256 KB L2 private, 6 MB 12-way inclusive LLC on a ring,
    and client-class DDR3 bandwidth. Power-model constants are chosen so
    socket power lands in the Sandy Bridge client envelope and race-to-halt
    holds (Section 4).
    """

    num_cores: int = 4
    threads_per_core: int = 2
    frequency_hz: float = 3.4 * GHZ

    l1_bytes: int = 32 * KB
    l1_ways: int = 8
    l2_bytes: int = 256 * KB
    l2_ways: int = 8
    llc_bytes: int = 6 * MB
    llc_ways: int = 12
    line_size: int = 64

    l1_latency_cycles: int = 4
    l2_latency_cycles: int = 12
    llc_latency_cycles: int = 30
    dram_latency_cycles: int = 200

    dram_bandwidth_bps: float = 21.0 * GB
    ring_bandwidth_bps: float = 96.0 * GB
    mshrs_per_core: int = 10

    # Hyperthreading: a core running 2 threads retires ``smt_throughput``
    # times the instructions of a core running 1 thread.
    smt_throughput: float = 1.3

    # Power model (Watts). Socket = uncore + sum over active cores of
    # (static + dynamic * utilization); see repro.energy.model.
    uncore_static_w: float = 9.0
    llc_static_w: float = 2.5
    core_static_w: float = 1.5
    core_dynamic_max_w: float = 9.5
    socket_idle_w: float = 5.0

    dram_static_w: float = 4.0
    dram_w_per_gbps: float = 0.55
    psu_overhead: float = 1.25
    system_rest_w: float = 42.0

    # DRAM access energy, charged per LLC miss (64B transfer).
    dram_energy_per_miss_j: float = 20e-9

    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.num_cores < 1 or self.threads_per_core < 1:
            raise ConfigurationError("need at least one core and thread")
        if self.llc_bytes % self.llc_ways:
            raise ConfigurationError("LLC capacity must divide evenly by ways")

    @property
    def num_threads(self):
        return self.num_cores * self.threads_per_core

    @property
    def way_bytes(self):
        return self.llc_bytes // self.llc_ways

    @property
    def way_mb(self):
        return self.way_bytes / MB

    @property
    def llc_mb(self):
        return self.llc_bytes / MB

    def ways_for_mb(self, mb):
        """Smallest way count whose capacity reaches ``mb`` megabytes."""
        ways = max(1, round(mb / self.way_mb))
        return min(ways, self.llc_ways)

    def mb_for_ways(self, ways):
        return ways * self.way_mb

    def at_frequency(self, frequency_hz):
        """A copy of this configuration at a different core frequency.

        DVFS (the Section 4 framing: core count and frequency are the
        well-studied energy knobs). Dynamic power scales ~ f * V^2 and
        voltage tracks frequency on this part, so the per-core dynamic
        ceiling scales with (f/f0)^2.2; static terms stay put, which is
        exactly why race-to-halt wins on it.
        """
        import dataclasses

        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        ratio = frequency_hz / self.frequency_hz
        return dataclasses.replace(
            self,
            frequency_hz=frequency_hz,
            core_dynamic_max_w=self.core_dynamic_max_w * ratio ** 2.2,
            # Memory latencies are fixed in wall time; their cost in core
            # cycles scales with frequency (memory gets relatively slower
            # as the core gets faster).
            llc_latency_cycles=max(1, round(self.llc_latency_cycles * ratio)),
            dram_latency_cycles=max(1, round(self.dram_latency_cycles * ratio)),
        )
