"""The simulated Sandy Bridge client platform.

Configuration constants, core/hyperthread topology, the MSR file through
which prefetchers and the way-partitioning prototype are controlled, and
the shared-bandwidth domains (ring interconnect, DRAM) whose contention the
paper identifies as the unpartitionable resource (Sections 3.4, 8).
"""

from repro.cpu.bandwidth import BandwidthDomain, MemorySystem
from repro.cpu.config import SandyBridgeConfig
from repro.cpu.msr import (
    IA32_L3_QOS_MASK_BASE,
    IA32_PQR_ASSOC,
    MISC_FEATURE_CONTROL,
    MsrFile,
)
from repro.cpu.topology import CpuTopology, HyperThread

__all__ = [
    "BandwidthDomain",
    "CpuTopology",
    "HyperThread",
    "IA32_L3_QOS_MASK_BASE",
    "IA32_PQR_ASSOC",
    "MISC_FEATURE_CONTROL",
    "MemorySystem",
    "MsrFile",
    "SandyBridgeConfig",
]
