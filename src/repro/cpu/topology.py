"""Core/hyperthread enumeration and assignment order.

The paper assigns threads by filling both hyperthreads of a core before
moving to the next core (Section 3.1), and co-scheduled experiments pin
each application to disjoint cores. This module provides that numbering.
"""

from dataclasses import dataclass

from repro.util.errors import SchedulingError, ValidationError


@dataclass(frozen=True)
class HyperThread:
    """A hardware thread: (core, smt slot) with a flat OS-visible id."""

    tid: int
    core: int
    smt: int


class CpuTopology:
    """Enumerates hyperthreads and provides paper-style allocation orders."""

    def __init__(self, num_cores=4, threads_per_core=2):
        if num_cores < 1 or threads_per_core < 1:
            raise ValidationError("topology needs at least one core and thread")
        self.num_cores = num_cores
        self.threads_per_core = threads_per_core
        self.threads = [
            HyperThread(tid=c * threads_per_core + s, core=c, smt=s)
            for c in range(num_cores)
            for s in range(threads_per_core)
        ]

    @property
    def num_threads(self):
        return len(self.threads)

    def thread(self, tid):
        if not 0 <= tid < self.num_threads:
            raise ValidationError(f"tid {tid} out of range")
        return self.threads[tid]

    def core_of(self, tid):
        return self.thread(tid).core

    def fill_order(self, count, first_core=0):
        """The paper's order: both HTs of a core, then the next core."""
        if count < 1 or count > self.num_threads - first_core * self.threads_per_core:
            raise SchedulingError(
                f"cannot place {count} threads starting at core {first_core}"
            )
        start = first_core * self.threads_per_core
        return [self.threads[start + i].tid for i in range(count)]

    def cores_used(self, tids):
        return sorted({self.core_of(t) for t in tids})

    def split_cores(self, num_apps=2):
        """Disjoint, even core groups for co-scheduling (Section 5)."""
        if num_apps < 1 or self.num_cores % num_apps:
            raise SchedulingError(
                f"cannot split {self.num_cores} cores {num_apps} ways evenly"
            )
        per = self.num_cores // num_apps
        return [list(range(i * per, (i + 1) * per)) for i in range(num_apps)]

    def tids_of_cores(self, cores):
        return [t.tid for t in self.threads if t.core in cores]
