"""The full three-level cache hierarchy with an inclusive, partitioned LLC.

Geometry mirrors the paper's platform (Section 2.1): per-core 32 KB L1D and
256 KB non-inclusive L2, and a shared 6 MB 12-way inclusive LLC. Inclusion
is enforced by back-invalidating inner copies whenever the LLC evicts a
line. Hyperthreads map pairwise onto cores (tids 0,1 -> core 0, ...).
"""

from repro.cache.block import AccessResult, MemoryAccess
from repro.cache.kernel import build_fused_walk, make_cache_level
from repro.cache.llc import PartitionedLLC
from repro.cache.prefetch import PrefetcherBank
from repro.perf import engine_counters as ec
from repro.util.errors import ValidationError
from repro.util.units import KB, MB

L1_LATENCY = 4
L2_LATENCY = 12
LLC_LATENCY = 30
MEM_LATENCY = 200


class CacheHierarchy:
    """Private L1/L2 per core plus the shared partitioned LLC."""

    def __init__(
        self,
        num_cores=4,
        l1_bytes=32 * KB,
        l1_ways=8,
        l2_bytes=256 * KB,
        l2_ways=8,
        llc_bytes=6 * MB,
        llc_ways=12,
        line_size=64,
        llc_indexing="hash",
        backend="object",
    ):
        self.num_cores = num_cores
        self.line_size = line_size
        self.backend = backend
        self.l1 = [
            make_cache_level(
                backend, f"L1-{c}", l1_bytes, l1_ways, line_size, replacement="lru"
            )
            for c in range(num_cores)
        ]
        self.l2 = [
            make_cache_level(
                backend, f"L2-{c}", l2_bytes, l2_ways, line_size, replacement="plru"
            )
            for c in range(num_cores)
        ]
        self.llc = PartitionedLLC(
            capacity_bytes=llc_bytes,
            num_ways=llc_ways,
            line_size=line_size,
            num_domains=num_cores,
            indexing=llc_indexing,
            backend=backend,
        )
        self.prefetchers = [PrefetcherBank() for _ in range(num_cores)]
        # Optional way-profiler observing every LLC probe (line, domain).
        self.llc_profiler = None
        self._scratch = AccessResult()  # reused by the fast access path
        # Kernel backend: one fused L1->L2->LLC walk closure per core
        # (probe+fill+stats in a single call, bit-identical to access()).
        fused = [build_fused_walk(self, c) for c in range(num_cores)]
        self._fused = fused if all(w is not None for w in fused) else None

    # -- topology -----------------------------------------------------------

    def core_of_tid(self, tid):
        """Hyperthreads are assigned pairwise: tids 2c and 2c+1 -> core c."""
        core = tid // 2
        if not 0 <= core < self.num_cores:
            raise ValidationError(f"tid {tid} maps outside {self.num_cores} cores")
        return core

    # -- partitioning control -------------------------------------------------

    def set_way_mask(self, core, mask):
        self.llc.set_mask(core, mask)

    def set_prefetchers(self, core=None, enabled=True):
        banks = self.prefetchers if core is None else [self.prefetchers[core]]
        for bank in banks:
            bank.set_all(enabled)

    def prefetchers_enabled(self):
        """True if any prefetcher on any core is enabled."""
        return any(pf.enabled for bank in self.prefetchers for pf in bank.all())

    # -- the access protocol ---------------------------------------------------

    def access(self, access_or_address, is_write=False, tid=0, pc=0):
        """Walk one access through the hierarchy; returns an AccessResult."""
        if isinstance(access_or_address, MemoryAccess):
            acc = access_or_address
        else:
            acc = MemoryAccess(
                address=access_or_address, is_write=is_write, pc=pc, tid=tid
            )
        core = self.core_of_tid(acc.tid)
        line = acc.line_address
        result = AccessResult()
        bank = self.prefetchers[core]

        l1_hit = self.l1[core].access(line, acc.is_write, domain=core)
        prefetch_targets = bank.observe_l1(acc, l1_hit)
        if l1_hit:
            result.hit_level, result.latency = "L1", L1_LATENCY
        else:
            l2_hit = self.l2[core].access(line, acc.is_write, domain=core)
            prefetch_targets += bank.observe_l2(acc, l2_hit)
            if l2_hit:
                result.hit_level, result.latency = "L2", L2_LATENCY
                self._fill_l1(core, line, acc.is_write, result)
            else:
                if self.llc_profiler is not None:
                    self.llc_profiler.observe(line, core)
                llc_hit = self.llc.access(line, acc.is_write, domain=core)
                if llc_hit:
                    result.hit_level, result.latency = "LLC", LLC_LATENCY
                    self.llc.add_sharer(line, core)
                else:
                    result.hit_level, result.latency = "MEM", MEM_LATENCY
                    self._fill_llc(core, line, acc.is_write, result)
                self._fill_l2(core, line, result)
                self._fill_l1(core, line, acc.is_write, result)

        for pf_line, target in prefetch_targets:
            if pf_line < 0:
                continue
            self._prefetch(core, pf_line, target, result)
        result.prefetches_issued = len(prefetch_targets)
        return result

    def access_fast(self, line, is_write, core):
        """One access with every prefetcher disabled: the same walk as
        :meth:`access` minus prefetcher observation, with no per-access
        ``MemoryAccess``/``AccessResult`` allocation.

        State and stats updates are identical to :meth:`access` (the
        observe calls it skips are no-ops when prefetchers are off).
        Returns ``(hit_level, latency)``.
        """
        fused = self._fused
        if fused is not None:
            return fused[core](line, is_write)
        if self.l1[core].access(line, is_write, domain=core):
            return "L1", L1_LATENCY
        scratch = self._scratch
        if self.l2[core].access(line, is_write, domain=core):
            self._fill_l1(core, line, is_write, scratch)
            return "L2", L2_LATENCY
        if self.llc_profiler is not None:
            self.llc_profiler.observe(line, core)
        if self.llc.access(line, is_write, domain=core):
            self.llc.add_sharer(line, core)
            level, latency = "LLC", LLC_LATENCY
        else:
            self._fill_llc(core, line, is_write, scratch)
            level, latency = "MEM", MEM_LATENCY
        self._fill_l2(core, line, scratch)
        self._fill_l1(core, line, is_write, scratch)
        return level, latency

    def fast_walker(self, core):
        """The cheapest ``(line, is_write) -> (hit_level, latency)`` callable
        for ``core`` with prefetchers off: the fused kernel walk when the
        backend supports it, else a thin wrapper over :meth:`access_fast`.
        """
        fused = self._fused
        if fused is not None:
            return fused[core]
        access_fast = self.access_fast

        def walk(line, is_write):
            return access_fast(line, is_write, core)

        return walk

    def run_trace(self, accesses):
        """Walk a full trace; returns aggregate totals as a dict.

        When every prefetcher is disabled the walk dispatches through the
        allocation-free batched path (:meth:`access_fast`); the totals are
        identical either way.
        """
        totals = {
            "accesses": 0,
            "l1_hits": 0,
            "l2_hits": 0,
            "llc_hits": 0,
            "llc_misses": 0,
            "latency": 0,
        }
        if not self.prefetchers_enabled():
            return self._run_trace_batched(accesses, totals)
        for acc in accesses:
            result = self.access(acc)
            totals["accesses"] += 1
            totals["latency"] += result.latency
            if result.hit_level == "L1":
                totals["l1_hits"] += 1
            elif result.hit_level == "L2":
                totals["l2_hits"] += 1
            elif result.hit_level == "LLC":
                totals["llc_hits"] += 1
            else:
                totals["llc_misses"] += 1
        return totals

    _LEVEL_KEY = {"L1": "l1_hits", "L2": "l2_hits", "LLC": "llc_hits", "MEM": "llc_misses"}

    def _run_trace_batched(self, accesses, totals):
        access_fast = self.access_fast
        core_of = self.core_of_tid
        level_key = self._LEVEL_KEY
        count = latency_total = 0
        for acc in accesses:
            level, latency = access_fast(acc.line_address, acc.is_write, core_of(acc.tid))
            count += 1
            latency_total += latency
            totals[level_key[level]] += 1
        totals["accesses"] = count
        totals["latency"] = latency_total
        ec.add(ec.KERNEL_BATCHES)
        ec.add(ec.KERNEL_BATCHED_ACCESSES, count)
        return totals

    # -- internals ---------------------------------------------------------------

    def _fill_l1(self, core, line, is_write, result):
        evicted = self.l1[core].fill(line, is_write=is_write, domain=core)
        if evicted is not None and evicted.dirty:
            # Non-inclusive L2: a dirty L1 victim lands in (or updates) L2.
            if not self.l2[core].mark_dirty(evicted.tag):
                self._fill_l2(core, evicted.tag, result, dirty=True)
            result.writebacks += 1

    def _fill_l2(self, core, line, result, dirty=False):
        evicted = self.l2[core].fill(line, is_write=dirty, domain=core)
        if evicted is not None and evicted.dirty:
            # Inclusive LLC normally still holds the line; update it there.
            if not self.llc.storage.mark_dirty(evicted.tag):
                result.writebacks += 1  # fell through to memory

    def _fill_llc(self, core, line, is_write, result, prefetch=False):
        evicted = self.llc.fill(
            line, is_write=is_write, domain=core, prefetch=prefetch, sharer=core
        )
        if evicted is not None:
            result.llc_victim_line = evicted.tag
            self._back_invalidate(evicted, result)

    def _back_invalidate(self, evicted, result):
        """Enforce inclusion: evicted LLC lines leave all inner caches."""
        for core in range(self.num_cores):
            if evicted.sharers and not (evicted.sharers >> core) & 1:
                continue
            if self.l1[core].invalidate(evicted.tag):
                result.writebacks += 1
            if self.l2[core].invalidate(evicted.tag):
                result.writebacks += 1
            result.back_invalidations += 1

    def _prefetch(self, core, line, target, result):
        """Fill a prefetched line at ``target``, keeping the LLC inclusive."""
        if not self.llc.contains(line):
            self._fill_llc(core, line, False, result, prefetch=True)
        self.llc.add_sharer(line, core)
        if target == "L2":
            if not self.l2[core].contains(line):
                self._fill_l2(core, line, result)
        else:  # L1
            if not self.l1[core].contains(line):
                self._fill_l1(core, line, False, result)
