"""The full three-level cache hierarchy with an inclusive, partitioned LLC.

Geometry mirrors the paper's platform (Section 2.1): per-core 32 KB L1D and
256 KB non-inclusive L2, and a shared 6 MB 12-way inclusive LLC. Inclusion
is enforced by back-invalidating inner copies whenever the LLC evicts a
line. Hyperthreads map pairwise onto cores (tids 0,1 -> core 0, ...).
"""

from repro.cache.block import AccessResult, MemoryAccess
from repro.cache.cache import CacheLevel
from repro.cache.llc import PartitionedLLC
from repro.cache.prefetch import PrefetcherBank
from repro.util.errors import ValidationError
from repro.util.units import KB, MB

L1_LATENCY = 4
L2_LATENCY = 12
LLC_LATENCY = 30
MEM_LATENCY = 200


class CacheHierarchy:
    """Private L1/L2 per core plus the shared partitioned LLC."""

    def __init__(
        self,
        num_cores=4,
        l1_bytes=32 * KB,
        l1_ways=8,
        l2_bytes=256 * KB,
        l2_ways=8,
        llc_bytes=6 * MB,
        llc_ways=12,
        line_size=64,
        llc_indexing="hash",
    ):
        self.num_cores = num_cores
        self.line_size = line_size
        self.l1 = [
            CacheLevel(f"L1-{c}", l1_bytes, l1_ways, line_size, replacement="lru")
            for c in range(num_cores)
        ]
        self.l2 = [
            CacheLevel(f"L2-{c}", l2_bytes, l2_ways, line_size, replacement="plru")
            for c in range(num_cores)
        ]
        self.llc = PartitionedLLC(
            capacity_bytes=llc_bytes,
            num_ways=llc_ways,
            line_size=line_size,
            num_domains=num_cores,
            indexing=llc_indexing,
        )
        self.prefetchers = [PrefetcherBank() for _ in range(num_cores)]

    # -- topology -----------------------------------------------------------

    def core_of_tid(self, tid):
        """Hyperthreads are assigned pairwise: tids 2c and 2c+1 -> core c."""
        core = tid // 2
        if not 0 <= core < self.num_cores:
            raise ValidationError(f"tid {tid} maps outside {self.num_cores} cores")
        return core

    # -- partitioning control -------------------------------------------------

    def set_way_mask(self, core, mask):
        self.llc.set_mask(core, mask)

    def set_prefetchers(self, core=None, enabled=True):
        banks = self.prefetchers if core is None else [self.prefetchers[core]]
        for bank in banks:
            bank.set_all(enabled)

    # -- the access protocol ---------------------------------------------------

    def access(self, access_or_address, is_write=False, tid=0, pc=0):
        """Walk one access through the hierarchy; returns an AccessResult."""
        if isinstance(access_or_address, MemoryAccess):
            acc = access_or_address
        else:
            acc = MemoryAccess(
                address=access_or_address, is_write=is_write, pc=pc, tid=tid
            )
        core = self.core_of_tid(acc.tid)
        line = acc.line_address
        result = AccessResult()
        bank = self.prefetchers[core]

        l1_hit = self.l1[core].access(line, acc.is_write, domain=core)
        prefetch_targets = bank.observe_l1(acc, l1_hit)
        if l1_hit:
            result.hit_level, result.latency = "L1", L1_LATENCY
        else:
            l2_hit = self.l2[core].access(line, acc.is_write, domain=core)
            prefetch_targets += bank.observe_l2(acc, l2_hit)
            if l2_hit:
                result.hit_level, result.latency = "L2", L2_LATENCY
                self._fill_l1(core, line, acc.is_write, result)
            else:
                llc_hit = self.llc.access(line, acc.is_write, domain=core)
                if llc_hit:
                    result.hit_level, result.latency = "LLC", LLC_LATENCY
                    self.llc.add_sharer(line, core)
                else:
                    result.hit_level, result.latency = "MEM", MEM_LATENCY
                    self._fill_llc(core, line, acc.is_write, result)
                self._fill_l2(core, line, result)
                self._fill_l1(core, line, acc.is_write, result)

        for pf_line, target in prefetch_targets:
            if pf_line < 0:
                continue
            self._prefetch(core, pf_line, target, result)
        result.prefetches_issued = len(prefetch_targets)
        return result

    def run_trace(self, accesses):
        """Walk a full trace; returns aggregate totals as a dict."""
        totals = {
            "accesses": 0,
            "l1_hits": 0,
            "l2_hits": 0,
            "llc_hits": 0,
            "llc_misses": 0,
            "latency": 0,
        }
        for acc in accesses:
            result = self.access(acc)
            totals["accesses"] += 1
            totals["latency"] += result.latency
            if result.hit_level == "L1":
                totals["l1_hits"] += 1
            elif result.hit_level == "L2":
                totals["l2_hits"] += 1
            elif result.hit_level == "LLC":
                totals["llc_hits"] += 1
            else:
                totals["llc_misses"] += 1
        return totals

    # -- internals ---------------------------------------------------------------

    def _fill_l1(self, core, line, is_write, result):
        evicted = self.l1[core].fill(line, is_write=is_write, domain=core)
        if evicted is not None and evicted.dirty:
            # Non-inclusive L2: a dirty L1 victim lands in (or updates) L2.
            if not self.l2[core].mark_dirty(evicted.tag):
                self._fill_l2(core, evicted.tag, result, dirty=True)
            result.writebacks += 1

    def _fill_l2(self, core, line, result, dirty=False):
        evicted = self.l2[core].fill(line, is_write=dirty, domain=core)
        if evicted is not None and evicted.dirty:
            # Inclusive LLC normally still holds the line; update it there.
            if not self.llc.storage.mark_dirty(evicted.tag):
                result.writebacks += 1  # fell through to memory

    def _fill_llc(self, core, line, is_write, result, prefetch=False):
        evicted = self.llc.fill(
            line, is_write=is_write, domain=core, prefetch=prefetch, sharer=core
        )
        if evicted is not None:
            result.llc_victim_line = evicted.tag
            self._back_invalidate(evicted, result)

    def _back_invalidate(self, evicted, result):
        """Enforce inclusion: evicted LLC lines leave all inner caches."""
        for core in range(self.num_cores):
            if evicted.sharers and not (evicted.sharers >> core) & 1:
                continue
            if self.l1[core].invalidate(evicted.tag):
                result.writebacks += 1
            if self.l2[core].invalidate(evicted.tag):
                result.writebacks += 1
            result.back_invalidations += 1

    def _prefetch(self, core, line, target, result):
        """Fill a prefetched line at ``target``, keeping the LLC inclusive."""
        if not self.llc.contains(line):
            self._fill_llc(core, line, False, result, prefetch=True)
        self.llc.add_sharer(line, core)
        if target == "L2":
            if not self.l2[core].contains(line):
                self._fill_l2(core, line, result)
        else:  # L1
            if not self.l1[core].contains(line):
                self._fill_l1(core, line, False, result)
