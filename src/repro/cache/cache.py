"""A generic set-associative, write-back cache level."""

from repro.cache.block import CacheLine
from repro.cache.indexing import HashedIndex, ModuloIndex
from repro.cache.replacement import PseudoLruTree, TrueLru
from repro.cache.stats import CacheStats
from repro.util.errors import ConfigurationError

_REPLACEMENT = {"lru": TrueLru, "plru": PseudoLruTree}
_INDEXING = {"mod": ModuloIndex, "hash": HashedIndex}


class CacheLevel:
    """One level of a write-back cache (L1, L2, or the LLC's storage).

    The level stores line *numbers* (byte address >> 6); the hierarchy is
    responsible for routing and inclusion. Victim selection can be
    restricted to a subset of ways via ``allowed_ways`` — the hook the
    partitioned LLC builds on.
    """

    def __init__(
        self,
        name,
        capacity_bytes,
        num_ways,
        line_size=64,
        replacement="lru",
        indexing="mod",
        tag_index=True,
    ):
        if capacity_bytes % (num_ways * line_size):
            raise ConfigurationError(
                f"{name}: capacity {capacity_bytes} not divisible by "
                f"{num_ways} ways x {line_size}B lines"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.num_ways = num_ways
        self.line_size = line_size
        self.num_sets = capacity_bytes // (num_ways * line_size)
        if replacement not in _REPLACEMENT:
            raise ConfigurationError(f"unknown replacement policy {replacement!r}")
        if indexing not in _INDEXING:
            raise ConfigurationError(f"unknown indexing scheme {indexing!r}")
        self._indexer = _INDEXING[indexing](self.num_sets)
        self._sets = [
            [CacheLine() for _ in range(num_ways)] for _ in range(self.num_sets)
        ]
        self._policies = [
            _REPLACEMENT[replacement](num_ways) for _ in range(self.num_sets)
        ]
        # tag -> way per set, kept in sync on fill/invalidate, turning the
        # O(ways) presence scan into one dict probe. ``tag_index=False``
        # preserves the original linear-scan path for benchmarking.
        self._tag_index = (
            [dict() for _ in range(self.num_sets)] if tag_index else None
        )
        self.stats = CacheStats()

    # -- lookup ----------------------------------------------------------

    def set_index(self, line_number):
        return self._indexer.index(line_number)

    def find(self, line_number):
        """Return (set_index, way) if the line is present, else (set, None)."""
        set_idx = self.set_index(line_number)
        if self._tag_index is not None:
            return set_idx, self._tag_index[set_idx].get(line_number)
        for way, cl in enumerate(self._sets[set_idx]):
            if cl.valid and cl.tag == line_number:
                return set_idx, way
        return set_idx, None

    def contains(self, line_number):
        return self.find(line_number)[1] is not None

    # -- access / fill / invalidate --------------------------------------

    def access(self, line_number, is_write=False, domain=0):
        """Probe for a line; returns True on hit (recency updated)."""
        set_idx, way = self.find(line_number)
        hit = way is not None
        self.stats.record_access(domain, hit)
        if hit:
            cl = self._sets[set_idx][way]
            self._policies[set_idx].touch(way)
            if is_write:
                cl.dirty = True
            if cl.prefetched and not cl.touched_after_prefetch:
                cl.touched_after_prefetch = True
                self.stats.prefetch_useful += 1
        return hit

    def fill(
        self,
        line_number,
        is_write=False,
        domain=0,
        allowed_ways=None,
        prefetch=False,
        sharer=None,
    ):
        """Insert a line, evicting if necessary.

        Returns the evicted ``CacheLine`` metadata (with its line number in
        ``tag``) or ``None`` if an invalid way absorbed the fill. If the
        line is already present the fill is a no-op returning ``None``.
        """
        set_idx, way = self.find(line_number)
        if way is not None:
            return None  # racing fill (e.g. prefetch landed first)

        cache_set = self._sets[set_idx]
        victim_way = None
        candidates = (
            range(self.num_ways) if allowed_ways is None else list(allowed_ways)
        )
        for w in candidates:
            # Range-guarded so junk allowed_ways reach the policy, which
            # raises the proper ValidationError (the kernel does the same).
            if 0 <= w < self.num_ways and not cache_set[w].valid:
                victim_way = w
                break
        evicted = None
        if victim_way is None:
            victim_way = self._policies[set_idx].victim(candidates)
            victim = cache_set[victim_way]
            evicted = CacheLine(
                tag=victim.tag,
                valid=True,
                dirty=victim.dirty,
                sharers=victim.sharers,
            )
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
            if self._tag_index is not None:
                self._tag_index[set_idx].pop(victim.tag, None)

        cl = cache_set[victim_way]
        cl.tag = line_number
        cl.valid = True
        cl.dirty = is_write
        cl.sharers = (1 << sharer) if sharer is not None else 0
        cl.prefetched = prefetch
        cl.touched_after_prefetch = False
        if self._tag_index is not None:
            self._tag_index[set_idx][line_number] = victim_way
        self.stats.fills += 1
        if prefetch:
            self.stats.prefetch_fills += 1
        self._policies[set_idx].touch(victim_way)
        return evicted

    def add_sharer(self, line_number, core):
        set_idx, way = self.find(line_number)
        if way is not None:
            self._sets[set_idx][way].sharers |= 1 << core

    def sharers_of(self, line_number):
        set_idx, way = self.find(line_number)
        if way is None:
            return 0
        return self._sets[set_idx][way].sharers

    def mark_dirty(self, line_number):
        """Mark a resident line dirty (inner-level writeback landing here)."""
        set_idx, way = self.find(line_number)
        if way is None:
            return False
        self._sets[set_idx][way].dirty = True
        return True

    def invalidate(self, line_number):
        """Drop a line if present; returns True if it was dirty."""
        set_idx, way = self.find(line_number)
        if way is None:
            return False
        cl = self._sets[set_idx][way]
        was_dirty = cl.dirty
        cl.reset()
        if self._tag_index is not None:
            self._tag_index[set_idx].pop(line_number, None)
        self.stats.back_invalidations += 1
        return was_dirty

    # -- introspection -----------------------------------------------------

    def occupancy(self):
        """Number of valid lines currently held."""
        return sum(1 for s in self._sets for cl in s if cl.valid)

    def occupancy_by_way(self):
        """Valid-line count per way index (used by partitioning tests)."""
        counts = [0] * self.num_ways
        for cache_set in self._sets:
            for way, cl in enumerate(cache_set):
                if cl.valid:
                    counts[way] += 1
        return counts

    def resident_lines(self):
        """Set of line numbers currently cached (for inclusion checks)."""
        return {cl.tag for s in self._sets for cl in s if cl.valid}
