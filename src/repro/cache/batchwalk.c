/* Batched replay: one call, R independent replays, parallel inside C.
 *
 * Two entry points share one worker pool:
 *
 *   repro_batch_walk     R independent multiwalk cells (whole co-runs or
 *                        the allocations of a measured way sweep).  Every
 *                        cell owns a contiguous bank of the full flat
 *                        state multiwalk.c operates on (LLC tags/sharers/
 *                        valid/PLRU, all-core L1/L2 tags + recency, dom,
 *                        cfg, bi, sched), laid out cell-major with
 *                        uniform strides, so cell r's replay is
 *                        `repro_multi_walk` over `base + r * stride`
 *                        slices — bit-identical to calling the epoch
 *                        kernel once per cell, in any thread order.
 *
 *   repro_batch_profile  R UMON profiling streams (one per domain) over
 *                        shared trace columns: the bounded stack-distance
 *                        update of profile.WayProfiler, parallelized by
 *                        sharding the *set index* space.  Sets are
 *                        independent under set-associative LRU, and each
 *                        (cell, shard) work item writes its own
 *                        histogram slot, so the per-cell histogram — the
 *                        fixed-order sum over shard slots, reduced by
 *                        the Python caller — is invariant to both the
 *                        shard count and the thread schedule.
 *
 * Threading is compile-time selected: OpenMP when the loader's
 * `-fopenmp` probe succeeds, else a pthread worker loop
 * (-DREPRO_BATCH_PTHREADS), else the serial batched loop.  All three
 * paths write results only into caller-owned per-item output slots
 * (each cell's own dom/sched/histogram bank), never into shared
 * accumulators, so the reduction order is deterministic and the output
 * is thread-count-invariant by construction.  `repro_batch_threading`
 * reports which path was compiled in (2 = OpenMP, 1 = pthreads,
 * 0 = serial) so `kernel_status` tells the truth about the object that
 * actually loaded, not the flags that were requested.
 */

#include "multiwalk.c"

#if defined(_OPENMP)
#include <omp.h>
#elif defined(REPRO_BATCH_PTHREADS)
#include <pthread.h>
#endif

typedef void (*batch_item_fn)(void *ctx, i64 item);

#if defined(_OPENMP)

static void
run_items(void *ctx, batch_item_fn fn, i64 total, i64 threads)
{
    i64 it;
#pragma omp parallel for schedule(dynamic, 1) num_threads((int)threads)
    for (it = 0; it < total; it++)
        fn(ctx, it);
}

enum { BATCH_THREADING = 2 };

#elif defined(REPRO_BATCH_PTHREADS)

typedef struct {
    void *ctx;
    batch_item_fn fn;
    i64 total;
    i64 next;  /* atomically claimed work-item counter */
} PoolState;

static void *
pool_worker(void *arg)
{
    PoolState *p = (PoolState *)arg;
    for (;;) {
        i64 it = __atomic_fetch_add(&p->next, 1, __ATOMIC_RELAXED);
        if (it >= p->total)
            return 0;
        p->fn(p->ctx, it);
    }
}

static void
run_items(void *ctx, batch_item_fn fn, i64 total, i64 threads)
{
    PoolState pool = { ctx, fn, total, 0 };
    pthread_t workers[63];
    i64 spawned = 0;
    i64 want = threads - 1;  /* the calling thread drains items too */
    if (want > 63)
        want = 63;
    for (i64 t = 0; t < want; t++) {
        if (pthread_create(&workers[spawned], 0, pool_worker, &pool) != 0)
            break;  /* fewer workers; every item still runs */
        spawned++;
    }
    pool_worker(&pool);
    for (i64 t = 0; t < spawned; t++)
        pthread_join(workers[t], 0);
}

enum { BATCH_THREADING = 1 };

#else

static void
run_items(void *ctx, batch_item_fn fn, i64 total, i64 threads)
{
    (void)threads;
    for (i64 it = 0; it < total; it++)
        fn(ctx, it);
}

enum { BATCH_THREADING = 0 };

#endif

i64
repro_batch_threading(void)
{
    return BATCH_THREADING;
}

/* bcfg[] scalar layout (must match kernel.build_native_batch_replay) */
enum {
    B_CELLS, B_THREADS, B_NMAX, B_LLC_SETS, B_W,
    B_L1_SETS, B_L2_SETS, B_NUM_CORES,
    BCFG_SLOTS,
};

typedef struct {
    const i64 *cfg;                /* R x CFG_SLOTS */
    i64 *dom;                      /* R x n_max x DOM_STRIDE */
    const i64 *const *lines;       /* R x n_max column pointers */
    const i64 *const *sets;
    i64 *llc_tags, *llc_sharers, *llc_valid, *llc_plru;
    const i64 *pset, *pclr, *pleft, *pright;
    const i32 *l1_touch, *l1_fill, *l2_touch, *l2_fill;
    i64 *l1_tags, *l1_valid, *l1_state;
    i64 *l2_tags, *l2_valid, *l2_plru;
    i64 *bi, *sched;
    i64 nmax, dom_stride;
    i64 llc_tw, llc_s;             /* per-cell LLC tag/set-word strides */
    i64 l1_tw, l1_s, l2_tw, l2_s;  /* per-cell inner-cache strides */
    i64 bi_s;
} WalkBatch;

/* Build the batch view over the caller-owned banks.  The cell strides
 * are pure functions of bcfg, so every entry point that shares the
 * cell-major layout (repro_batch_walk, epochbatch.c's
 * repro_epoch_batch) sees exactly the same per-cell slices. */
static WalkBatch
make_walk_batch(
    const i64 *bcfg,
    const i64 *cfg,
    i64 *dom,
    const i64 *const *lines, const i64 *const *sets,
    i64 *llc_tags, i64 *llc_sharers, i64 *llc_valid, i64 *llc_plru,
    const i64 *pset, const i64 *pclr, const i64 *pleft, const i64 *pright,
    const i32 *l1_touch, const i32 *l1_fill,
    const i32 *l2_touch, const i32 *l2_fill,
    i64 *l1_tags, i64 *l1_valid, i64 *l1_state,
    i64 *l2_tags, i64 *l2_valid, i64 *l2_plru,
    i64 *bi,
    i64 *sched)
{
    i64 nmax = bcfg[B_NMAX];
    i64 llc_sets = bcfg[B_LLC_SETS];
    i64 W = bcfg[B_W];
    i64 l1_sets = bcfg[B_L1_SETS];
    i64 l2_sets = bcfg[B_L2_SETS];
    i64 num_cores = bcfg[B_NUM_CORES];
    WalkBatch B = {
        cfg, dom, lines, sets,
        llc_tags, llc_sharers, llc_valid, llc_plru,
        pset, pclr, pleft, pright,
        l1_touch, l1_fill, l2_touch, l2_fill,
        l1_tags, l1_valid, l1_state,
        l2_tags, l2_valid, l2_plru,
        bi, sched,
        nmax, nmax * DOM_STRIDE,
        llc_sets * W, llc_sets,
        num_cores * l1_sets * 8, num_cores * l1_sets,
        num_cores * l2_sets * 8, num_cores * l2_sets,
        2 * num_cores,
    };
    return B;
}

static void
walk_cell(void *arg, i64 r)
{
    const WalkBatch *B = (const WalkBatch *)arg;
    repro_multi_walk(
        B->cfg + r * CFG_SLOTS,
        B->dom + r * B->dom_stride,
        B->lines + r * B->nmax, B->sets + r * B->nmax,
        B->llc_tags + r * B->llc_tw, B->llc_sharers + r * B->llc_tw,
        B->llc_valid + r * B->llc_s, B->llc_plru + r * B->llc_s,
        B->pset, B->pclr, B->pleft, B->pright,
        B->l1_touch, B->l1_fill, B->l2_touch, B->l2_fill,
        B->l1_tags + r * B->l1_tw, B->l1_valid + r * B->l1_s,
        B->l1_state + r * B->l1_s,
        B->l2_tags + r * B->l2_tw, B->l2_valid + r * B->l2_s,
        B->l2_plru + r * B->l2_s,
        B->bi + r * B->bi_s,
        B->sched + r * SCHED_SLOTS);
}

i64
repro_batch_walk(
    const i64 *bcfg,
    const i64 *cfg,
    i64 *dom,
    const i64 *const *lines, const i64 *const *sets,
    i64 *llc_tags, i64 *llc_sharers, i64 *llc_valid, i64 *llc_plru,
    const i64 *pset, const i64 *pclr, const i64 *pleft, const i64 *pright,
    const i32 *l1_touch, const i32 *l1_fill,
    const i32 *l2_touch, const i32 *l2_fill,
    i64 *l1_tags, i64 *l1_valid, i64 *l1_state,
    i64 *l2_tags, i64 *l2_valid, i64 *l2_plru,
    i64 *bi,
    i64 *sched)
{
    i64 R = bcfg[B_CELLS];
    i64 threads = bcfg[B_THREADS];
    if (R < 1)
        return 0;
    if (threads < 1)
        threads = 1;
    if (threads > R)
        threads = R;

    WalkBatch B = make_walk_batch(
        bcfg, cfg, dom, lines, sets,
        llc_tags, llc_sharers, llc_valid, llc_plru,
        pset, pclr, pleft, pright,
        l1_touch, l1_fill, l2_touch, l2_fill,
        l1_tags, l1_valid, l1_state,
        l2_tags, l2_valid, l2_plru,
        bi, sched);
    run_items(&B, walk_cell, R, threads);

    i64 issued = 0;
    for (i64 r = 0; r < R; r++)
        issued += sched[r * SCHED_SLOTS + SCHED_ISSUED];
    return issued;
}

/* pcfg[] scalar layout (must match profile_np._profile_pack_native) */
enum {
    P_CELLS, P_THREADS, P_SHARDS, P_SETS, P_WAYS,
    PCFG_SLOTS,
};

typedef struct {
    const i64 *const *lines;  /* R per-domain column pointers */
    const i64 *const *sets;
    const i64 *cell_n;        /* per-cell access counts */
    i64 *stack_lines;         /* R x num_sets x W */
    i64 *stack_depth;         /* R x num_sets */
    i64 *hist;                /* (R x shards) x (W + 1) output slots */
    i64 num_sets, W, shards;
} ProfileBatch;

/* WayProfiler.observe over one (cell, set-shard) work item: bounded
 * LRU stack per set, histogram[d] on a hit at depth d, histogram[W] on
 * a miss past every allocation.  Shards partition the set index space,
 * so work items of the same cell touch disjoint stacks, and within a
 * set the accesses are replayed in program order — exactly the
 * sequential profiler's updates. */
static void
profile_item(void *arg, i64 item)
{
    const ProfileBatch *P = (const ProfileBatch *)arg;
    i64 shards = P->shards;
    i64 r = item / shards;
    i64 shard = item % shards;
    const i64 *lcol = P->lines[r];
    const i64 *scol = P->sets[r];
    i64 n = P->cell_n[r];
    i64 W = P->W;
    i64 *stk_base = P->stack_lines + r * P->num_sets * W;
    i64 *dep_base = P->stack_depth + r * P->num_sets;
    i64 *hist = P->hist + item * (W + 1);
    for (i64 i = 0; i < n; i++) {
        i64 s = scol[i];
        if (s % shards != shard)
            continue;
        i64 line = lcol[i];
        i64 *stk = stk_base + s * W;
        i64 depth = dep_base[s];
        i64 d = 0;
        while (d < depth && stk[d] != line)
            d++;
        if (d < depth) {
            hist[d]++;
            for (; d > 0; d--)
                stk[d] = stk[d - 1];
            stk[0] = line;
        } else {
            hist[W]++;
            i64 nd = depth + 1;
            if (nd > W)
                nd = W;  /* bounded stack: the deepest entry falls off */
            for (i64 j = nd - 1; j > 0; j--)
                stk[j] = stk[j - 1];
            stk[0] = line;
            dep_base[s] = nd;
        }
    }
}

i64
repro_batch_profile(
    const i64 *pcfg,
    const i64 *const *lines, const i64 *const *sets,
    const i64 *cell_n,
    i64 *stack_lines, i64 *stack_depth,
    i64 *hist)
{
    i64 R = pcfg[P_CELLS];
    i64 threads = pcfg[P_THREADS];
    i64 shards = pcfg[P_SHARDS];
    if (R < 1)
        return 0;
    if (shards < 1)
        shards = 1;
    i64 total = R * shards;
    if (threads < 1)
        threads = 1;
    if (threads > total)
        threads = total;

    ProfileBatch P = {
        lines, sets, cell_n,
        stack_lines, stack_depth, hist,
        pcfg[P_SETS], pcfg[P_WAYS], shards,
    };
    run_items(&P, profile_item, total, threads);
    return total;
}
