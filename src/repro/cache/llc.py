"""The way-partitioned, inclusive last-level cache.

Implements the mechanism of paper Section 2.1:

- Each domain (core) is assigned a subset of the 12 ways.
- Assignments may be private, fully shared, or overlapping.
- Any domain can *hit* on data in any way; a domain can only *replace*
  data in its assigned ways.
- Changing an assignment never flushes data — stale lines simply become
  irreplaceable by their old owner and persist until another domain
  evicts them.
"""

from repro.cache.kernel import make_cache_level
from repro.util.errors import ConfigurationError, ValidationError


class WayMask:
    """An immutable set of LLC way indices with bitmask conveniences."""

    def __init__(self, ways, num_ways=12):
        ways = frozenset(int(w) for w in ways)
        if not ways:
            raise ValidationError("a way mask cannot be empty")
        for w in ways:
            if not 0 <= w < num_ways:
                raise ValidationError(f"way {w} outside 0..{num_ways - 1}")
        self.ways = ways
        self.num_ways = num_ways

    @classmethod
    def contiguous(cls, count, offset=0, num_ways=12):
        """``count`` ways starting at ``offset`` (the usual CAT shape)."""
        if count < 1 or offset < 0 or offset + count > num_ways:
            raise ValidationError(
                f"cannot place {count} ways at offset {offset} in {num_ways}"
            )
        return cls(range(offset, offset + count), num_ways)

    @classmethod
    def full(cls, num_ways=12):
        return cls(range(num_ways), num_ways)

    @classmethod
    def from_bits(cls, bits, num_ways=12):
        """Parse a resctrl-style hex bitmask (e.g. 0xFF0)."""
        if bits <= 0:
            raise ValidationError("bitmask must have at least one way set")
        return cls((w for w in range(num_ways) if bits >> w & 1), num_ways)

    @property
    def bits(self):
        mask = 0
        for w in self.ways:
            mask |= 1 << w
        return mask

    @property
    def count(self):
        return len(self.ways)

    def capacity_bytes(self, llc_capacity_bytes):
        return llc_capacity_bytes * self.count // self.num_ways

    def overlaps(self, other):
        return bool(self.ways & other.ways)

    def __iter__(self):
        return iter(sorted(self.ways))

    def __eq__(self, other):
        return isinstance(other, WayMask) and self.ways == other.ways

    def __hash__(self):
        return hash(self.ways)

    def __repr__(self):
        return f"WayMask({sorted(self.ways)})"


class PartitionedLLC:
    """A shared LLC whose replacement is constrained by per-domain masks."""

    def __init__(
        self,
        capacity_bytes=6 * 1024 * 1024,
        num_ways=12,
        line_size=64,
        num_domains=4,
        replacement="plru",
        indexing="hash",
        backend="object",
    ):
        if num_domains < 1:
            raise ConfigurationError("need at least one domain")
        self.storage = make_cache_level(
            backend,
            "LLC",
            capacity_bytes,
            num_ways,
            line_size=line_size,
            replacement=replacement,
            indexing=indexing,
        )
        self.num_ways = num_ways
        self.num_domains = num_domains
        self._masks = {d: WayMask.full(num_ways) for d in range(num_domains)}
        # Sorted way lists / bitmasks are hoisted out of the fill hot path.
        self._mask_ways = {d: list(m) for d, m in self._masks.items()}
        self._mask_bits = {d: m.bits for d, m in self._masks.items()}

    # -- partition control -------------------------------------------------

    def set_mask(self, domain, mask):
        """Assign ``mask`` to ``domain``. Data is *not* flushed."""
        if domain not in self._masks:
            raise ValidationError(f"unknown domain {domain}")
        if mask.num_ways != self.num_ways:
            raise ValidationError("mask sized for a different LLC")
        self._masks[domain] = mask
        self._mask_ways[domain] = list(mask)
        self._mask_bits[domain] = mask.bits

    def mask_of(self, domain):
        return self._masks[domain]

    def masks(self):
        return dict(self._masks)

    # -- the access protocol ------------------------------------------------

    def access(self, line_number, is_write=False, domain=0):
        """Probe the LLC. Hits are permitted in *any* way."""
        return self.storage.access(line_number, is_write=is_write, domain=domain)

    def fill(self, line_number, is_write=False, domain=0, prefetch=False, sharer=None):
        """Fill a line; the victim must come from the domain's mask."""
        return self.storage.fill(
            line_number,
            is_write=is_write,
            domain=domain,
            allowed_ways=self._mask_ways[domain],
            prefetch=prefetch,
            sharer=sharer,
        )

    # -- passthroughs ---------------------------------------------------------

    @property
    def stats(self):
        return self.storage.stats

    def contains(self, line_number):
        return self.storage.contains(line_number)

    def add_sharer(self, line_number, core):
        self.storage.add_sharer(line_number, core)

    def invalidate(self, line_number):
        return self.storage.invalidate(line_number)

    def occupancy(self):
        return self.storage.occupancy()

    def occupancy_by_way(self):
        return self.storage.occupancy_by_way()
