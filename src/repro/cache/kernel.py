"""Flat-array set-associative simulation kernel.

:class:`KernelCacheLevel` is a drop-in replacement for
:class:`repro.cache.cache.CacheLevel` that keeps tag, state, and recency
information in flat contiguous buffers instead of nested ``CacheLine``
objects:

- presence is one per-set ``tag -> way`` dict probe instead of a linear
  way scan;
- valid/dirty/prefetched flags are per-set bitmasks, sharers and tags
  are flat integer arrays;
- true-LRU recency is a monotonically increasing touch stamp (victim =
  minimum stamp among allowed ways, exactly the tail of the recency
  list);
- tree-PLRU touches collapse to two precomputed bit masks per way
  (the touch path through the tree is fixed per way), and the victim
  walk tests subtree membership with range bitmasks;
- hashed set indices are memoized (the XOR fold is the only per-access
  loop left otherwise).

The kernel is bit-identical to the object model — same hits, same victim
choices, same evictions and stats — for LRU and PLRU, modulo and hashed
indexing, with and without way masks. ``tests/cache/test_kernel.py``
holds the two backends to exact agreement step by step.
"""

from repro.cache.block import CacheLine
from repro.cache.cache import CacheLevel, _INDEXING
from repro.cache.stats import CacheStats
from repro.util.errors import ConfigurationError, ValidationError

BACKENDS = ("object", "seed", "kernel")

_INDEX_MEMO_CAP = 1 << 20  # bound the hashed-index memo on huge footprints


class KernelCacheLevel:
    """One cache level backed by flat arrays (see module docstring)."""

    def __init__(
        self,
        name,
        capacity_bytes,
        num_ways,
        line_size=64,
        replacement="lru",
        indexing="mod",
    ):
        if capacity_bytes % (num_ways * line_size):
            raise ConfigurationError(
                f"{name}: capacity {capacity_bytes} not divisible by "
                f"{num_ways} ways x {line_size}B lines"
            )
        if replacement not in ("lru", "plru"):
            raise ConfigurationError(f"unknown replacement policy {replacement!r}")
        if indexing not in _INDEXING:
            raise ConfigurationError(f"unknown indexing scheme {indexing!r}")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.num_ways = num_ways
        self.line_size = line_size
        self.num_sets = capacity_bytes // (num_ways * line_size)
        self._indexer = _INDEXING[indexing](self.num_sets)
        self._is_lru = replacement == "lru"
        self._full_mask = (1 << num_ways) - 1

        num_sets, W = self.num_sets, num_ways
        self._tags = [-1] * (num_sets * W)
        self._sharers = [0] * (num_sets * W)
        self._valid = [0] * num_sets
        self._dirty = [0] * num_sets
        self._prefetched = [0] * num_sets
        self._touched_pf = [0] * num_sets
        self._lookup = [dict() for _ in range(num_sets)]

        if self._is_lru:
            # Stamp ordering replicates TrueLru's initial recency list
            # [0, 1, ..., W-1] (way 0 most recent): higher stamp = more
            # recent, stamps stay unique so victim choice is unambiguous.
            self._stamp = [0] * (num_sets * W)
            for s in range(num_sets):
                base = s * W
                for w in range(W):
                    self._stamp[base + w] = W - w
            self._clock = W + 1
        else:
            leaves = 1
            while leaves < W:
                leaves *= 2
            self._leaves = leaves
            self._plru = [0] * num_sets
            # The touch path through the tree is fixed per way: precompute
            # the bits it sets and clears so a touch is two bit ops.
            set_masks, clear_invs = [], []
            for way in range(W):
                node, lo, hi = 1, 0, leaves
                set_bits = clear_bits = 0
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if way < mid:
                        set_bits |= 1 << node  # point right, away from way
                        node, hi = 2 * node, mid
                    else:
                        clear_bits |= 1 << node  # point left
                        node, lo = 2 * node + 1, mid
                set_masks.append(set_bits)
                clear_invs.append(~clear_bits)
            self._plru_set = set_masks
            self._plru_clear_inv = clear_invs
            # Static victim-walk tables: per tree node, the way-bitmask of
            # its left and right subtrees (heap order, root at index 1;
            # leaf node n corresponds to way n - leaves).
            left_masks = [0] * (2 * leaves)
            right_masks = [0] * (2 * leaves)

            def build(node, lo, hi):
                if hi - lo <= 1:
                    return
                mid = (lo + hi) // 2
                left_masks[node] = (1 << mid) - (1 << lo)
                right_masks[node] = (1 << hi) - (1 << mid)
                build(2 * node, lo, mid)
                build(2 * node + 1, mid, hi)

            build(1, 0, leaves)
            self._plru_left = left_masks
            self._plru_right = right_masks

        if indexing == "mod":
            self._mod_mask = self.num_sets - 1
            self._index_memo = None
        else:
            self._mod_mask = -1
            self._index_memo = {}
        self.stats = CacheStats()

    # -- lookup ----------------------------------------------------------

    def set_index(self, line_number):
        if self._mod_mask >= 0:
            return line_number & self._mod_mask
        memo = self._index_memo
        idx = memo.get(line_number)
        if idx is None:
            idx = self._indexer.index(line_number)
            if len(memo) >= _INDEX_MEMO_CAP:
                memo.clear()
            memo[line_number] = idx
        return idx

    def find(self, line_number):
        """Return (set_index, way) if the line is present, else (set, None)."""
        set_idx = self.set_index(line_number)
        return set_idx, self._lookup[set_idx].get(line_number)

    def contains(self, line_number):
        set_idx = self.set_index(line_number)
        return line_number in self._lookup[set_idx]

    # -- access / fill / invalidate --------------------------------------

    def _touch(self, set_idx, way):
        if self._is_lru:
            self._stamp[set_idx * self.num_ways + way] = self._clock
            self._clock += 1
        else:
            self._plru[set_idx] = (
                self._plru[set_idx] | self._plru_set[way]
            ) & self._plru_clear_inv[way]

    def access(self, line_number, is_write=False, domain=0):
        """Probe for a line; returns True on hit (recency updated).

        The body inlines :meth:`set_index`, the recency touch, and
        ``CacheStats.record_access`` — this is the hottest path in the
        address-level engine. Counts are identical to the object model.
        """
        if self._mod_mask >= 0:
            set_idx = line_number & self._mod_mask
        else:
            memo = self._index_memo
            set_idx = memo.get(line_number)
            if set_idx is None:
                set_idx = self._indexer.index(line_number)
                if len(memo) >= _INDEX_MEMO_CAP:
                    memo.clear()
                memo[line_number] = set_idx
        way = self._lookup[set_idx].get(line_number)
        stats = self.stats
        stats.accesses += 1
        per_access = stats.per_domain_accesses
        per_access[domain] = per_access.get(domain, 0) + 1
        if way is None:
            stats.misses += 1
            per_miss = stats.per_domain_misses
            per_miss[domain] = per_miss.get(domain, 0) + 1
            return False
        stats.hits += 1
        if self._is_lru:
            self._stamp[set_idx * self.num_ways + way] = self._clock
            self._clock += 1
        else:
            plru = self._plru
            plru[set_idx] = (
                plru[set_idx] | self._plru_set[way]
            ) & self._plru_clear_inv[way]
        if is_write:
            self._dirty[set_idx] |= 1 << way
        prefetched = self._prefetched[set_idx]
        if prefetched:
            bit = 1 << way
            if prefetched & bit and not self._touched_pf[set_idx] & bit:
                self._touched_pf[set_idx] |= bit
                stats.prefetch_useful += 1
        return True

    def _victim(self, set_idx, candidates):
        """Replicate the object policies' victim choice (and errors)."""
        W = self.num_ways
        if self._is_lru:
            if candidates is not None and not candidates:
                raise ValidationError(
                    "victim selection requires at least one allowed way"
                )
            base = set_idx * W
            stamps = self._stamp
            best_way, best_stamp = None, None
            for w in range(W) if candidates is None else candidates:
                if 0 <= w < W:
                    stamp = stamps[base + w]
                    if best_stamp is None or stamp < best_stamp:
                        best_way, best_stamp = w, stamp
            if best_way is None:
                raise ValidationError("allowed ways are outside this set")
            return best_way
        if candidates is None:
            allowed_mask = self._full_mask
        else:
            allowed_mask = 0
            for w in candidates:
                if 0 <= w < W:
                    allowed_mask |= 1 << w
        if not allowed_mask:
            raise ValidationError("victim selection requires at least one allowed way")
        bits = self._plru[set_idx]
        leaves = self._leaves
        left_masks, right_masks = self._plru_left, self._plru_right
        node = 1
        while node < leaves:
            go_right = (bits >> node) & 1
            if go_right:
                if not allowed_mask & right_masks[node]:
                    go_right = 0
            elif not allowed_mask & left_masks[node]:
                go_right = 1
            node = 2 * node + 1 if go_right else 2 * node
        return node - leaves

    def fill(
        self,
        line_number,
        is_write=False,
        domain=0,
        allowed_ways=None,
        prefetch=False,
        sharer=None,
    ):
        """Insert a line, evicting if necessary (CacheLevel semantics)."""
        if self._mod_mask >= 0:
            set_idx = line_number & self._mod_mask
        else:
            memo = self._index_memo
            set_idx = memo.get(line_number)
            if set_idx is None:
                set_idx = self._indexer.index(line_number)
                if len(memo) >= _INDEX_MEMO_CAP:
                    memo.clear()
                memo[line_number] = set_idx
        lookup = self._lookup[set_idx]
        if line_number in lookup:
            return None  # racing fill (e.g. prefetch landed first)

        W = self.num_ways
        stats = self.stats
        valid = self._valid[set_idx]
        victim_way = None
        if allowed_ways is None:
            candidates = None
            if valid != self._full_mask:
                invalid = ~valid & self._full_mask
                victim_way = (invalid & -invalid).bit_length() - 1
        else:
            candidates = (
                allowed_ways
                if isinstance(allowed_ways, (list, tuple))
                else list(allowed_ways)
            )
            for w in candidates:
                if 0 <= w < W and not (valid >> w) & 1:
                    victim_way = w
                    break

        evicted = None
        if victim_way is None:
            victim_way = self._victim(set_idx, candidates)
            base = set_idx * W + victim_way
            bit = 1 << victim_way
            was_dirty = bool(self._dirty[set_idx] & bit)
            old_tag = self._tags[base]
            evicted = CacheLine(
                tag=old_tag,
                valid=True,
                dirty=was_dirty,
                sharers=self._sharers[base],
            )
            stats.evictions += 1
            if was_dirty:
                stats.writebacks += 1
            del lookup[old_tag]
        else:
            base = set_idx * W + victim_way
            bit = 1 << victim_way

        self._tags[base] = line_number
        self._valid[set_idx] = valid | bit
        if is_write:
            self._dirty[set_idx] |= bit
        else:
            self._dirty[set_idx] &= ~bit
        self._sharers[base] = (1 << sharer) if sharer is not None else 0
        if prefetch:
            self._prefetched[set_idx] |= bit
            stats.prefetch_fills += 1
        else:
            self._prefetched[set_idx] &= ~bit
        self._touched_pf[set_idx] &= ~bit
        lookup[line_number] = victim_way
        stats.fills += 1
        if self._is_lru:
            self._stamp[base] = self._clock
            self._clock += 1
        else:
            plru = self._plru
            plru[set_idx] = (
                plru[set_idx] | self._plru_set[victim_way]
            ) & self._plru_clear_inv[victim_way]
        return evicted

    def add_sharer(self, line_number, core):
        set_idx, way = self.find(line_number)
        if way is not None:
            self._sharers[set_idx * self.num_ways + way] |= 1 << core

    def sharers_of(self, line_number):
        set_idx, way = self.find(line_number)
        if way is None:
            return 0
        return self._sharers[set_idx * self.num_ways + way]

    def mark_dirty(self, line_number):
        """Mark a resident line dirty (inner-level writeback landing here)."""
        set_idx, way = self.find(line_number)
        if way is None:
            return False
        self._dirty[set_idx] |= 1 << way
        return True

    def invalidate(self, line_number):
        """Drop a line if present; returns True if it was dirty."""
        set_idx = self.set_index(line_number)
        way = self._lookup[set_idx].pop(line_number, None)
        if way is None:
            return False
        bit = 1 << way
        was_dirty = bool(self._dirty[set_idx] & bit)
        self._valid[set_idx] &= ~bit
        self._dirty[set_idx] &= ~bit
        self._prefetched[set_idx] &= ~bit
        self._touched_pf[set_idx] &= ~bit
        base = set_idx * self.num_ways + way
        self._tags[base] = -1
        self._sharers[base] = 0
        self.stats.back_invalidations += 1
        return was_dirty

    # -- introspection -----------------------------------------------------

    def occupancy(self):
        """Number of valid lines currently held."""
        return sum(len(lookup) for lookup in self._lookup)

    def occupancy_by_way(self):
        """Valid-line count per way index (used by partitioning tests)."""
        counts = [0] * self.num_ways
        for valid in self._valid:
            while valid:
                low = valid & -valid
                counts[low.bit_length() - 1] += 1
                valid ^= low
        return counts

    def resident_lines(self):
        """Set of line numbers currently cached (for inclusion checks)."""
        resident = set()
        for lookup in self._lookup:
            resident.update(lookup)
        return resident


def build_fused_walk(hierarchy, core):
    """One prefetchers-off L1 -> L2 -> LLC access walk as a single closure.

    Fuses the per-level probe, fill, recency, and stats updates of
    :meth:`repro.cache.hierarchy.CacheHierarchy.access_fast` into one
    function over the three levels' flat state for ``core``: no per-level
    method dispatch, no ``CacheLine`` construction for evictions, and no
    re-indexing between a probe and the fill that follows it. State and
    stats transitions are bit-identical to the generic walk; the rare
    paths (dirty L1 victim missing from L2, dirty L2 victim writeback)
    fall back to the shared helpers.

    Returns ``None`` when the hierarchy's levels are not all kernel-backed
    or not in the expected LRU/PLRU/PLRU arrangement, in which case the
    caller keeps the generic path.
    """
    l1 = hierarchy.l1[core]
    l2 = hierarchy.l2[core]
    llc_part = hierarchy.llc
    llc = llc_part.storage
    levels = (l1, l2, llc)
    if not all(isinstance(lvl, KernelCacheLevel) for lvl in levels):
        return None
    if not l1._is_lru or l2._is_lru or llc._is_lru:
        return None
    if l1._mod_mask < 0 or l2._mod_mask < 0:
        return None

    h = hierarchy
    num_cores = h.num_cores
    core_bit = 1 << core
    scratch = h._scratch
    l1_objs = list(h.l1)
    l2_objs = list(h.l2)
    inner_l1_lookup = [lvl._lookup for lvl in l1_objs]
    inner_l2_lookup = [lvl._lookup for lvl in l2_objs]

    # L1: true LRU, modulo indexing.
    l1_mod = l1._mod_mask
    l1_W = l1.num_ways
    l1_full = l1._full_mask
    l1_lookup, l1_tags, l1_sharers = l1._lookup, l1._tags, l1._sharers
    l1_valid, l1_dirty = l1._valid, l1._dirty
    l1_pref, l1_tpf = l1._prefetched, l1._touched_pf
    l1_stamp = l1._stamp
    l1_stats = l1.stats
    l1_pa = l1_stats.per_domain_accesses
    l1_pm = l1_stats.per_domain_misses

    # L2: tree PLRU, modulo indexing.
    l2_mod = l2._mod_mask
    l2_W = l2.num_ways
    l2_full = l2._full_mask
    l2_leaves = l2._leaves
    l2_lookup, l2_tags, l2_sharers = l2._lookup, l2._tags, l2._sharers
    l2_valid, l2_dirty = l2._valid, l2._dirty
    l2_pref, l2_tpf = l2._prefetched, l2._touched_pf
    l2_plru = l2._plru
    l2_pset, l2_pclr = l2._plru_set, l2._plru_clear_inv
    l2_left, l2_right = l2._plru_left, l2._plru_right
    l2_stats = l2.stats
    l2_pa = l2_stats.per_domain_accesses
    l2_pm = l2_stats.per_domain_misses

    # LLC: tree PLRU, modulo or hashed indexing, way-masked fills.
    llc_mod = llc._mod_mask
    llc_memo = llc._index_memo
    llc_index = llc._indexer.index
    llc_W = llc.num_ways
    llc_leaves = llc._leaves
    llc_lookup, llc_tags, llc_sharers = llc._lookup, llc._tags, llc._sharers
    llc_valid, llc_dirty = llc._valid, llc._dirty
    llc_pref, llc_tpf = llc._prefetched, llc._touched_pf
    llc_plru = llc._plru
    llc_pset, llc_pclr = llc._plru_set, llc._plru_clear_inv
    llc_left, llc_right = llc._plru_left, llc._plru_right
    llc_stats = llc.stats
    llc_pa = llc_stats.per_domain_accesses
    llc_pm = llc_stats.per_domain_misses
    llc_mark_dirty = llc.mark_dirty
    mask_ways = llc_part._mask_ways  # mutated in place by set_mask
    mask_bits = llc_part._mask_bits

    def walk(line, is_write):
        # ---- L1 probe (LRU, modulo) -------------------------------------
        s1 = line & l1_mod
        way = l1_lookup[s1].get(line)
        l1_stats.accesses += 1
        l1_pa[core] = l1_pa.get(core, 0) + 1
        if way is not None:
            l1_stats.hits += 1
            l1_stamp[s1 * l1_W + way] = l1._clock
            l1._clock += 1
            if is_write:
                l1_dirty[s1] |= 1 << way
            pf = l1_pref[s1]
            if pf:
                bit = 1 << way
                if pf & bit and not l1_tpf[s1] & bit:
                    l1_tpf[s1] |= bit
                    l1_stats.prefetch_useful += 1
            return "L1", 4
        l1_stats.misses += 1
        l1_pm[core] = l1_pm.get(core, 0) + 1

        # ---- L2 probe (PLRU, modulo) ------------------------------------
        s2 = line & l2_mod
        look2 = l2_lookup[s2]
        way = look2.get(line)
        l2_stats.accesses += 1
        l2_pa[core] = l2_pa.get(core, 0) + 1
        if way is not None:
            l2_stats.hits += 1
            l2_plru[s2] = (l2_plru[s2] | l2_pset[way]) & l2_pclr[way]
            if is_write:
                l2_dirty[s2] |= 1 << way
            pf = l2_pref[s2]
            if pf:
                bit = 1 << way
                if pf & bit and not l2_tpf[s2] & bit:
                    l2_tpf[s2] |= bit
                    l2_stats.prefetch_useful += 1
            level = "L2"
            latency = 12
        else:
            l2_stats.misses += 1
            l2_pm[core] = l2_pm.get(core, 0) + 1

            # ---- LLC probe ----------------------------------------------
            prof = h.llc_profiler
            if prof is not None:
                prof.observe(line, core)
            if llc_mod >= 0:
                s3 = line & llc_mod
            else:
                s3 = llc_memo.get(line)
                if s3 is None:
                    s3 = llc_index(line)
                    if len(llc_memo) >= _INDEX_MEMO_CAP:
                        llc_memo.clear()
                    llc_memo[line] = s3
            look3 = llc_lookup[s3]
            way = look3.get(line)
            llc_stats.accesses += 1
            llc_pa[core] = llc_pa.get(core, 0) + 1
            if way is not None:
                llc_stats.hits += 1
                llc_plru[s3] = (llc_plru[s3] | llc_pset[way]) & llc_pclr[way]
                if is_write:
                    llc_dirty[s3] |= 1 << way
                pf = llc_pref[s3]
                if pf:
                    bit = 1 << way
                    if pf & bit and not llc_tpf[s3] & bit:
                        llc_tpf[s3] |= bit
                        llc_stats.prefetch_useful += 1
                llc_sharers[s3 * llc_W + way] |= core_bit  # add_sharer
                level = "LLC"
                latency = 30
            else:
                llc_stats.misses += 1
                llc_pm[core] = llc_pm.get(core, 0) + 1

                # ---- LLC fill (way-masked victim, inclusion) ------------
                mbits = mask_bits[core]
                valid3 = llc_valid[s3]
                victim = None
                if valid3 & mbits != mbits:
                    for w in mask_ways[core]:
                        if not (valid3 >> w) & 1:
                            victim = w
                            break
                if victim is None:
                    bits = llc_plru[s3]
                    node = 1
                    while node < llc_leaves:
                        go_right = (bits >> node) & 1
                        if go_right:
                            if not mbits & llc_right[node]:
                                go_right = 0
                        elif not mbits & llc_left[node]:
                            go_right = 1
                        node = 2 * node + 1 if go_right else 2 * node
                    victim = node - llc_leaves
                    base = s3 * llc_W + victim
                    vbit = 1 << victim
                    old_tag = llc_tags[base]
                    old_sharers = llc_sharers[base]
                    llc_stats.evictions += 1
                    if llc_dirty[s3] & vbit:
                        llc_stats.writebacks += 1
                    del look3[old_tag]
                    # Inclusion: the victim leaves every inner cache.
                    for c in range(num_cores):
                        if old_sharers and not (old_sharers >> c) & 1:
                            continue
                        if old_tag in inner_l1_lookup[c][old_tag & l1_mod]:
                            l1_objs[c].invalidate(old_tag)
                        if old_tag in inner_l2_lookup[c][old_tag & l2_mod]:
                            l2_objs[c].invalidate(old_tag)
                else:
                    base = s3 * llc_W + victim
                    vbit = 1 << victim
                llc_tags[base] = line
                llc_valid[s3] = valid3 | vbit
                if is_write:
                    llc_dirty[s3] |= vbit
                else:
                    llc_dirty[s3] &= ~vbit
                llc_sharers[base] = core_bit
                llc_pref[s3] &= ~vbit
                llc_tpf[s3] &= ~vbit
                look3[line] = victim
                llc_stats.fills += 1
                llc_plru[s3] = (llc_plru[s3] | llc_pset[victim]) & llc_pclr[victim]
                level = "MEM"
                latency = 200

            # ---- L2 fill (demand fills land clean) ----------------------
            valid2 = l2_valid[s2]
            if valid2 != l2_full:
                inv = ~valid2 & l2_full
                victim = (inv & -inv).bit_length() - 1
                base = s2 * l2_W + victim
                vbit = 1 << victim
            else:
                bits = l2_plru[s2]
                node = 1
                while node < l2_leaves:
                    go_right = (bits >> node) & 1
                    if go_right:
                        if not l2_full & l2_right[node]:
                            go_right = 0
                    elif not l2_full & l2_left[node]:
                        go_right = 1
                    node = 2 * node + 1 if go_right else 2 * node
                victim = node - l2_leaves
                base = s2 * l2_W + victim
                vbit = 1 << victim
                old_tag = l2_tags[base]
                l2_stats.evictions += 1
                if l2_dirty[s2] & vbit:
                    l2_stats.writebacks += 1
                    # Inclusive LLC normally still holds the line.
                    llc_mark_dirty(old_tag)
                del look2[old_tag]
            l2_tags[base] = line
            l2_valid[s2] = valid2 | vbit
            l2_dirty[s2] &= ~vbit
            l2_sharers[base] = 0
            l2_pref[s2] &= ~vbit
            l2_tpf[s2] &= ~vbit
            look2[line] = victim
            l2_stats.fills += 1
            l2_plru[s2] = (l2_plru[s2] | l2_pset[victim]) & l2_pclr[victim]

        # ---- L1 fill ----------------------------------------------------
        look1 = l1_lookup[s1]
        valid1 = l1_valid[s1]
        if valid1 != l1_full:
            inv = ~valid1 & l1_full
            victim = (inv & -inv).bit_length() - 1
            base = s1 * l1_W + victim
            vbit = 1 << victim
        else:
            base = s1 * l1_W
            victim = 0
            best = l1_stamp[base]
            for w in range(1, l1_W):
                stamp = l1_stamp[base + w]
                if stamp < best:
                    best = stamp
                    victim = w
            base += victim
            vbit = 1 << victim
            old_tag = l1_tags[base]
            l1_stats.evictions += 1
            if l1_dirty[s1] & vbit:
                l1_stats.writebacks += 1
                # Non-inclusive L2: a dirty L1 victim lands in (or
                # updates) L2; fall back to the shared helper on a miss.
                s2v = old_tag & l2_mod
                way2 = l2_lookup[s2v].get(old_tag)
                if way2 is not None:
                    l2_dirty[s2v] |= 1 << way2
                else:
                    h._fill_l2(core, old_tag, scratch, dirty=True)
            del look1[old_tag]
        l1_tags[base] = line
        l1_valid[s1] = valid1 | vbit
        if is_write:
            l1_dirty[s1] |= vbit
        else:
            l1_dirty[s1] &= ~vbit
        l1_sharers[base] = 0
        l1_pref[s1] &= ~vbit
        l1_tpf[s1] &= ~vbit
        look1[line] = victim
        l1_stats.fills += 1
        l1_stamp[base] = l1._clock
        l1._clock += 1
        return level, latency

    return walk


def make_cache_level(
    backend,
    name,
    capacity_bytes,
    num_ways,
    line_size=64,
    replacement="lru",
    indexing="mod",
):
    """Construct a cache level for the chosen backend.

    ``object`` is the reference model, ``kernel`` the flat-array kernel,
    and ``seed`` the object model with its tag index disabled — the exact
    pre-optimization code path, kept for benchmarking against.
    """
    if backend == "kernel":
        return KernelCacheLevel(
            name, capacity_bytes, num_ways, line_size, replacement, indexing
        )
    if backend in ("object", "seed"):
        return CacheLevel(
            name,
            capacity_bytes,
            num_ways,
            line_size,
            replacement,
            indexing,
            tag_index=backend == "object",
        )
    raise ConfigurationError(
        f"unknown cache backend {backend!r}; pick one of {BACKENDS}"
    )
