"""Flat-array set-associative simulation kernel.

:class:`KernelCacheLevel` is a drop-in replacement for
:class:`repro.cache.cache.CacheLevel` that keeps tag, state, and recency
information in flat contiguous buffers instead of nested ``CacheLine``
objects:

- presence is one per-set ``tag -> way`` dict probe instead of a linear
  way scan;
- valid/dirty/prefetched flags are per-set bitmasks, sharers and tags
  are flat integer arrays;
- true-LRU recency is a monotonically increasing touch stamp (victim =
  minimum stamp among allowed ways, exactly the tail of the recency
  list);
- tree-PLRU touches collapse to two precomputed bit masks per way
  (the touch path through the tree is fixed per way), and the victim
  walk tests subtree membership with range bitmasks;
- hashed set indices are memoized (the XOR fold is the only per-access
  loop left otherwise).

The kernel is bit-identical to the object model — same hits, same victim
choices, same evictions and stats — for LRU and PLRU, modulo and hashed
indexing, with and without way masks. ``tests/cache/test_kernel.py``
holds the two backends to exact agreement step by step.
"""

from repro.cache.block import CacheLine
from repro.cache.cache import CacheLevel, _INDEXING
from repro.cache.stats import CacheStats
from repro.util.errors import ConfigurationError, ValidationError

BACKENDS = ("object", "seed", "kernel")

_INDEX_MEMO_CAP = 1 << 20  # bound the hashed-index memo on huge footprints


class KernelCacheLevel:
    """One cache level backed by flat arrays (see module docstring)."""

    def __init__(
        self,
        name,
        capacity_bytes,
        num_ways,
        line_size=64,
        replacement="lru",
        indexing="mod",
    ):
        if capacity_bytes % (num_ways * line_size):
            raise ConfigurationError(
                f"{name}: capacity {capacity_bytes} not divisible by "
                f"{num_ways} ways x {line_size}B lines"
            )
        if replacement not in ("lru", "plru"):
            raise ConfigurationError(f"unknown replacement policy {replacement!r}")
        if indexing not in _INDEXING:
            raise ConfigurationError(f"unknown indexing scheme {indexing!r}")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.num_ways = num_ways
        self.line_size = line_size
        self.num_sets = capacity_bytes // (num_ways * line_size)
        self._indexer = _INDEXING[indexing](self.num_sets)
        self._is_lru = replacement == "lru"
        self._full_mask = (1 << num_ways) - 1

        num_sets, W = self.num_sets, num_ways
        self._tags = [-1] * (num_sets * W)
        self._sharers = [0] * (num_sets * W)
        self._valid = [0] * num_sets
        self._dirty = [0] * num_sets
        self._prefetched = [0] * num_sets
        self._touched_pf = [0] * num_sets
        self._lookup = [dict() for _ in range(num_sets)]

        if self._is_lru:
            # Stamp ordering replicates TrueLru's initial recency list
            # [0, 1, ..., W-1] (way 0 most recent): higher stamp = more
            # recent, stamps stay unique so victim choice is unambiguous.
            self._stamp = [0] * (num_sets * W)
            for s in range(num_sets):
                base = s * W
                for w in range(W):
                    self._stamp[base + w] = W - w
            self._clock = W + 1
        else:
            leaves = 1
            while leaves < W:
                leaves *= 2
            self._leaves = leaves
            self._plru = [0] * num_sets
            # The touch path through the tree is fixed per way: precompute
            # the bits it sets and clears so a touch is two bit ops.
            set_masks, clear_invs = [], []
            for way in range(W):
                node, lo, hi = 1, 0, leaves
                set_bits = clear_bits = 0
                while hi - lo > 1:
                    mid = (lo + hi) // 2
                    if way < mid:
                        set_bits |= 1 << node  # point right, away from way
                        node, hi = 2 * node, mid
                    else:
                        clear_bits |= 1 << node  # point left
                        node, lo = 2 * node + 1, mid
                set_masks.append(set_bits)
                clear_invs.append(~clear_bits)
            self._plru_set = set_masks
            self._plru_clear_inv = clear_invs
            # Static victim-walk tables: per tree node, the way-bitmask of
            # its left and right subtrees (heap order, root at index 1;
            # leaf node n corresponds to way n - leaves).
            left_masks = [0] * (2 * leaves)
            right_masks = [0] * (2 * leaves)

            def build(node, lo, hi):
                if hi - lo <= 1:
                    return
                mid = (lo + hi) // 2
                left_masks[node] = (1 << mid) - (1 << lo)
                right_masks[node] = (1 << hi) - (1 << mid)
                build(2 * node, lo, mid)
                build(2 * node + 1, mid, hi)

            build(1, 0, leaves)
            self._plru_left = left_masks
            self._plru_right = right_masks

        if indexing == "mod":
            self._mod_mask = self.num_sets - 1
            self._index_memo = None
        else:
            self._mod_mask = -1
            self._index_memo = {}
        self.stats = CacheStats()

    # -- lookup ----------------------------------------------------------

    def set_index(self, line_number):
        if self._mod_mask >= 0:
            return line_number & self._mod_mask
        memo = self._index_memo
        idx = memo.get(line_number)
        if idx is None:
            idx = self._indexer.index(line_number)
            if len(memo) >= _INDEX_MEMO_CAP:
                memo.clear()
            memo[line_number] = idx
        return idx

    def find(self, line_number):
        """Return (set_index, way) if the line is present, else (set, None)."""
        set_idx = self.set_index(line_number)
        return set_idx, self._lookup[set_idx].get(line_number)

    def contains(self, line_number):
        set_idx = self.set_index(line_number)
        return line_number in self._lookup[set_idx]

    # -- access / fill / invalidate --------------------------------------

    def _touch(self, set_idx, way):
        if self._is_lru:
            self._stamp[set_idx * self.num_ways + way] = self._clock
            self._clock += 1
        else:
            self._plru[set_idx] = (
                self._plru[set_idx] | self._plru_set[way]
            ) & self._plru_clear_inv[way]

    def access(self, line_number, is_write=False, domain=0):
        """Probe for a line; returns True on hit (recency updated).

        The body inlines :meth:`set_index`, the recency touch, and
        ``CacheStats.record_access`` — this is the hottest path in the
        address-level engine. Counts are identical to the object model.
        """
        if self._mod_mask >= 0:
            set_idx = line_number & self._mod_mask
        else:
            memo = self._index_memo
            set_idx = memo.get(line_number)
            if set_idx is None:
                set_idx = self._indexer.index(line_number)
                if len(memo) >= _INDEX_MEMO_CAP:
                    memo.clear()
                memo[line_number] = set_idx
        way = self._lookup[set_idx].get(line_number)
        stats = self.stats
        stats.accesses += 1
        per_access = stats.per_domain_accesses
        per_access[domain] = per_access.get(domain, 0) + 1
        if way is None:
            stats.misses += 1
            per_miss = stats.per_domain_misses
            per_miss[domain] = per_miss.get(domain, 0) + 1
            return False
        stats.hits += 1
        if self._is_lru:
            self._stamp[set_idx * self.num_ways + way] = self._clock
            self._clock += 1
        else:
            plru = self._plru
            plru[set_idx] = (
                plru[set_idx] | self._plru_set[way]
            ) & self._plru_clear_inv[way]
        if is_write:
            self._dirty[set_idx] |= 1 << way
        prefetched = self._prefetched[set_idx]
        if prefetched:
            bit = 1 << way
            if prefetched & bit and not self._touched_pf[set_idx] & bit:
                self._touched_pf[set_idx] |= bit
                stats.prefetch_useful += 1
        return True

    def _victim(self, set_idx, candidates):
        """Replicate the object policies' victim choice (and errors)."""
        W = self.num_ways
        if self._is_lru:
            if candidates is not None and not candidates:
                raise ValidationError(
                    "victim selection requires at least one allowed way"
                )
            base = set_idx * W
            stamps = self._stamp
            best_way, best_stamp = None, None
            for w in range(W) if candidates is None else candidates:
                if 0 <= w < W:
                    stamp = stamps[base + w]
                    if best_stamp is None or stamp < best_stamp:
                        best_way, best_stamp = w, stamp
            if best_way is None:
                raise ValidationError("allowed ways are outside this set")
            return best_way
        if candidates is None:
            allowed_mask = self._full_mask
        else:
            allowed_mask = 0
            for w in candidates:
                if 0 <= w < W:
                    allowed_mask |= 1 << w
        if not allowed_mask:
            raise ValidationError("victim selection requires at least one allowed way")
        bits = self._plru[set_idx]
        leaves = self._leaves
        left_masks, right_masks = self._plru_left, self._plru_right
        node = 1
        while node < leaves:
            go_right = (bits >> node) & 1
            if go_right:
                if not allowed_mask & right_masks[node]:
                    go_right = 0
            elif not allowed_mask & left_masks[node]:
                go_right = 1
            node = 2 * node + 1 if go_right else 2 * node
        return node - leaves

    def fill(
        self,
        line_number,
        is_write=False,
        domain=0,
        allowed_ways=None,
        prefetch=False,
        sharer=None,
    ):
        """Insert a line, evicting if necessary (CacheLevel semantics)."""
        if self._mod_mask >= 0:
            set_idx = line_number & self._mod_mask
        else:
            memo = self._index_memo
            set_idx = memo.get(line_number)
            if set_idx is None:
                set_idx = self._indexer.index(line_number)
                if len(memo) >= _INDEX_MEMO_CAP:
                    memo.clear()
                memo[line_number] = set_idx
        lookup = self._lookup[set_idx]
        if line_number in lookup:
            return None  # racing fill (e.g. prefetch landed first)

        W = self.num_ways
        stats = self.stats
        valid = self._valid[set_idx]
        victim_way = None
        if allowed_ways is None:
            candidates = None
            if valid != self._full_mask:
                invalid = ~valid & self._full_mask
                victim_way = (invalid & -invalid).bit_length() - 1
        else:
            candidates = (
                allowed_ways
                if isinstance(allowed_ways, (list, tuple))
                else list(allowed_ways)
            )
            for w in candidates:
                if 0 <= w < W and not (valid >> w) & 1:
                    victim_way = w
                    break

        evicted = None
        if victim_way is None:
            victim_way = self._victim(set_idx, candidates)
            base = set_idx * W + victim_way
            bit = 1 << victim_way
            was_dirty = bool(self._dirty[set_idx] & bit)
            old_tag = self._tags[base]
            evicted = CacheLine(
                tag=old_tag,
                valid=True,
                dirty=was_dirty,
                sharers=self._sharers[base],
            )
            stats.evictions += 1
            if was_dirty:
                stats.writebacks += 1
            del lookup[old_tag]
        else:
            base = set_idx * W + victim_way
            bit = 1 << victim_way

        self._tags[base] = line_number
        self._valid[set_idx] = valid | bit
        if is_write:
            self._dirty[set_idx] |= bit
        else:
            self._dirty[set_idx] &= ~bit
        self._sharers[base] = (1 << sharer) if sharer is not None else 0
        if prefetch:
            self._prefetched[set_idx] |= bit
            stats.prefetch_fills += 1
        else:
            self._prefetched[set_idx] &= ~bit
        self._touched_pf[set_idx] &= ~bit
        lookup[line_number] = victim_way
        stats.fills += 1
        if self._is_lru:
            self._stamp[base] = self._clock
            self._clock += 1
        else:
            plru = self._plru
            plru[set_idx] = (
                plru[set_idx] | self._plru_set[victim_way]
            ) & self._plru_clear_inv[victim_way]
        return evicted

    def add_sharer(self, line_number, core):
        set_idx, way = self.find(line_number)
        if way is not None:
            self._sharers[set_idx * self.num_ways + way] |= 1 << core

    def sharers_of(self, line_number):
        set_idx, way = self.find(line_number)
        if way is None:
            return 0
        return self._sharers[set_idx * self.num_ways + way]

    def mark_dirty(self, line_number):
        """Mark a resident line dirty (inner-level writeback landing here)."""
        set_idx, way = self.find(line_number)
        if way is None:
            return False
        self._dirty[set_idx] |= 1 << way
        return True

    def invalidate(self, line_number):
        """Drop a line if present; returns True if it was dirty."""
        set_idx = self.set_index(line_number)
        way = self._lookup[set_idx].pop(line_number, None)
        if way is None:
            return False
        bit = 1 << way
        was_dirty = bool(self._dirty[set_idx] & bit)
        self._valid[set_idx] &= ~bit
        self._dirty[set_idx] &= ~bit
        self._prefetched[set_idx] &= ~bit
        self._touched_pf[set_idx] &= ~bit
        base = set_idx * self.num_ways + way
        self._tags[base] = -1
        self._sharers[base] = 0
        self.stats.back_invalidations += 1
        return was_dirty

    # -- introspection -----------------------------------------------------

    def occupancy(self):
        """Number of valid lines currently held."""
        return sum(len(lookup) for lookup in self._lookup)

    def occupancy_by_way(self):
        """Valid-line count per way index (used by partitioning tests)."""
        counts = [0] * self.num_ways
        for valid in self._valid:
            while valid:
                low = valid & -valid
                counts[low.bit_length() - 1] += 1
                valid ^= low
        return counts

    def resident_lines(self):
        """Set of line numbers currently cached (for inclusion checks)."""
        resident = set()
        for lookup in self._lookup:
            resident.update(lookup)
        return resident


def build_fused_walk(hierarchy, core):
    """One prefetchers-off L1 -> L2 -> LLC access walk as a single closure.

    Fuses the per-level probe, fill, recency, and stats updates of
    :meth:`repro.cache.hierarchy.CacheHierarchy.access_fast` into one
    function over the three levels' flat state for ``core``: no per-level
    method dispatch, no ``CacheLine`` construction for evictions, and no
    re-indexing between a probe and the fill that follows it. State and
    stats transitions are bit-identical to the generic walk; the rare
    paths (dirty L1 victim missing from L2, dirty L2 victim writeback)
    fall back to the shared helpers.

    Returns ``None`` when the hierarchy's levels are not all kernel-backed
    or not in the expected LRU/PLRU/PLRU arrangement, in which case the
    caller keeps the generic path.
    """
    l1 = hierarchy.l1[core]
    l2 = hierarchy.l2[core]
    llc_part = hierarchy.llc
    llc = llc_part.storage
    levels = (l1, l2, llc)
    if not all(isinstance(lvl, KernelCacheLevel) for lvl in levels):
        return None
    if not l1._is_lru or l2._is_lru or llc._is_lru:
        return None
    if l1._mod_mask < 0 or l2._mod_mask < 0:
        return None

    h = hierarchy
    num_cores = h.num_cores
    core_bit = 1 << core
    scratch = h._scratch
    l1_objs = list(h.l1)
    l2_objs = list(h.l2)
    inner_l1_lookup = [lvl._lookup for lvl in l1_objs]
    inner_l2_lookup = [lvl._lookup for lvl in l2_objs]

    # L1: true LRU, modulo indexing.
    l1_mod = l1._mod_mask
    l1_W = l1.num_ways
    l1_full = l1._full_mask
    l1_lookup, l1_tags, l1_sharers = l1._lookup, l1._tags, l1._sharers
    l1_valid, l1_dirty = l1._valid, l1._dirty
    l1_pref, l1_tpf = l1._prefetched, l1._touched_pf
    l1_stamp = l1._stamp
    l1_stats = l1.stats
    l1_pa = l1_stats.per_domain_accesses
    l1_pm = l1_stats.per_domain_misses

    # L2: tree PLRU, modulo indexing.
    l2_mod = l2._mod_mask
    l2_W = l2.num_ways
    l2_full = l2._full_mask
    l2_leaves = l2._leaves
    l2_lookup, l2_tags, l2_sharers = l2._lookup, l2._tags, l2._sharers
    l2_valid, l2_dirty = l2._valid, l2._dirty
    l2_pref, l2_tpf = l2._prefetched, l2._touched_pf
    l2_plru = l2._plru
    l2_pset, l2_pclr = l2._plru_set, l2._plru_clear_inv
    l2_left, l2_right = l2._plru_left, l2._plru_right
    l2_stats = l2.stats
    l2_pa = l2_stats.per_domain_accesses
    l2_pm = l2_stats.per_domain_misses

    # LLC: tree PLRU, modulo or hashed indexing, way-masked fills.
    llc_mod = llc._mod_mask
    llc_memo = llc._index_memo
    llc_index = llc._indexer.index
    llc_W = llc.num_ways
    llc_leaves = llc._leaves
    llc_lookup, llc_tags, llc_sharers = llc._lookup, llc._tags, llc._sharers
    llc_valid, llc_dirty = llc._valid, llc._dirty
    llc_pref, llc_tpf = llc._prefetched, llc._touched_pf
    llc_plru = llc._plru
    llc_pset, llc_pclr = llc._plru_set, llc._plru_clear_inv
    llc_left, llc_right = llc._plru_left, llc._plru_right
    llc_stats = llc.stats
    llc_pa = llc_stats.per_domain_accesses
    llc_pm = llc_stats.per_domain_misses
    llc_mark_dirty = llc.mark_dirty
    mask_ways = llc_part._mask_ways  # mutated in place by set_mask
    mask_bits = llc_part._mask_bits

    def walk(line, is_write):
        # ---- L1 probe (LRU, modulo) -------------------------------------
        s1 = line & l1_mod
        way = l1_lookup[s1].get(line)
        l1_stats.accesses += 1
        l1_pa[core] = l1_pa.get(core, 0) + 1
        if way is not None:
            l1_stats.hits += 1
            l1_stamp[s1 * l1_W + way] = l1._clock
            l1._clock += 1
            if is_write:
                l1_dirty[s1] |= 1 << way
            pf = l1_pref[s1]
            if pf:
                bit = 1 << way
                if pf & bit and not l1_tpf[s1] & bit:
                    l1_tpf[s1] |= bit
                    l1_stats.prefetch_useful += 1
            return "L1", 4
        l1_stats.misses += 1
        l1_pm[core] = l1_pm.get(core, 0) + 1

        # ---- L2 probe (PLRU, modulo) ------------------------------------
        s2 = line & l2_mod
        look2 = l2_lookup[s2]
        way = look2.get(line)
        l2_stats.accesses += 1
        l2_pa[core] = l2_pa.get(core, 0) + 1
        if way is not None:
            l2_stats.hits += 1
            l2_plru[s2] = (l2_plru[s2] | l2_pset[way]) & l2_pclr[way]
            if is_write:
                l2_dirty[s2] |= 1 << way
            pf = l2_pref[s2]
            if pf:
                bit = 1 << way
                if pf & bit and not l2_tpf[s2] & bit:
                    l2_tpf[s2] |= bit
                    l2_stats.prefetch_useful += 1
            level = "L2"
            latency = 12
        else:
            l2_stats.misses += 1
            l2_pm[core] = l2_pm.get(core, 0) + 1

            # ---- LLC probe ----------------------------------------------
            prof = h.llc_profiler
            if prof is not None:
                prof.observe(line, core)
            if llc_mod >= 0:
                s3 = line & llc_mod
            else:
                s3 = llc_memo.get(line)
                if s3 is None:
                    s3 = llc_index(line)
                    if len(llc_memo) >= _INDEX_MEMO_CAP:
                        llc_memo.clear()
                    llc_memo[line] = s3
            look3 = llc_lookup[s3]
            way = look3.get(line)
            llc_stats.accesses += 1
            llc_pa[core] = llc_pa.get(core, 0) + 1
            if way is not None:
                llc_stats.hits += 1
                llc_plru[s3] = (llc_plru[s3] | llc_pset[way]) & llc_pclr[way]
                if is_write:
                    llc_dirty[s3] |= 1 << way
                pf = llc_pref[s3]
                if pf:
                    bit = 1 << way
                    if pf & bit and not llc_tpf[s3] & bit:
                        llc_tpf[s3] |= bit
                        llc_stats.prefetch_useful += 1
                llc_sharers[s3 * llc_W + way] |= core_bit  # add_sharer
                level = "LLC"
                latency = 30
            else:
                llc_stats.misses += 1
                llc_pm[core] = llc_pm.get(core, 0) + 1

                # ---- LLC fill (way-masked victim, inclusion) ------------
                mbits = mask_bits[core]
                valid3 = llc_valid[s3]
                victim = None
                if valid3 & mbits != mbits:
                    for w in mask_ways[core]:
                        if not (valid3 >> w) & 1:
                            victim = w
                            break
                if victim is None:
                    bits = llc_plru[s3]
                    node = 1
                    while node < llc_leaves:
                        go_right = (bits >> node) & 1
                        if go_right:
                            if not mbits & llc_right[node]:
                                go_right = 0
                        elif not mbits & llc_left[node]:
                            go_right = 1
                        node = 2 * node + 1 if go_right else 2 * node
                    victim = node - llc_leaves
                    base = s3 * llc_W + victim
                    vbit = 1 << victim
                    old_tag = llc_tags[base]
                    old_sharers = llc_sharers[base]
                    llc_stats.evictions += 1
                    if llc_dirty[s3] & vbit:
                        llc_stats.writebacks += 1
                    del look3[old_tag]
                    # Inclusion: the victim leaves every inner cache.
                    for c in range(num_cores):
                        if old_sharers and not (old_sharers >> c) & 1:
                            continue
                        if old_tag in inner_l1_lookup[c][old_tag & l1_mod]:
                            l1_objs[c].invalidate(old_tag)
                        if old_tag in inner_l2_lookup[c][old_tag & l2_mod]:
                            l2_objs[c].invalidate(old_tag)
                else:
                    base = s3 * llc_W + victim
                    vbit = 1 << victim
                llc_tags[base] = line
                llc_valid[s3] = valid3 | vbit
                if is_write:
                    llc_dirty[s3] |= vbit
                else:
                    llc_dirty[s3] &= ~vbit
                llc_sharers[base] = core_bit
                llc_pref[s3] &= ~vbit
                llc_tpf[s3] &= ~vbit
                look3[line] = victim
                llc_stats.fills += 1
                llc_plru[s3] = (llc_plru[s3] | llc_pset[victim]) & llc_pclr[victim]
                level = "MEM"
                latency = 200

            # ---- L2 fill (demand fills land clean) ----------------------
            valid2 = l2_valid[s2]
            if valid2 != l2_full:
                inv = ~valid2 & l2_full
                victim = (inv & -inv).bit_length() - 1
                base = s2 * l2_W + victim
                vbit = 1 << victim
            else:
                bits = l2_plru[s2]
                node = 1
                while node < l2_leaves:
                    go_right = (bits >> node) & 1
                    if go_right:
                        if not l2_full & l2_right[node]:
                            go_right = 0
                    elif not l2_full & l2_left[node]:
                        go_right = 1
                    node = 2 * node + 1 if go_right else 2 * node
                victim = node - l2_leaves
                base = s2 * l2_W + victim
                vbit = 1 << victim
                old_tag = l2_tags[base]
                l2_stats.evictions += 1
                if l2_dirty[s2] & vbit:
                    l2_stats.writebacks += 1
                    # Inclusive LLC normally still holds the line.
                    llc_mark_dirty(old_tag)
                del look2[old_tag]
            l2_tags[base] = line
            l2_valid[s2] = valid2 | vbit
            l2_dirty[s2] &= ~vbit
            l2_sharers[base] = 0
            l2_pref[s2] &= ~vbit
            l2_tpf[s2] &= ~vbit
            look2[line] = victim
            l2_stats.fills += 1
            l2_plru[s2] = (l2_plru[s2] | l2_pset[victim]) & l2_pclr[victim]

        # ---- L1 fill ----------------------------------------------------
        look1 = l1_lookup[s1]
        valid1 = l1_valid[s1]
        if valid1 != l1_full:
            inv = ~valid1 & l1_full
            victim = (inv & -inv).bit_length() - 1
            base = s1 * l1_W + victim
            vbit = 1 << victim
        else:
            base = s1 * l1_W
            victim = 0
            best = l1_stamp[base]
            for w in range(1, l1_W):
                stamp = l1_stamp[base + w]
                if stamp < best:
                    best = stamp
                    victim = w
            base += victim
            vbit = 1 << victim
            old_tag = l1_tags[base]
            l1_stats.evictions += 1
            if l1_dirty[s1] & vbit:
                l1_stats.writebacks += 1
                # Non-inclusive L2: a dirty L1 victim lands in (or
                # updates) L2; fall back to the shared helper on a miss.
                s2v = old_tag & l2_mod
                way2 = l2_lookup[s2v].get(old_tag)
                if way2 is not None:
                    l2_dirty[s2v] |= 1 << way2
                else:
                    h._fill_l2(core, old_tag, scratch, dirty=True)
            del look1[old_tag]
        l1_tags[base] = line
        l1_valid[s1] = valid1 | vbit
        if is_write:
            l1_dirty[s1] |= vbit
        else:
            l1_dirty[s1] &= ~vbit
        l1_sharers[base] = 0
        l1_pref[s1] &= ~vbit
        l1_tpf[s1] &= ~vbit
        look1[line] = victim
        l1_stats.fills += 1
        l1_stamp[base] = l1._clock
        l1._clock += 1
        return level, latency

    return walk


def _plru_victim_table(leaves, allowed_mask, left_masks, right_masks):
    """victim way for every PLRU bits value under one allowed-way mask.

    The victim walk depends only on (bits, allowed_mask); tree bits live
    in nodes ``1..leaves-1`` so there are at most ``2**leaves`` states.
    """
    table = [0] * (1 << leaves)
    for bits in range(1 << leaves):
        node = 1
        while node < leaves:
            go_right = (bits >> node) & 1
            if go_right:
                if not allowed_mask & right_masks[node]:
                    go_right = 0
            elif not allowed_mask & left_masks[node]:
                go_right = 1
            node = 2 * node + 1 if go_right else 2 * node
        table[bits] = node - leaves
    return table


# 8-way true-LRU as a finite state machine: per-set recency is one of
# 8! = 40320 permutation states, touch and victim are table lookups.
# Built lazily once per process (~0.3 s) and shared by every lean walk.
_LRU8_TABLES = None


def _lru8_tables():
    global _LRU8_TABLES
    if _LRU8_TABLES is None:
        import itertools

        perms = list(itertools.permutations(range(8)))
        index = {p: i for i, p in enumerate(perms)}
        touch = [0] * (len(perms) * 8)
        fill = [0] * len(perms)
        for i, p in enumerate(perms):
            base = i * 8
            for w in range(8):
                if p[0] == w:
                    touch[base + w] = i
                else:
                    touch[base + w] = index[(w,) + tuple(x for x in p if x != w)]
            # Evict-and-fill in one lookup: victim way in the low bits,
            # the post-touch state above them.
            victim = p[-1]
            fill[i] = (touch[base + victim] << 3) | victim
        _LRU8_TABLES = (touch, fill, perms, index)
    return _LRU8_TABLES


def _plru_touch_table(num_ways, set_masks, clear_invs, leaves):
    """next tree state for every (bits, way): bits' = (bits | set) & clear."""
    table = [0] * ((1 << leaves) * num_ways)
    for bits in range(1 << leaves):
        base = bits * num_ways
        for way in range(num_ways):
            table[base + way] = (bits | set_masks[way]) & clear_invs[way]
    return table


def _pack_walk_supported(hierarchy, core):
    """Shared guards for both pack-walk variants (same as the fused walk)."""
    l1 = hierarchy.l1[core]
    l2 = hierarchy.l2[core]
    llc = hierarchy.llc.storage
    levels = (l1, l2, llc)
    if not all(isinstance(lvl, KernelCacheLevel) for lvl in levels):
        return False
    if not l1._is_lru or l2._is_lru or llc._is_lru:
        return False
    if l1._mod_mask < 0 or l2._mod_mask < 0:
        return False
    return True


def _lean_walk_eligible(hierarchy, core):
    """Invariants that let the lean walk drop dirty/prefetch/sharer ops.

    All-zero dirty, prefetch, and inner-sharer state stays all-zero under
    a read-only replay (nothing in the walk can set those bits), so the
    corresponding updates are provably no-ops and the lean walk omits
    them. The 8-way LRU FSM additionally needs W == 8 at L1.
    """
    l1 = hierarchy.l1[core]
    l2 = hierarchy.l2[core]
    llc = hierarchy.llc.storage
    if l1.num_ways != 8 or l2.num_ways != 8:
        return False
    for lvl in (l1, l2, llc):
        if any(lvl._dirty) or any(lvl._prefetched) or any(lvl._touched_pf):
            return False
    if any(l1._sharers) or any(l2._sharers):
        return False
    return True


def build_pack_walk(hierarchy, core, think_cycles=0, lean=False):
    """A fused walk specialized for compiled-pack replay.

    Same state transitions as :func:`build_fused_walk` (bit-identical
    caches and stats totals), restructured for the tightest per-access
    cost on long replays:

    - the LLC set index comes precomputed from the pack's geometry
      column (``walk(line, llc_set, ...)``) — no hashing on the hot path;
    - the walk returns the access's whole virtual-time delta
      (``latency + think_cycles``) as a closure constant and counts hit
      levels internally, so the scheduler loop is three ops per access;
    - level counters accumulate in closure-local integers and land in
      the :class:`CacheStats` objects on ``flush()`` (all stat mutations
      are commutative increments, so rare direct updates from fallback
      helpers and cross-core invalidations interleave safely);
    - PLRU victims and touches are table lookups (full tables for the
      8-way L2, a lazy per-mask memo for the way-masked LLC), and the
      partition mask is captured at build time (masks never change
      mid-run);
    - back-invalidation visits only the victim's sharer bits, with a
      fast path for the overwhelmingly common self-owned victim.

    With ``lean=True`` (read-only replay, see :func:`_lean_walk_eligible`)
    the walk also drops every dirty/prefetch/inner-sharer update and
    drives L1 recency through the 40320-state LRU permutation FSM; the
    signature narrows to ``walk(line, llc_set)``. Returns ``None`` when
    unsupported, else ``(walk, flush, report)`` where ``report()`` gives
    the ``(l1_hits, l2_hits, llc_hits, llc_misses)`` level counts and
    ``flush()`` must run when the replay ends (the engine uses a
    ``finally``).
    """
    if not _pack_walk_supported(hierarchy, core):
        return None
    if lean:
        if not _lean_walk_eligible(hierarchy, core):
            return None
        return _build_lean_pack_walk(hierarchy, core, think_cycles)
    return _build_general_pack_walk(hierarchy, core, think_cycles)


def _capture_llc(hierarchy, core):
    llc_part = hierarchy.llc
    llc = llc_part.storage
    return llc, llc_part._mask_bits[core], tuple(llc_part._mask_ways[core])


# Way-masked PLRU victims depend only on (tree geometry, mask, bits), so
# the lazy bits -> victim memo is shared process-wide per mask and stays
# warm across engine instances and repeated replays.
_LLC_VICTIM_MEMOS = {}


def _llc_victim_memo(leaves, num_ways, mask_bits):
    key = (leaves, num_ways, mask_bits)
    memo = _LLC_VICTIM_MEMOS.get(key)
    if memo is None:
        memo = _LLC_VICTIM_MEMOS[key] = {}
    return memo


# The pair loop memoizes the whole eviction outcome per PLRU state:
# bits -> (post-touch bits << 4) | victim, again shared per mask.
_LLC_FILL_MEMOS = {}


def _llc_fill_memo(leaves, num_ways, mask_bits):
    key = (leaves, num_ways, mask_bits)
    memo = _LLC_FILL_MEMOS.get(key)
    if memo is None:
        memo = _LLC_FILL_MEMOS[key] = {}
    return memo


# PLRU victim/touch/fill tables for the uniform 8-way inner levels are
# pure functions of the tree geometry; build them once per process.
_PLRU8_TABLES = {}


def _plru8_fill_tables(lvl):
    key = (lvl._leaves, lvl._full_mask)
    tables = _PLRU8_TABLES.get(key)
    if tables is None:
        victim_of = _plru_victim_table(
            lvl._leaves, lvl._full_mask, lvl._plru_left, lvl._plru_right
        )
        touch_of = _plru_touch_table(
            lvl.num_ways, lvl._plru_set, lvl._plru_clear_inv, lvl._leaves
        )
        fill_of = [
            (touch_of[(bits << 3) + v] << 3) | v
            for bits, v in enumerate(victim_of)
        ]
        tables = _PLRU8_TABLES[key] = (victim_of, touch_of, fill_of)
    return tables


def _flush_level_deltas(stats, hits, misses, evictions, writebacks, core):
    accesses = hits + misses
    if not accesses:
        return
    stats.accesses += accesses
    stats.hits += hits
    stats.misses += misses
    stats.fills += misses  # every walk-level miss fills the level
    stats.evictions += evictions
    stats.writebacks += writebacks
    pa = stats.per_domain_accesses
    pa[core] = pa.get(core, 0) + accesses
    if misses:
        pm = stats.per_domain_misses
        pm[core] = pm.get(core, 0) + misses


def _build_lean_pack_walk(hierarchy, core, think_cycles):
    l1 = hierarchy.l1[core]
    l2 = hierarchy.l2[core]
    llc, mbits, mask_ways_core = _capture_llc(hierarchy, core)

    h = hierarchy
    cores_range = range(h.num_cores)
    core_bit = 1 << core
    l1_objs = list(h.l1)
    l2_objs = list(h.l2)
    inner_l1_lookup = [lvl._lookup for lvl in l1_objs]
    inner_l2_lookup = [lvl._lookup for lvl in l2_objs]
    l1_inval = [lvl.invalidate for lvl in l1_objs]
    l2_inval = [lvl.invalidate for lvl in l2_objs]
    own_l1_inval = l1_inval[core]
    own_l2_inval = l2_inval[core]

    l1_mod = l1._mod_mask
    l1_full = l1._full_mask
    l1_lookup, l1_tags = l1._lookup, l1._tags
    l1_valid = l1._valid
    l1_stamp = l1._stamp
    l1_stats = l1.stats
    l1_touch, l1_fill_of, l1_perms, l1_perm_index = _lru8_tables()
    # Recency permutation per set, seeded from the stamp array (stamps
    # are unique per set; descending stamp = most recent first).
    l1_state = [0] * l1.num_sets
    for s in range(l1.num_sets):
        seg = l1_stamp[s << 3:(s << 3) + 8]
        order = sorted(range(8), key=seg.__getitem__, reverse=True)
        l1_state[s] = l1_perm_index[tuple(order)]

    l2_mod = l2._mod_mask
    l2_full = l2._full_mask
    l2_lookup, l2_tags = l2._lookup, l2._tags
    l2_valid = l2._valid
    l2_plru = l2._plru
    l2_stats = l2.stats
    _, l2_touch_of, l2_fill_of = _plru8_fill_tables(l2)

    llc_W = llc.num_ways
    llc_leaves = llc._leaves
    llc_lookup, llc_tags, llc_sharers = llc._lookup, llc._tags, llc._sharers
    llc_valid = llc._valid
    llc_plru = llc._plru
    llc_pset, llc_pclr = llc._plru_set, llc._plru_clear_inv
    llc_left, llc_right = llc._plru_left, llc._plru_right
    llc_stats = llc.stats
    llc_vmemo = _llc_victim_memo(llc._leaves, llc.num_ways, mbits)
    llc_vmemo_get = llc_vmemo.get

    prof = h.llc_profiler
    prof_observe = prof.observe if prof is not None else None

    lt0 = 4 + think_cycles
    lt1 = 12 + think_cycles
    lt2 = 30 + think_cycles
    lt3 = 200 + think_cycles

    h1 = h2 = h3 = m3 = ev1 = ev2 = ev3 = 0

    def walk(line, s3):
        nonlocal h1, h2, h3, m3, ev1, ev2, ev3
        # ---- L1 probe (LRU FSM, modulo) ---------------------------------
        s1 = line & l1_mod
        look1 = l1_lookup[s1]
        way = look1.get(line)
        if way is not None:
            h1 += 1
            l1_state[s1] = l1_touch[(l1_state[s1] << 3) + way]
            return lt0

        # ---- L2 probe (PLRU tables, modulo) -----------------------------
        s2 = line & l2_mod
        look2 = l2_lookup[s2]
        way = look2.get(line)
        if way is not None:
            h2 += 1
            l2_plru[s2] = l2_touch_of[(l2_plru[s2] << 3) + way]
            ret = lt1
        else:
            # ---- LLC probe (precomputed set index) ----------------------
            if prof_observe is not None:
                prof_observe(line, core)
            look3 = llc_lookup[s3]
            way = look3.get(line)
            if way is not None:
                h3 += 1
                llc_plru[s3] = (llc_plru[s3] | llc_pset[way]) & llc_pclr[way]
                llc_sharers[s3 * llc_W + way] |= core_bit  # add_sharer
                ret = lt2
            else:
                m3 += 1
                # ---- LLC fill (way-masked victim, inclusion) ------------
                valid3 = llc_valid[s3]
                inv = ~valid3 & mbits
                if inv:
                    # Mask way lists are ascending, so "first invalid in
                    # mask order" is the lowest set bit.
                    vbit = inv & -inv
                    victim = vbit.bit_length() - 1
                    llc_valid[s3] = valid3 | vbit
                    base = s3 * llc_W + victim
                else:
                    bits = llc_plru[s3]
                    victim = llc_vmemo_get(bits)
                    if victim is None:
                        node = 1
                        while node < llc_leaves:
                            go_right = (bits >> node) & 1
                            if go_right:
                                if not mbits & llc_right[node]:
                                    go_right = 0
                            elif not mbits & llc_left[node]:
                                go_right = 1
                            node = 2 * node + 1 if go_right else 2 * node
                        victim = node - llc_leaves
                        llc_vmemo[bits] = victim
                    base = s3 * llc_W + victim
                    old_tag = llc_tags[base]
                    old_sharers = llc_sharers[base]
                    ev3 += 1
                    del look3[old_tag]
                    # Inclusion: the victim leaves every inner cache.
                    if old_sharers == core_bit:
                        if old_tag in l1_lookup[old_tag & l1_mod]:
                            own_l1_inval(old_tag)
                        if old_tag in l2_lookup[old_tag & l2_mod]:
                            own_l2_inval(old_tag)
                    elif old_sharers:
                        sh = old_sharers
                        while sh:
                            low = sh & -sh
                            c = low.bit_length() - 1
                            sh ^= low
                            if old_tag in inner_l1_lookup[c][old_tag & l1_mod]:
                                l1_inval[c](old_tag)
                            if old_tag in inner_l2_lookup[c][old_tag & l2_mod]:
                                l2_inval[c](old_tag)
                    else:
                        for c in cores_range:
                            if old_tag in inner_l1_lookup[c][old_tag & l1_mod]:
                                l1_inval[c](old_tag)
                            if old_tag in inner_l2_lookup[c][old_tag & l2_mod]:
                                l2_inval[c](old_tag)
                llc_tags[base] = line
                llc_sharers[base] = core_bit
                look3[line] = victim
                llc_plru[s3] = (
                    llc_plru[s3] | llc_pset[victim]
                ) & llc_pclr[victim]
                ret = lt3

            # ---- L2 fill (demand fills land clean) ----------------------
            valid2 = l2_valid[s2]
            if valid2 == l2_full:
                packed = l2_fill_of[l2_plru[s2]]
                victim = packed & 7
                l2_plru[s2] = packed >> 3
                base = (s2 << 3) + victim
                ev2 += 1
                del look2[l2_tags[base]]
            else:
                vbit = ~valid2 & l2_full
                vbit &= -vbit
                victim = vbit.bit_length() - 1
                l2_valid[s2] = valid2 | vbit
                base = (s2 << 3) + victim
                l2_plru[s2] = l2_touch_of[(l2_plru[s2] << 3) + victim]
            l2_tags[base] = line
            look2[line] = victim

        # ---- L1 fill ----------------------------------------------------
        valid1 = l1_valid[s1]
        st = l1_state[s1]
        if valid1 == l1_full:
            packed = l1_fill_of[st]
            victim = packed & 7
            l1_state[s1] = packed >> 3
            base = (s1 << 3) + victim
            ev1 += 1
            del look1[l1_tags[base]]
        else:
            vbit = ~valid1 & l1_full
            vbit &= -vbit
            victim = vbit.bit_length() - 1
            l1_valid[s1] = valid1 | vbit
            base = (s1 << 3) + victim
            l1_state[s1] = l1_touch[(st << 3) + victim]
        l1_tags[base] = line
        look1[line] = victim
        return ret

    def flush():
        """Deposit counter deltas; materialize L1 stamps from the FSM."""
        nonlocal h1, h2, h3, m3, ev1, ev2, ev3
        m2 = h3 + m3
        m1 = h2 + m2
        _flush_level_deltas(l1_stats, h1, m1, ev1, 0, core)
        _flush_level_deltas(l2_stats, h2, m2, ev2, 0, core)
        _flush_level_deltas(llc_stats, h3, m3, ev3, 0, core)
        h1 = h2 = h3 = m3 = ev1 = ev2 = ev3 = 0
        # Rewrite the stamp array so object-path code (and the next walk
        # build) sees the same per-set recency order the FSM tracked.
        clock = l1._clock
        top = clock + 7
        for s in range(len(l1_state)):
            perm = l1_perms[l1_state[s]]
            base = s << 3
            for rank in range(8):
                l1_stamp[base + perm[rank]] = top - rank
        l1._clock = clock + 8

    def report():
        return h1, h2, h3, m3

    return walk, flush, report


def build_lean_pair_walk(hierarchy, cores, thinks):
    """Fused two-domain lean replay: scheduler and both walks in one frame.

    The per-walk lean closure still pays a Python call, closure-cell
    loads, and scheduler dispatch on every access. For the dominant
    two-workload co-run this builder fuses the ``(vtime, slot)``
    scheduler and both cores' lean walks into a single module-level
    loop (:func:`_lean_pair_loop`) whose entire working state — tables,
    arrays, counters, virtual times — lives in function locals, cutting
    the per-access interpreter overhead well below the closure path.
    State transitions are copied line-for-line from
    :func:`_build_lean_pack_walk`, so replays stay bit-identical.

    Returns ``None`` when any precondition fails (profiler attached,
    unsupported geometry, non-lean state), else ``(loop, finish)``:
    ``loop(lines0, sets0, lines1, sets1, n0, n1, rep0, rep1, total)``
    runs the whole replay and returns the raw counter tuple, and
    ``finish(result)`` deposits stat deltas, rewrites the L1 stamp
    arrays from the recency FSMs, and returns
    ``((per-core level counts), (vtime0, vtime1))``.
    """
    if hierarchy.llc_profiler is not None:
        return None
    for core in cores:
        if not _pack_walk_supported(hierarchy, core):
            return None
        if not _lean_walk_eligible(hierarchy, core):
            return None

    h = hierarchy
    llc = h.llc.storage
    l1_touch, l1_fill_of, l1_perms, l1_perm_index = _lru8_tables()
    _, l2_touch_of, l2_fill_of = _plru8_fill_tables(h.l2[cores[0]])
    inner_l1 = [lvl._lookup for lvl in h.l1]
    inner_l2 = [lvl._lookup for lvl in h.l2]
    l1_inval = [lvl.invalidate for lvl in h.l1]
    l2_inval = [lvl.invalidate for lvl in h.l2]
    shared = (
        llc._lookup, llc._tags, llc._sharers, llc._valid, llc._plru,
        llc._plru_set, llc._plru_clear_inv, llc._plru_left,
        llc._plru_right, llc._leaves, llc.num_ways,
        l1_touch, l1_fill_of, l2_touch_of, l2_fill_of,
        inner_l1, inner_l2, l1_inval, l2_inval, range(h.num_cores),
    )

    core_state = []
    l1_states = []
    for core, think in zip(cores, thinks):
        l1 = h.l1[core]
        l2 = h.l2[core]
        _, mbits, _ = _capture_llc(h, core)
        l1_stamp = l1._stamp
        l1_state = [0] * l1.num_sets
        for s in range(l1.num_sets):
            seg = l1_stamp[s << 3:(s << 3) + 8]
            order = sorted(range(8), key=seg.__getitem__, reverse=True)
            l1_state[s] = l1_perm_index[tuple(order)]
        l1_states.append(l1_state)
        core_state.append((
            4 + think, 12 + think, 30 + think, 200 + think,
            1 << core, mbits,
            _llc_fill_memo(llc._leaves, llc.num_ways, mbits),
            l1._mod_mask, l1._lookup, l1._tags, l1_state, l1._valid,
            l2._mod_mask, l2._lookup, l2._tags, l2._plru, l2._valid,
            l1.invalidate, l2.invalidate,
        ))

    def loop(lines0, sets0, lines1, sets1, n0, n1, rep0, rep1, total):
        return _lean_pair_loop(
            shared, core_state[0], core_state[1], lines0, sets0,
            lines1, sets1, n0, n1, rep0, rep1, total,
        )

    def finish(res):
        (t0, t1,
         h1a, h2a, h3a, m3a, e1a, e2a, e3a,
         h1b, h2b, h3b, m3b, e1b, e2b, e3b) = res
        llc_stats = llc.stats
        counts = ((h1a, h2a, h3a, m3a), (h1b, h2b, h3b, m3b))
        evs = ((e1a, e2a, e3a), (e1b, e2b, e3b))
        for i, core in enumerate(cores):
            h1, h2, h3, m3 = counts[i]
            e1, e2, e3 = evs[i]
            m2 = h3 + m3
            m1 = h2 + m2
            _flush_level_deltas(h.l1[core].stats, h1, m1, e1, 0, core)
            _flush_level_deltas(h.l2[core].stats, h2, m2, e2, 0, core)
            _flush_level_deltas(llc_stats, h3, m3, e3, 0, core)
            l1 = h.l1[core]
            l1_stamp = l1._stamp
            l1_state = l1_states[i]
            clock = l1._clock
            top = clock + 7
            for s in range(len(l1_state)):
                perm = l1_perms[l1_state[s]]
                base = s << 3
                for rank in range(8):
                    l1_stamp[base + perm[rank]] = top - rank
            l1._clock = clock + 8
        return counts, (t0, t1)

    return loop, finish


def _lean_pair_loop(shared, ca, cb, l0, s0, l1c, s1c, n0, n1, rep0, rep1,
                    total):
    """Whole-replay fused loop for two lean domains (see builder above).

    Everything the per-access code touches is a function local; the
    bodies for core A and core B are mechanical mirrors of each other
    and of the lean walk's transitions.
    """
    (llc_lookup, llc_tags, llc_sharers, llc_valid, llc_plru,
     llc_pset, llc_pclr, llc_left, llc_right, llc_leaves, llc_W,
     l1_touch, l1_fill_of, l2_touch_of, l2_fill_of,
     inner_l1, inner_l2, l1_inval, l2_inval, cores_range) = shared
    (lt0a, lt1a, lt2a, lt3a, cba, mba, vma,
     a1_mod, a1_lookup, a1_tags, a1_state, a1_valid,
     a2_mod, a2_lookup, a2_tags, a2_plru, a2_valid,
     a1_invown, a2_invown) = ca
    (lt0b, lt1b, lt2b, lt3b, cbb, mbb, vmb,
     b1_mod, b1_lookup, b1_tags, b1_state, b1_valid,
     b2_mod, b2_lookup, b2_tags, b2_plru, b2_valid,
     b1_invown, b2_invown) = cb
    vma_get = vma.get
    vmb_get = vmb.get

    h1a = h2a = h3a = m3a = e1a = e2a = e3a = 0
    h1b = h2b = h3b = m3b = e1b = e2b = e3b = 0
    t0 = t1 = 0
    i0 = i1 = 0
    base0 = base1 = 0
    live0 = n0 > 0
    live1 = n1 > 0
    issued = 0
    while issued < total and (live0 or live1):
        retired = False
        for _ in range(total - issued):
            if live0 and (not live1 or t0 <= t1):
                if i0 == n0:
                    if not rep0:
                        live0 = False
                        retired = True
                        break
                    i0 = 0
                    base0 += n0
                line = l0[i0]
                s3 = s0[i0]
                i0 += 1
                # ---- core A access (mirrors the lean walk) --------------
                s1 = line & a1_mod
                look1 = a1_lookup[s1]
                if line in look1:
                    h1a += 1
                    a1_state[s1] = l1_touch[
                        (a1_state[s1] << 3) + look1[line]
                    ]
                    t0 += lt0a
                    continue
                s2 = line & a2_mod
                look2 = a2_lookup[s2]
                if line in look2:
                    h2a += 1
                    a2_plru[s2] = l2_touch_of[
                        (a2_plru[s2] << 3) + look2[line]
                    ]
                    t0 += lt1a
                else:
                    look3 = llc_lookup[s3]
                    if line in look3:
                        way = look3[line]
                        h3a += 1
                        llc_plru[s3] = (
                            llc_plru[s3] | llc_pset[way]
                        ) & llc_pclr[way]
                        llc_sharers[s3 * llc_W + way] |= cba
                        t0 += lt2a
                    else:
                        m3a += 1
                        valid3 = llc_valid[s3]
                        inv = ~valid3 & mba
                        if inv:
                            vbit = inv & -inv
                            victim = vbit.bit_length() - 1
                            llc_valid[s3] = valid3 | vbit
                            base = s3 * llc_W + victim
                            llc_tags[base] = line
                            llc_sharers[base] = cba
                            look3[line] = victim
                            llc_plru[s3] = (
                                llc_plru[s3] | llc_pset[victim]
                            ) & llc_pclr[victim]
                        else:
                            bits = llc_plru[s3]
                            fill3 = vma_get(bits)
                            if fill3 is None:
                                node = 1
                                while node < llc_leaves:
                                    go_right = (bits >> node) & 1
                                    if go_right:
                                        if not mba & llc_right[node]:
                                            go_right = 0
                                    elif not mba & llc_left[node]:
                                        go_right = 1
                                    node = (
                                        2 * node + 1 if go_right else 2 * node
                                    )
                                victim = node - llc_leaves
                                fill3 = (
                                    ((bits | llc_pset[victim])
                                     & llc_pclr[victim]) << 4
                                ) | victim
                                vma[bits] = fill3
                            victim = fill3 & 15
                            base = s3 * llc_W + victim
                            old_tag = llc_tags[base]
                            old_sharers = llc_sharers[base]
                            e3a += 1
                            del look3[old_tag]
                            if old_sharers == cba:
                                if old_tag in a1_lookup[old_tag & a1_mod]:
                                    a1_invown(old_tag)
                                if old_tag in a2_lookup[old_tag & a2_mod]:
                                    a2_invown(old_tag)
                            elif old_sharers:
                                sh = old_sharers
                                while sh:
                                    low = sh & -sh
                                    c = low.bit_length() - 1
                                    sh ^= low
                                    if old_tag in inner_l1[c][
                                        old_tag & a1_mod
                                    ]:
                                        l1_inval[c](old_tag)
                                    if old_tag in inner_l2[c][
                                        old_tag & a2_mod
                                    ]:
                                        l2_inval[c](old_tag)
                            else:
                                for c in cores_range:
                                    if old_tag in inner_l1[c][
                                        old_tag & a1_mod
                                    ]:
                                        l1_inval[c](old_tag)
                                    if old_tag in inner_l2[c][
                                        old_tag & a2_mod
                                    ]:
                                        l2_inval[c](old_tag)
                            llc_tags[base] = line
                            llc_sharers[base] = cba
                            look3[line] = victim
                            llc_plru[s3] = fill3 >> 4
                        t0 += lt3a
                    valid2 = a2_valid[s2]
                    if valid2 == 255:
                        packed = l2_fill_of[a2_plru[s2]]
                        victim = packed & 7
                        a2_plru[s2] = packed >> 3
                        base = (s2 << 3) + victim
                        e2a += 1
                        del look2[a2_tags[base]]
                    else:
                        vbit = ~valid2 & 255
                        vbit &= -vbit
                        victim = vbit.bit_length() - 1
                        a2_valid[s2] = valid2 | vbit
                        base = (s2 << 3) + victim
                        a2_plru[s2] = l2_touch_of[
                            (a2_plru[s2] << 3) + victim
                        ]
                    a2_tags[base] = line
                    look2[line] = victim
                valid1 = a1_valid[s1]
                st = a1_state[s1]
                if valid1 == 255:
                    packed = l1_fill_of[st]
                    victim = packed & 7
                    a1_state[s1] = packed >> 3
                    base = (s1 << 3) + victim
                    e1a += 1
                    del look1[a1_tags[base]]
                else:
                    vbit = ~valid1 & 255
                    vbit &= -vbit
                    victim = vbit.bit_length() - 1
                    a1_valid[s1] = valid1 | vbit
                    base = (s1 << 3) + victim
                    a1_state[s1] = l1_touch[(st << 3) + victim]
                a1_tags[base] = line
                look1[line] = victim
            elif live1:
                if i1 == n1:
                    if not rep1:
                        live1 = False
                        retired = True
                        break
                    i1 = 0
                    base1 += n1
                line = l1c[i1]
                s3 = s1c[i1]
                i1 += 1
                # ---- core B access (mirror of core A) -------------------
                s1 = line & b1_mod
                look1 = b1_lookup[s1]
                if line in look1:
                    h1b += 1
                    b1_state[s1] = l1_touch[
                        (b1_state[s1] << 3) + look1[line]
                    ]
                    t1 += lt0b
                    continue
                s2 = line & b2_mod
                look2 = b2_lookup[s2]
                if line in look2:
                    h2b += 1
                    b2_plru[s2] = l2_touch_of[
                        (b2_plru[s2] << 3) + look2[line]
                    ]
                    t1 += lt1b
                else:
                    look3 = llc_lookup[s3]
                    if line in look3:
                        way = look3[line]
                        h3b += 1
                        llc_plru[s3] = (
                            llc_plru[s3] | llc_pset[way]
                        ) & llc_pclr[way]
                        llc_sharers[s3 * llc_W + way] |= cbb
                        t1 += lt2b
                    else:
                        m3b += 1
                        valid3 = llc_valid[s3]
                        inv = ~valid3 & mbb
                        if inv:
                            vbit = inv & -inv
                            victim = vbit.bit_length() - 1
                            llc_valid[s3] = valid3 | vbit
                            base = s3 * llc_W + victim
                            llc_tags[base] = line
                            llc_sharers[base] = cbb
                            look3[line] = victim
                            llc_plru[s3] = (
                                llc_plru[s3] | llc_pset[victim]
                            ) & llc_pclr[victim]
                        else:
                            bits = llc_plru[s3]
                            fill3 = vmb_get(bits)
                            if fill3 is None:
                                node = 1
                                while node < llc_leaves:
                                    go_right = (bits >> node) & 1
                                    if go_right:
                                        if not mbb & llc_right[node]:
                                            go_right = 0
                                    elif not mbb & llc_left[node]:
                                        go_right = 1
                                    node = (
                                        2 * node + 1 if go_right else 2 * node
                                    )
                                victim = node - llc_leaves
                                fill3 = (
                                    ((bits | llc_pset[victim])
                                     & llc_pclr[victim]) << 4
                                ) | victim
                                vmb[bits] = fill3
                            victim = fill3 & 15
                            base = s3 * llc_W + victim
                            old_tag = llc_tags[base]
                            old_sharers = llc_sharers[base]
                            e3b += 1
                            del look3[old_tag]
                            if old_sharers == cbb:
                                if old_tag in b1_lookup[old_tag & b1_mod]:
                                    b1_invown(old_tag)
                                if old_tag in b2_lookup[old_tag & b2_mod]:
                                    b2_invown(old_tag)
                            elif old_sharers:
                                sh = old_sharers
                                while sh:
                                    low = sh & -sh
                                    c = low.bit_length() - 1
                                    sh ^= low
                                    if old_tag in inner_l1[c][
                                        old_tag & b1_mod
                                    ]:
                                        l1_inval[c](old_tag)
                                    if old_tag in inner_l2[c][
                                        old_tag & b2_mod
                                    ]:
                                        l2_inval[c](old_tag)
                            else:
                                for c in cores_range:
                                    if old_tag in inner_l1[c][
                                        old_tag & b1_mod
                                    ]:
                                        l1_inval[c](old_tag)
                                    if old_tag in inner_l2[c][
                                        old_tag & b2_mod
                                    ]:
                                        l2_inval[c](old_tag)
                            llc_tags[base] = line
                            llc_sharers[base] = cbb
                            look3[line] = victim
                            llc_plru[s3] = fill3 >> 4
                        t1 += lt3b
                    valid2 = b2_valid[s2]
                    if valid2 == 255:
                        packed = l2_fill_of[b2_plru[s2]]
                        victim = packed & 7
                        b2_plru[s2] = packed >> 3
                        base = (s2 << 3) + victim
                        e2b += 1
                        del look2[b2_tags[base]]
                    else:
                        vbit = ~valid2 & 255
                        vbit &= -vbit
                        victim = vbit.bit_length() - 1
                        b2_valid[s2] = valid2 | vbit
                        base = (s2 << 3) + victim
                        b2_plru[s2] = l2_touch_of[
                            (b2_plru[s2] << 3) + victim
                        ]
                    b2_tags[base] = line
                    look2[line] = victim
                valid1 = b1_valid[s1]
                st = b1_state[s1]
                if valid1 == 255:
                    packed = l1_fill_of[st]
                    victim = packed & 7
                    b1_state[s1] = packed >> 3
                    base = (s1 << 3) + victim
                    e1b += 1
                    del look1[b1_tags[base]]
                else:
                    vbit = ~valid1 & 255
                    vbit &= -vbit
                    victim = vbit.bit_length() - 1
                    b1_valid[s1] = valid1 | vbit
                    base = (s1 << 3) + victim
                    b1_state[s1] = l1_touch[(st << 3) + victim]
                b1_tags[base] = line
                look1[line] = victim
            else:
                break
        if not retired:
            break
        issued = base0 + i0 + base1 + i1
    return (t0, t1,
            h1a, h2a, h3a, m3a, e1a, e2a, e3a,
            h1b, h2b, h3b, m3b, e1b, e2b, e3b)


# numpy mirrors of the recency tables for the native kernel, built once
# per process (keyed like their list-of-int counterparts).
_NP_TABLES = {}


def _np_lru8_tables():
    tables = _NP_TABLES.get("lru8")
    if tables is None:
        import numpy as np

        touch, fill, _, _ = _lru8_tables()
        tables = _NP_TABLES["lru8"] = (
            np.asarray(touch, dtype=np.int32),
            np.asarray(fill, dtype=np.int32),
        )
    return tables


def _np_plru8_tables(lvl):
    key = ("plru8", lvl._leaves, lvl._full_mask)
    tables = _NP_TABLES.get(key)
    if tables is None:
        import numpy as np

        _, touch_of, fill_of = _plru8_fill_tables(lvl)
        tables = _NP_TABLES[key] = (
            np.asarray(touch_of, dtype=np.int32),
            np.asarray(fill_of, dtype=np.int32),
        )
    return tables


def _np_llc_geometry(llc):
    key = ("llcgeo", llc._leaves, llc.num_ways)
    tables = _NP_TABLES.get(key)
    if tables is None:
        import numpy as np

        tables = _NP_TABLES[key] = (
            np.asarray(llc._plru_set, dtype=np.int64),
            np.asarray(llc._plru_clear_inv, dtype=np.int64),
            np.asarray(llc._plru_left, dtype=np.int64),
            np.asarray(llc._plru_right, dtype=np.int64),
        )
    return tables


def _l1_perm_state(l1, l1_perm_index):
    """Per-set 8-way LRU permutation-FSM state from the stamp array."""
    l1_stamp = l1._stamp
    state = [0] * l1.num_sets
    for s in range(l1.num_sets):
        seg = l1_stamp[s << 3:(s << 3) + 8]
        order = sorted(range(8), key=seg.__getitem__, reverse=True)
        state[s] = l1_perm_index[tuple(order)]
    return state


def _rebuild_lookup(lookup, tags, valid, num_ways):
    """Regenerate per-set tag->way dicts from flat tag/valid state."""
    full = (1 << num_ways) - 1
    ways = tuple(range(num_ways))
    pos = 0
    for s in range(len(valid)):
        d = lookup[s]
        d.clear()
        v = valid[s]
        if v == full:
            d.update(zip(tags[pos:pos + num_ways], ways))
        else:
            while v:
                low = v & -v
                v ^= low
                w = low.bit_length() - 1
                d[tags[pos + w]] = w
        pos += num_ways


def build_native_pair_walk(hierarchy, cores, thinks):
    """Native (compiled) variant of :func:`build_lean_pair_walk`.

    Snapshots every cache level into flat int64 arrays, hands them with
    the pack's raw int64 columns to the C loop in ``pairwalk.c``, and
    writes the mutated state (tags, valid bits, sharers, recency,
    lookup dicts, stats deltas) back on ``finish()``. Bit-identical to
    the Python loops by construction — the C code is a port of
    :func:`_lean_pair_loop` over the same tables.

    Returns ``None`` whenever the Python pair loop would (profiler,
    geometry, non-lean state), when no compiled kernel is available
    (no compiler, ``REPRO_NATIVE=0``), or when any core's inner levels
    deviate from the uniform mod-indexed 8-way shape the flat layout
    assumes.
    """
    if hierarchy.llc_profiler is not None:
        return None
    for core in cores:
        if not _pack_walk_supported(hierarchy, core):
            return None
        if not _lean_walk_eligible(hierarchy, core):
            return None

    h = hierarchy
    llc = h.llc.storage
    if llc.num_ways > 62:
        return None
    l1_mod = h.l1[cores[0]]._mod_mask
    l2_mod = h.l2[cores[0]]._mod_mask
    for c in range(h.num_cores):
        l1 = h.l1[c]
        l2 = h.l2[c]
        if not isinstance(l1, KernelCacheLevel) or not isinstance(
            l2, KernelCacheLevel
        ):
            return None
        if l1.num_ways != 8 or l2.num_ways != 8:
            return None
        if l1._mod_mask != l1_mod or l2._mod_mask != l2_mod:
            return None

    from repro.cache import native

    fn = native.pair_walk_fn()
    if fn is None:
        return None

    import ctypes

    import numpy as np

    i64 = np.int64
    l1_touch, l1_fill = _np_lru8_tables()
    l2_touch, l2_fill = _np_plru8_tables(h.l2[cores[0]])
    pset, pclr, pleft, pright = _np_llc_geometry(llc)
    _, _, l1_perms, l1_perm_index = _lru8_tables()

    g_tags = np.array(llc._tags, dtype=i64)
    g_sharers = np.array(llc._sharers, dtype=i64)
    g_valid = np.array(llc._valid, dtype=i64)
    g_plru = np.array(llc._plru, dtype=i64)
    num_cores = h.num_cores
    i1_tags = np.concatenate(
        [np.array(h.l1[c]._tags, dtype=i64) for c in range(num_cores)]
    )
    i1_valid = np.concatenate(
        [np.array(h.l1[c]._valid, dtype=i64) for c in range(num_cores)]
    )
    i2_tags = np.concatenate(
        [np.array(h.l2[c]._tags, dtype=i64) for c in range(num_cores)]
    )
    i2_valid = np.concatenate(
        [np.array(h.l2[c]._valid, dtype=i64) for c in range(num_cores)]
    )
    states = [
        np.array(_l1_perm_state(h.l1[core], l1_perm_index), dtype=i64)
        for core in cores
    ]
    plru2s = [np.array(h.l2[core]._plru, dtype=i64) for core in cores]

    cfg = np.zeros(24, dtype=i64)
    cfg[5] = llc._leaves
    cfg[6] = llc.num_ways
    cfg[7] = l1_mod
    cfg[8] = l2_mod
    cfg[9] = cores[0]
    cfg[10] = cores[1]
    cfg[11] = num_cores
    for slot, (core, think) in enumerate(zip(cores, thinks)):
        cfg[12 + 4 * slot:16 + 4 * slot] = (
            4 + think, 12 + think, 30 + think, 200 + think,
        )
        cfg[20 + slot] = 1 << core
        cfg[22 + slot] = h.llc._mask_bits[core]
    out = np.zeros(16 + 2 * num_cores, dtype=i64)

    def _ptr(arr):
        return ctypes.c_void_p(arr.ctypes.data)

    def _col(col):
        return np.ascontiguousarray(np.asarray(col, dtype=i64))

    def loop(lines0, sets0, lines1, sets1, n0, n1, rep0, rep1, total):
        cols = [_col(c) for c in (lines0, sets0, lines1, sets1)]
        cfg[0] = n0
        cfg[1] = n1
        cfg[2] = bool(rep0)
        cfg[3] = bool(rep1)
        cfg[4] = total
        fn(
            _ptr(cfg), _ptr(cols[0]), _ptr(cols[1]), _ptr(cols[2]),
            _ptr(cols[3]),
            _ptr(g_tags), _ptr(g_sharers), _ptr(g_valid), _ptr(g_plru),
            _ptr(pset), _ptr(pclr), _ptr(pleft), _ptr(pright),
            _ptr(l1_touch), _ptr(l1_fill), _ptr(l2_touch), _ptr(l2_fill),
            _ptr(i1_tags), _ptr(i1_valid), _ptr(i2_tags), _ptr(i2_valid),
            _ptr(states[0]), _ptr(states[1]), _ptr(plru2s[0]),
            _ptr(plru2s[1]),
            _ptr(out),
        )
        return out

    def finish(res):
        (t0, t1,
         h1a, h2a, h3a, m3a, e1a, e2a, e3a,
         h1b, h2b, h3b, m3b, e1b, e2b, e3b) = (int(x) for x in res[:16])
        llc._tags[:] = g_tags.tolist()
        llc._sharers[:] = g_sharers.tolist()
        llc._valid[:] = g_valid.tolist()
        llc._plru[:] = g_plru.tolist()
        _rebuild_lookup(llc._lookup, llc._tags, llc._valid, llc.num_ways)
        s1_count = l1_mod + 1
        s2_count = l2_mod + 1
        for c in range(num_cores):
            l1 = h.l1[c]
            l1._tags[:] = i1_tags[c * s1_count * 8:(c + 1) * s1_count * 8
                                  ].tolist()
            l1._valid[:] = i1_valid[c * s1_count:(c + 1) * s1_count].tolist()
            _rebuild_lookup(l1._lookup, l1._tags, l1._valid, 8)
            bi = int(res[16 + c])
            if bi:
                l1.stats.back_invalidations += bi
            l2 = h.l2[c]
            l2._tags[:] = i2_tags[c * s2_count * 8:(c + 1) * s2_count * 8
                                  ].tolist()
            l2._valid[:] = i2_valid[c * s2_count:(c + 1) * s2_count].tolist()
            _rebuild_lookup(l2._lookup, l2._tags, l2._valid, 8)
            bi = int(res[16 + num_cores + c])
            if bi:
                l2.stats.back_invalidations += bi
        llc_stats = llc.stats
        counts = ((h1a, h2a, h3a, m3a), (h1b, h2b, h3b, m3b))
        evs = ((e1a, e2a, e3a), (e1b, e2b, e3b))
        for i, core in enumerate(cores):
            h1, h2, h3, m3 = counts[i]
            e1, e2, e3 = evs[i]
            m2 = h3 + m3
            m1 = h2 + m2
            _flush_level_deltas(h.l1[core].stats, h1, m1, e1, 0, core)
            _flush_level_deltas(h.l2[core].stats, h2, m2, e2, 0, core)
            _flush_level_deltas(llc_stats, h3, m3, e3, 0, core)
            l1 = h.l1[core]
            l1_stamp = l1._stamp
            final_state = states[i].tolist()
            h.l2[core]._plru[:] = plru2s[i].tolist()
            clock = l1._clock
            top = clock + 7
            for s in range(len(final_state)):
                perm = l1_perms[final_state[s]]
                base = s << 3
                for rank in range(8):
                    l1_stamp[base + perm[rank]] = top - rank
            l1._clock = clock + 8
        return counts, (t0, t1)

    return loop, finish


# ---------------------------------------------------------------------------
# Epoch-resumable N-domain replay (multiwalk.c + pure-Python reference)
# ---------------------------------------------------------------------------

# dom[] per-domain slot offsets; must match the D_* enum in multiwalk.c.
_DOM_STRIDE = 20
_D_MASK = 2
_D_POS, _D_LIVE, _D_VTIME = 9, 10, 11
_D_H1 = 12  # h1, h2, h3, m3, e1, e2, e3 follow contiguously
_D_E1 = 16
# cfg[] per-cell scalars; must match the CFG_* enum in multiwalk.c.
_CFG_SLOTS = 8
_CFG_STOP = 6


def _epoch_replay_supported(hierarchy, cores):
    """Guards shared by both epoch drivers (the native one adds its own)."""
    if hierarchy.llc_profiler is not None:
        return False
    if len(set(cores)) != len(cores):
        return False
    for core in cores:
        if not _pack_walk_supported(hierarchy, core):
            return False
        if not _lean_walk_eligible(hierarchy, core):
            return False
    return True


def _plain_column(col):
    """A plain Python list view of a pack column (lists pass through)."""
    if isinstance(col, list):
        return col
    tolist = getattr(col, "tolist", None)
    return tolist() if tolist is not None else list(col)


class PythonEpochReplay:
    """Reference epoch driver over the lean pack-walk closures.

    Implements the exact scheduler of ``multiwalk.c`` — linear scan for
    the minimum ``(vtime, slot)`` over live domains, exhausted
    non-repeating domains retiring without issuing, ``stop_at`` as an
    absolute issued-access target and ``horizon`` as a virtual-time
    bound checked before issuing — over the per-core closures from
    :func:`_build_lean_pack_walk`. Virtual times and slot keys are
    unique, so the scan order equals the ``(vtime, slot)`` heap order of
    ``TraceEngine._packed_heap`` and replays are bit-identical to both
    the heap loop and the native kernel.

    The lean closures capture the LLC way-mask bits at build time, so
    :meth:`refresh_masks` synchronizes counters and recency state back
    into the hierarchy and rebuilds every walk against the new masks —
    a representation hand-off, not a cache flush: every resident line
    and the full recency order survive, which is the Section 2.1
    mask-change contract the native kernel gets for free.
    """

    native = False

    def __init__(self, hierarchy, cores, thinks, lines, sets, lengths,
                 repeats):
        self._h = hierarchy
        self._cores = list(cores)
        self._thinks = list(thinks)
        self._lines = [_plain_column(col) for col in lines]
        self._sets = [_plain_column(col) for col in sets]
        self._lengths = [int(n) for n in lengths]
        self._repeats = [bool(r) for r in repeats]
        n = len(self._cores)
        self._positions = [0] * n
        self._vtimes = [0] * n
        self._lives = [bool(x) for x in self._lengths]
        self._issued = 0
        self._totals = [[0, 0, 0, 0] for _ in range(n)]
        self._build_walks()

    def _build_walks(self):
        built = [
            _build_lean_pack_walk(self._h, core, think)
            for core, think in zip(self._cores, self._thinks)
        ]
        self._walks = [b[0] for b in built]
        self._flushes = [b[1] for b in built]
        self._reports = [b[2] for b in built]

    @property
    def issued(self):
        return self._issued

    def vtimes(self):
        return list(self._vtimes)

    def counters(self, slot):
        """Cumulative ``(l1_hits, l2_hits, llc_hits, llc_misses)``."""
        t = self._totals[slot]
        r = self._reports[slot]()
        return (t[0] + r[0], t[1] + r[1], t[2] + r[2], t[3] + r[3])

    def run_epoch(self, stop_at, horizon=-1):
        """Advance until ``issued == stop_at`` or the merge frontier
        reaches ``horizon`` (virtual time, -1 to disable); returns the
        total issued so far. Call again to resume exactly."""
        walks = self._walks
        lines, sets = self._lines, self._sets
        positions, vtimes = self._positions, self._vtimes
        lives, lengths, repeats = self._lives, self._lengths, self._repeats
        nslots = len(walks)
        issued = self._issued
        while issued < stop_at:
            best = -1
            bt = 0
            for d in range(nslots):
                if lives[d]:
                    vt = vtimes[d]
                    if best < 0 or vt < bt:
                        best = d
                        bt = vt
            if best < 0:
                break
            if 0 <= horizon <= bt:
                break
            i = positions[best]
            if i == lengths[best]:
                if not repeats[best]:
                    lives[best] = False
                    continue
                i = 0
            vtimes[best] = bt + walks[best](lines[best][i], sets[best][i])
            positions[best] = i + 1
            issued += 1
        self._issued = issued
        return issued

    def _sync(self):
        """Bank level counters and push recency state into the levels."""
        for i in range(len(self._cores)):
            r = self._reports[i]()
            t = self._totals[i]
            t[0] += r[0]
            t[1] += r[1]
            t[2] += r[2]
            t[3] += r[3]
            self._flushes[i]()

    def refresh_masks(self):
        """Re-read the hierarchy's way masks; state carries over intact."""
        self._sync()
        self._build_walks()

    def llc_resident(self):
        return sorted(self._h.llc.storage.resident_lines())

    def finish(self):
        """Deposit stat deltas; returns ``(level counts, vtimes)``."""
        self._sync()
        counts = tuple(tuple(t) for t in self._totals)
        return counts, tuple(self._vtimes)


class NativeEpochReplay:
    """Epoch driver over the compiled ``multiwalk.c`` kernel.

    Snapshots every cache level into flat int64 buffers once, then each
    :meth:`run_epoch` is a single ``ctypes`` call that advances the
    replay and returns with all state — tags, valid bits, sharers,
    recency words, per-domain counters and virtual times, the issued
    total — intact in those buffers. :meth:`refresh_masks` rewrites only
    the per-domain mask words, so a partition change between epochs
    costs nothing and flushes nothing. :meth:`finish` writes the final
    state back into the :class:`KernelCacheLevel` objects exactly like
    :func:`build_native_pair_walk`'s ``finish``.
    """

    native = True

    def __init__(self, hierarchy, cores, thinks, lines, sets, lengths,
                 repeats, fn):
        import ctypes

        import numpy as np

        i64 = np.int64
        h = hierarchy
        llc = h.llc.storage
        num_cores = h.num_cores
        self._h = h
        self._cores = list(cores)
        self._fn = fn
        self._llc_W = llc.num_ways

        l1_touch, l1_fill = _np_lru8_tables()
        l2_touch, l2_fill = _np_plru8_tables(h.l2[cores[0]])
        pset, pclr, pleft, pright = _np_llc_geometry(llc)
        _, _, l1_perms, l1_perm_index = _lru8_tables()
        self._l1_perms = l1_perms

        g_tags = np.array(llc._tags, dtype=i64)
        g_sharers = np.array(llc._sharers, dtype=i64)
        g_valid = np.array(llc._valid, dtype=i64)
        g_plru = np.array(llc._plru, dtype=i64)
        self._g_tags, self._g_sharers = g_tags, g_sharers
        self._g_valid, self._g_plru = g_valid, g_plru

        i1_tags = np.concatenate(
            [np.array(h.l1[c]._tags, dtype=i64) for c in range(num_cores)]
        )
        i1_valid = np.concatenate(
            [np.array(h.l1[c]._valid, dtype=i64) for c in range(num_cores)]
        )
        i2_tags = np.concatenate(
            [np.array(h.l2[c]._tags, dtype=i64) for c in range(num_cores)]
        )
        i2_valid = np.concatenate(
            [np.array(h.l2[c]._valid, dtype=i64) for c in range(num_cores)]
        )
        self._i1_tags, self._i1_valid = i1_tags, i1_valid
        self._i2_tags, self._i2_valid = i2_tags, i2_valid

        # All-core recency buffers; only participating cores' segments
        # are ever read or written by the kernel (back-invalidations
        # touch tags/valid, never recency — same as the object model).
        l1_sets = h.l1[cores[0]].num_sets
        l2_sets = h.l2[cores[0]].num_sets
        self._l1_sets, self._l2_sets = l1_sets, l2_sets
        l1_state = np.zeros(num_cores * l1_sets, dtype=i64)
        l2_plru = np.zeros(num_cores * l2_sets, dtype=i64)
        for core in cores:
            l1_state[core * l1_sets:(core + 1) * l1_sets] = (
                _l1_perm_state(h.l1[core], l1_perm_index)
            )
            l2_plru[core * l2_sets:(core + 1) * l2_sets] = h.l2[core]._plru
        self._l1_state, self._l2_plru = l1_state, l2_plru

        cfg = np.zeros(8, dtype=i64)
        cfg[0] = len(cores)
        cfg[1] = llc._leaves
        cfg[2] = llc.num_ways
        cfg[3] = h.l1[cores[0]]._mod_mask
        cfg[4] = h.l2[cores[0]]._mod_mask
        cfg[5] = num_cores
        self._cfg = cfg

        dom = np.zeros(len(cores) * _DOM_STRIDE, dtype=i64)
        for slot, (core, think) in enumerate(zip(cores, thinks)):
            base = slot * _DOM_STRIDE
            dom[base + 0] = core
            dom[base + 1] = 1 << core
            dom[base + 2] = h.llc._mask_bits[core]
            dom[base + 3:base + 7] = (
                4 + think, 12 + think, 30 + think, 200 + think,
            )
            dom[base + 7] = int(lengths[slot])
            dom[base + 8] = bool(repeats[slot])
            dom[base + _D_LIVE] = 1 if lengths[slot] else 0
        self._dom = dom

        def _col(col):
            return np.ascontiguousarray(np.asarray(col, dtype=i64))

        self._line_cols = [_col(c) for c in lines]
        self._set_cols = [_col(c) for c in sets]
        line_ptrs = np.array(
            [c.ctypes.data for c in self._line_cols], dtype=np.uintp
        )
        set_ptrs = np.array(
            [c.ctypes.data for c in self._set_cols], dtype=np.uintp
        )

        bi = np.zeros(2 * num_cores, dtype=i64)
        sched = np.zeros(1, dtype=i64)
        self._bi, self._sched = bi, sched

        # Every buffer is owned by self (or a process-wide table memo),
        # so its address is stable for the driver's lifetime: bind the
        # whole ctypes argument list once.
        arrays = (
            cfg, dom, line_ptrs, set_ptrs,
            g_tags, g_sharers, g_valid, g_plru,
            pset, pclr, pleft, pright,
            l1_touch, l1_fill, l2_touch, l2_fill,
            i1_tags, i1_valid, l1_state,
            i2_tags, i2_valid, l2_plru,
            bi, sched,
        )
        self._keep = arrays
        self._args = [ctypes.c_void_p(a.ctypes.data) for a in arrays]

    @property
    def issued(self):
        return int(self._sched[0])

    def vtimes(self):
        dom = self._dom
        return [
            int(dom[s * _DOM_STRIDE + _D_VTIME])
            for s in range(len(self._cores))
        ]

    def counters(self, slot):
        """Cumulative ``(l1_hits, l2_hits, llc_hits, llc_misses)``."""
        base = slot * _DOM_STRIDE + _D_H1
        return tuple(int(x) for x in self._dom[base:base + 4])

    def run_epoch(self, stop_at, horizon=-1):
        cfg = self._cfg
        cfg[6] = stop_at
        cfg[7] = horizon
        self._fn(*self._args)
        return int(self._sched[0])

    def refresh_masks(self):
        """Re-read the hierarchy's way masks; nothing else changes."""
        dom = self._dom
        mask_bits = self._h.llc._mask_bits
        for slot, core in enumerate(self._cores):
            dom[slot * _DOM_STRIDE + _D_MASK] = mask_bits[core]

    def llc_resident(self):
        lines = []
        tags = self._g_tags
        valid = self._g_valid
        W = self._llc_W
        for s in range(len(valid)):
            v = int(valid[s])
            base = s * W
            while v:
                low = v & -v
                v ^= low
                lines.append(int(tags[base + low.bit_length() - 1]))
        return sorted(lines)

    def finish(self):
        """Write all state back into the hierarchy; call exactly once."""
        h = self._h
        llc = h.llc.storage
        num_cores = h.num_cores
        llc._tags[:] = self._g_tags.tolist()
        llc._sharers[:] = self._g_sharers.tolist()
        llc._valid[:] = self._g_valid.tolist()
        llc._plru[:] = self._g_plru.tolist()
        _rebuild_lookup(llc._lookup, llc._tags, llc._valid, llc.num_ways)
        s1 = self._l1_sets
        s2 = self._l2_sets
        for c in range(num_cores):
            l1 = h.l1[c]
            l1._tags[:] = self._i1_tags[c * s1 * 8:(c + 1) * s1 * 8].tolist()
            l1._valid[:] = self._i1_valid[c * s1:(c + 1) * s1].tolist()
            _rebuild_lookup(l1._lookup, l1._tags, l1._valid, 8)
            bi = int(self._bi[c])
            if bi:
                l1.stats.back_invalidations += bi
            l2 = h.l2[c]
            l2._tags[:] = self._i2_tags[c * s2 * 8:(c + 1) * s2 * 8].tolist()
            l2._valid[:] = self._i2_valid[c * s2:(c + 1) * s2].tolist()
            _rebuild_lookup(l2._lookup, l2._tags, l2._valid, 8)
            bi = int(self._bi[num_cores + c])
            if bi:
                l2.stats.back_invalidations += bi
        dom = self._dom
        llc_stats = llc.stats
        l1_perms = self._l1_perms
        counts = []
        for slot, core in enumerate(self._cores):
            h1, h2, h3, m3 = self.counters(slot)
            base = slot * _DOM_STRIDE + _D_E1
            e1, e2, e3 = (int(x) for x in dom[base:base + 3])
            m2 = h3 + m3
            m1 = h2 + m2
            l1 = h.l1[core]
            _flush_level_deltas(l1.stats, h1, m1, e1, 0, core)
            _flush_level_deltas(h.l2[core].stats, h2, m2, e2, 0, core)
            _flush_level_deltas(llc_stats, h3, m3, e3, 0, core)
            counts.append((h1, h2, h3, m3))
            final_state = self._l1_state[core * s1:(core + 1) * s1].tolist()
            h.l2[core]._plru[:] = (
                self._l2_plru[core * s2:(core + 1) * s2].tolist()
            )
            l1_stamp = l1._stamp
            clock = l1._clock
            top = clock + 7
            for s in range(len(final_state)):
                perm = l1_perms[final_state[s]]
                sbase = s << 3
                for rank in range(8):
                    l1_stamp[sbase + perm[rank]] = top - rank
            l1._clock = clock + 8
        return tuple(counts), tuple(self.vtimes())


def build_python_epoch_replay(hierarchy, cores, thinks, lines, sets,
                              lengths, repeats):
    """The pure-Python reference epoch driver, or ``None`` if the lean
    preconditions (read-only state, 8-way mod-indexed inner levels, no
    profiler) don't hold."""
    if not _epoch_replay_supported(hierarchy, cores):
        return None
    return PythonEpochReplay(
        hierarchy, cores, thinks, lines, sets, lengths, repeats
    )


def build_native_epoch_replay(hierarchy, cores, thinks, lines, sets,
                              lengths, repeats):
    """Epoch driver over the compiled ``multiwalk.c`` kernel, or ``None``
    whenever :func:`build_python_epoch_replay` would decline, the kernel
    is unavailable (no compiler, ``REPRO_NATIVE=0``), or the geometry
    deviates from the uniform flat layout the C code assumes."""
    if not _epoch_replay_supported(hierarchy, cores):
        return None
    if len(cores) > 16:
        return None
    h = hierarchy
    llc = h.llc.storage
    if llc.num_ways > 62:
        return None
    l1_mod = h.l1[cores[0]]._mod_mask
    l2_mod = h.l2[cores[0]]._mod_mask
    for c in range(h.num_cores):
        l1 = h.l1[c]
        l2 = h.l2[c]
        if not isinstance(l1, KernelCacheLevel) or not isinstance(
            l2, KernelCacheLevel
        ):
            return None
        if l1.num_ways != 8 or l2.num_ways != 8:
            return None
        if l1._mod_mask != l1_mod or l2._mod_mask != l2_mod:
            return None

    from repro.cache import native

    fn = native.multi_walk_fn()
    if fn is None:
        return None
    return NativeEpochReplay(
        h, cores, thinks, lines, sets, lengths, repeats, fn
    )


class NativeBatchReplay:
    """One-call batched replay over the compiled ``batchwalk.c`` kernel.

    Holds R independent replay cells — the allocations of a way sweep,
    or a roster of unrelated co-runs — as contiguous per-cell banks of
    the same flat state :class:`NativeEpochReplay` uses: the template
    hierarchy's current state is snapshotted once and tiled R times, so
    every cell starts from an identical copy and no cell can observe
    another. :meth:`run` is a single ``ctypes`` call; the kernel threads
    over cells but each writes only its own dom/sched bank, so the
    per-cell ``(counters, vtimes)`` read back afterwards are
    bit-identical to running :class:`NativeEpochReplay` once per cell,
    for any thread count.

    Unlike the epoch driver there is no ``finish()`` writeback: batch
    cells are throwaway measurements, never a hierarchy the caller
    keeps simulating.
    """

    native = True

    def __init__(self, hierarchy, cells, threads, fn):
        import ctypes

        import numpy as np

        i64 = np.int64
        h = hierarchy
        llc = h.llc.storage
        num_cores = h.num_cores
        R = len(cells)
        n_max = max(len(cell["cores"]) for cell in cells)
        self._h = h
        self._cells = cells
        self._fn = fn
        self._n_max = n_max

        first_core = cells[0]["cores"][0]
        l1_touch, l1_fill = _np_lru8_tables()
        l2_touch, l2_fill = _np_plru8_tables(h.l2[first_core])
        pset, pclr, pleft, pright = _np_llc_geometry(llc)
        _, _, _, l1_perm_index = _lru8_tables()

        # One template snapshot of the hierarchy's current state, tiled
        # R times: every cell starts from an identical copy.
        g_tags = np.tile(np.array(llc._tags, dtype=i64), R)
        g_sharers = np.tile(np.array(llc._sharers, dtype=i64), R)
        g_valid = np.tile(np.array(llc._valid, dtype=i64), R)
        g_plru = np.tile(np.array(llc._plru, dtype=i64), R)

        def _all_core(levels, attr):
            return np.concatenate(
                [np.array(getattr(levels[c], attr), dtype=i64)
                 for c in range(num_cores)]
            )

        i1_tags = np.tile(_all_core(h.l1, "_tags"), R)
        i1_valid = np.tile(_all_core(h.l1, "_valid"), R)
        i2_tags = np.tile(_all_core(h.l2, "_tags"), R)
        i2_valid = np.tile(_all_core(h.l2, "_valid"), R)

        l1_sets = h.l1[first_core].num_sets
        l2_sets = h.l2[first_core].num_sets
        l1_state = np.zeros(R * num_cores * l1_sets, dtype=i64)
        l2_plru = np.zeros(R * num_cores * l2_sets, dtype=i64)
        cfg = np.zeros(R * _CFG_SLOTS, dtype=i64)
        dom = np.zeros(R * n_max * _DOM_STRIDE, dtype=i64)
        self._line_cols = []
        self._set_cols = []
        line_ptrs = np.zeros(R * n_max, dtype=np.uintp)
        set_ptrs = np.zeros(R * n_max, dtype=np.uintp)

        def _col(col):
            return np.ascontiguousarray(np.asarray(col, dtype=i64))

        mask_bits = h.llc._mask_bits
        for r, cell in enumerate(cells):
            cores = cell["cores"]
            cell_masks = cell.get("mask_bits")
            cbase = r * _CFG_SLOTS
            cfg[cbase + 0] = len(cores)
            cfg[cbase + 1] = llc._leaves
            cfg[cbase + 2] = llc.num_ways
            cfg[cbase + 3] = h.l1[cores[0]]._mod_mask
            cfg[cbase + 4] = h.l2[cores[0]]._mod_mask
            cfg[cbase + 5] = num_cores
            cfg[cbase + 6] = int(cell["stop"])
            cfg[cbase + 7] = -1
            for core in cores:
                off = r * num_cores * l1_sets + core * l1_sets
                l1_state[off:off + l1_sets] = (
                    _l1_perm_state(h.l1[core], l1_perm_index)
                )
                off = r * num_cores * l2_sets + core * l2_sets
                l2_plru[off:off + l2_sets] = h.l2[core]._plru
            for slot, (core, think) in enumerate(
                zip(cores, cell["thinks"])
            ):
                base = (r * n_max + slot) * _DOM_STRIDE
                dom[base + 0] = core
                dom[base + 1] = 1 << core
                dom[base + 2] = (
                    mask_bits[core] if cell_masks is None
                    else cell_masks[slot]
                )
                dom[base + 3:base + 7] = (
                    4 + think, 12 + think, 30 + think, 200 + think,
                )
                dom[base + 7] = int(cell["lengths"][slot])
                dom[base + 8] = bool(cell["repeats"][slot])
                dom[base + _D_LIVE] = 1 if cell["lengths"][slot] else 0
                lcol = _col(cell["lines"][slot])
                scol = _col(cell["sets"][slot])
                self._line_cols.append(lcol)
                self._set_cols.append(scol)
                line_ptrs[r * n_max + slot] = lcol.ctypes.data
                set_ptrs[r * n_max + slot] = scol.ctypes.data

        bi = np.zeros(R * 2 * num_cores, dtype=i64)
        sched = np.zeros(R, dtype=i64)
        bcfg = np.array(
            [R, threads, n_max, llc.num_sets, llc.num_ways,
             l1_sets, l2_sets, num_cores],
            dtype=i64,
        )
        self._cfg, self._dom, self._sched = cfg, dom, sched

        arrays = (
            bcfg, cfg, dom, line_ptrs, set_ptrs,
            g_tags, g_sharers, g_valid, g_plru,
            pset, pclr, pleft, pright,
            l1_touch, l1_fill, l2_touch, l2_fill,
            i1_tags, i1_valid, l1_state,
            i2_tags, i2_valid, l2_plru,
            bi, sched,
        )
        self._keep = arrays
        self._args = [ctypes.c_void_p(a.ctypes.data) for a in arrays]

    def cell_result(self, r):
        """Cell ``r``'s ``(counts, vtimes)`` read from its dom bank,
        where ``counts`` is a per-domain tuple of ``(l1_hits, l2_hits,
        llc_hits, llc_misses)`` — the same shape ``NativeEpochReplay``'s
        ``finish`` reports, without any hierarchy writeback."""
        dom = self._dom
        counts = []
        vtimes = []
        for slot in range(len(self._cells[r]["cores"])):
            base = (r * self._n_max + slot) * _DOM_STRIDE
            counts.append(tuple(
                int(x) for x in dom[base + _D_H1:base + _D_H1 + 4]
            ))
            vtimes.append(int(dom[base + _D_VTIME]))
        return tuple(counts), tuple(vtimes)

    def run(self):
        """One ctypes call; returns ``[(counts, vtimes), ...]`` per cell."""
        self._fn(*self._args)
        return [self.cell_result(r) for r in range(len(self._cells))]

    @property
    def issued(self):
        return int(self._sched.sum())


def _batch_cells_supported(hierarchy, cells):
    """Shared preconditions of the batched builders (one bank layout)."""
    h = hierarchy
    llc = h.llc.storage
    if llc.num_ways > 62:
        return False
    for cell in cells:
        cores = cell["cores"]
        if not cores or len(cores) > 16:
            return False
        if not _epoch_replay_supported(h, cores):
            return False
    l1_mod = h.l1[0]._mod_mask
    l2_mod = h.l2[0]._mod_mask
    for c in range(h.num_cores):
        l1 = h.l1[c]
        l2 = h.l2[c]
        if not isinstance(l1, KernelCacheLevel) or not isinstance(
            l2, KernelCacheLevel
        ):
            return False
        if l1.num_ways != 8 or l2.num_ways != 8:
            return False
        if l1._mod_mask != l1_mod or l2._mod_mask != l2_mod:
            return False
    return True


def build_native_batch_replay(hierarchy, cells, threads=None):
    """Batched driver over ``batchwalk.c``, or ``None`` when any cell
    fails the epoch-replay preconditions or the kernel is unavailable.

    ``cells`` is a list of dicts with keys ``cores``, ``thinks``,
    ``lines``, ``sets``, ``lengths``, ``repeats``, ``stop`` and
    optionally ``mask_bits`` (per-slot LLC way-mask words; defaults to
    the hierarchy's current masks). ``threads`` follows
    :func:`repro.cache.native.resolve_native_threads` — invalid
    ``REPRO_NATIVE_THREADS`` values raise, they never silently fall
    back.
    """
    if not cells or not _batch_cells_supported(hierarchy, cells):
        return None

    from repro.cache import native

    fn = native.batch_walk_fn()
    if fn is None:
        return None
    threads = native.resolve_native_threads(len(cells), threads)
    return NativeBatchReplay(hierarchy, cells, threads, fn)


class NativeEpochBatchReplay(NativeBatchReplay):
    """Epoch-resumable batched driver over ``epochbatch.c``.

    The same per-cell state banks as :class:`NativeBatchReplay`, kept
    alive between calls: :meth:`run_active` is ONE ctypes call that
    advances only the named cells, each to its own per-cell stop target
    (:meth:`set_stop`), and returns with every cell's walk state — LLC
    and inner-cache tags and recency, per-domain counters, cursors,
    virtual times, scheduler frontiers — resting in the Python-owned
    banks. Between calls the host reads the banked counters
    (:meth:`counter_bank`, a zero-copy view sliced for vectorized MPKI
    windows), runs each cell's controller decision, and rewrites that
    cell's dom way-mask words flush-free (:meth:`set_mask_bits`) — the
    batched generalization of ``NativeEpochReplay``'s ``run_epoch`` +
    ``refresh_masks`` loop. Each work item writes only its own cell's
    banks, so the replay is bit-identical to the sequential epoch
    driver for any thread count and any active-set schedule.
    """

    def __init__(self, hierarchy, cells, threads, fn):
        import ctypes

        import numpy as np

        super().__init__(hierarchy, cells, threads, fn)
        active = np.zeros(len(cells) + 1, dtype=np.int64)
        self._active = active
        self._keep = (*self._keep, active)
        args = list(self._args)
        args.insert(1, ctypes.c_void_p(active.ctypes.data))
        self._args = args

    def issued_of(self, r):
        """Cell ``r``'s scheduler frontier (total issued accesses)."""
        return int(self._sched[r])

    def set_stop(self, r, stop):
        """Cell ``r``'s next absolute issued-access target."""
        self._cfg[r * _CFG_SLOTS + _CFG_STOP] = stop

    def set_mask_bits(self, r, slot, bits):
        """Rewrite one domain's LLC way-mask word — a flush-free
        reallocation, exactly ``NativeEpochReplay.refresh_masks`` for
        one (cell, domain)."""
        self._dom[(r * self._n_max + slot) * _DOM_STRIDE + _D_MASK] = bits

    def counter_bank(self):
        """``(R, n_max, 4)`` int64 view of the cumulative per-domain
        ``(l1_hits, l2_hits, llc_hits, llc_misses)`` counters, zero-copy
        into the dom bank; slots past a cell's domain count stay zero."""
        R = len(self._cells)
        return self._dom.reshape(R, self._n_max, _DOM_STRIDE)[
            :, :, _D_H1:_D_H1 + 4
        ]

    def run_active(self, active_cells):
        """ONE ctypes call advancing ``active_cells`` to their stops."""
        a = self._active
        n = len(active_cells)
        a[0] = n
        a[1:1 + n] = active_cells
        self._fn(*self._args)


def build_native_epoch_batch_replay(hierarchy, cells, threads=None):
    """Batched epoch driver over ``epochbatch.c``, or ``None`` when any
    cell fails the epoch-replay preconditions or the kernel is
    unavailable.

    ``cells`` carries the same keys as
    :func:`build_native_batch_replay`; ``stop`` is the first epoch
    target (0 means nothing runs until the host raises it via
    ``set_stop``). ``threads`` resolves like the one-shot batch driver;
    each call's worker count further clamps to the active cell count
    inside the kernel.
    """
    if not cells or not _batch_cells_supported(hierarchy, cells):
        return None

    from repro.cache import native

    fn = native.epoch_batch_fn()
    if fn is None:
        return None
    threads = native.resolve_native_threads(len(cells), threads)
    return NativeEpochBatchReplay(hierarchy, cells, threads, fn)


def _build_general_pack_walk(hierarchy, core, think_cycles):
    l1 = hierarchy.l1[core]
    l2 = hierarchy.l2[core]
    llc, mbits, mask_ways_core = _capture_llc(hierarchy, core)

    h = hierarchy
    num_cores = h.num_cores
    core_bit = 1 << core
    scratch = h._scratch
    l1_objs = list(h.l1)
    l2_objs = list(h.l2)
    inner_l1_lookup = [lvl._lookup for lvl in l1_objs]
    inner_l2_lookup = [lvl._lookup for lvl in l2_objs]

    l1_mod = l1._mod_mask
    l1_W = l1.num_ways
    l1_full = l1._full_mask
    l1_lookup, l1_tags, l1_sharers = l1._lookup, l1._tags, l1._sharers
    l1_valid, l1_dirty = l1._valid, l1._dirty
    l1_pref, l1_tpf = l1._prefetched, l1._touched_pf
    l1_stamp = l1._stamp
    l1_stats = l1.stats

    l2_mod = l2._mod_mask
    l2_W = l2.num_ways
    l2_full = l2._full_mask
    l2_lookup, l2_tags, l2_sharers = l2._lookup, l2._tags, l2._sharers
    l2_valid, l2_dirty = l2._valid, l2._dirty
    l2_pref, l2_tpf = l2._prefetched, l2._touched_pf
    l2_plru = l2._plru
    l2_pset, l2_pclr = l2._plru_set, l2._plru_clear_inv
    l2_stats = l2.stats
    l2_victim_of = _plru_victim_table(
        l2._leaves, l2_full, l2._plru_left, l2._plru_right
    )

    llc_W = llc.num_ways
    llc_leaves = llc._leaves
    llc_lookup, llc_tags, llc_sharers = llc._lookup, llc._tags, llc._sharers
    llc_valid, llc_dirty = llc._valid, llc._dirty
    llc_pref, llc_tpf = llc._prefetched, llc._touched_pf
    llc_plru = llc._plru
    llc_pset, llc_pclr = llc._plru_set, llc._plru_clear_inv
    llc_left, llc_right = llc._plru_left, llc._plru_right
    llc_stats = llc.stats
    llc_mark_dirty = llc.mark_dirty
    llc_vmemo = {}
    llc_vmemo_get = llc_vmemo.get

    prof = h.llc_profiler
    prof_observe = prof.observe if prof is not None else None

    lt0 = 4 + think_cycles
    lt1 = 12 + think_cycles
    lt2 = 30 + think_cycles
    lt3 = 200 + think_cycles

    h1 = h2 = h3 = m3 = 0
    ev1 = wb1 = ev2 = wb2 = ev3 = wb3 = 0
    clk1 = l1._clock

    def walk(line, s3, is_write):
        nonlocal h1, h2, h3, m3, ev1, wb1, ev2, wb2, ev3, wb3, clk1
        # ---- L1 probe (LRU, modulo) -------------------------------------
        s1 = line & l1_mod
        look1 = l1_lookup[s1]
        way = look1.get(line)
        if way is not None:
            h1 += 1
            l1_stamp[s1 * l1_W + way] = clk1
            clk1 += 1
            if is_write:
                l1_dirty[s1] |= 1 << way
            pf = l1_pref[s1]
            if pf:
                bit = 1 << way
                if pf & bit and not l1_tpf[s1] & bit:
                    l1_tpf[s1] |= bit
                    l1_stats.prefetch_useful += 1
            return lt0

        # ---- L2 probe (PLRU, modulo) ------------------------------------
        s2 = line & l2_mod
        look2 = l2_lookup[s2]
        way = look2.get(line)
        if way is not None:
            h2 += 1
            l2_plru[s2] = (l2_plru[s2] | l2_pset[way]) & l2_pclr[way]
            if is_write:
                l2_dirty[s2] |= 1 << way
            pf = l2_pref[s2]
            if pf:
                bit = 1 << way
                if pf & bit and not l2_tpf[s2] & bit:
                    l2_tpf[s2] |= bit
                    l2_stats.prefetch_useful += 1
            ret = lt1
        else:
            # ---- LLC probe (precomputed set index) ----------------------
            if prof_observe is not None:
                prof_observe(line, core)
            look3 = llc_lookup[s3]
            way = look3.get(line)
            if way is not None:
                h3 += 1
                llc_plru[s3] = (llc_plru[s3] | llc_pset[way]) & llc_pclr[way]
                if is_write:
                    llc_dirty[s3] |= 1 << way
                pf = llc_pref[s3]
                if pf:
                    bit = 1 << way
                    if pf & bit and not llc_tpf[s3] & bit:
                        llc_tpf[s3] |= bit
                        llc_stats.prefetch_useful += 1
                llc_sharers[s3 * llc_W + way] |= core_bit  # add_sharer
                ret = lt2
            else:
                m3 += 1
                # ---- LLC fill (way-masked victim, inclusion) ------------
                valid3 = llc_valid[s3]
                inv = ~valid3 & mbits
                if inv:
                    # Mask way lists are ascending, so "first invalid in
                    # mask order" is the lowest set bit.
                    vbit = inv & -inv
                    victim = vbit.bit_length() - 1
                    base = s3 * llc_W + victim
                else:
                    bits = llc_plru[s3]
                    victim = llc_vmemo_get(bits)
                    if victim is None:
                        node = 1
                        while node < llc_leaves:
                            go_right = (bits >> node) & 1
                            if go_right:
                                if not mbits & llc_right[node]:
                                    go_right = 0
                            elif not mbits & llc_left[node]:
                                go_right = 1
                            node = 2 * node + 1 if go_right else 2 * node
                        victim = node - llc_leaves
                        llc_vmemo[bits] = victim
                    base = s3 * llc_W + victim
                    vbit = 1 << victim
                    old_tag = llc_tags[base]
                    old_sharers = llc_sharers[base]
                    ev3 += 1
                    if llc_dirty[s3] & vbit:
                        wb3 += 1
                    del look3[old_tag]
                    # Inclusion: the victim leaves every inner cache.
                    if old_sharers:
                        sh = old_sharers
                        while sh:
                            low = sh & -sh
                            c = low.bit_length() - 1
                            sh ^= low
                            if old_tag in inner_l1_lookup[c][old_tag & l1_mod]:
                                l1_objs[c].invalidate(old_tag)
                            if old_tag in inner_l2_lookup[c][old_tag & l2_mod]:
                                l2_objs[c].invalidate(old_tag)
                    else:
                        for c in range(num_cores):
                            if old_tag in inner_l1_lookup[c][old_tag & l1_mod]:
                                l1_objs[c].invalidate(old_tag)
                            if old_tag in inner_l2_lookup[c][old_tag & l2_mod]:
                                l2_objs[c].invalidate(old_tag)
                llc_tags[base] = line
                llc_valid[s3] = valid3 | vbit
                if is_write:
                    llc_dirty[s3] |= vbit
                else:
                    llc_dirty[s3] &= ~vbit
                llc_sharers[base] = core_bit
                llc_pref[s3] &= ~vbit
                llc_tpf[s3] &= ~vbit
                look3[line] = victim
                llc_plru[s3] = (
                    llc_plru[s3] | llc_pset[victim]
                ) & llc_pclr[victim]
                ret = lt3

            # ---- L2 fill (demand fills land clean) ----------------------
            valid2 = l2_valid[s2]
            if valid2 != l2_full:
                inv = ~valid2 & l2_full
                victim = (inv & -inv).bit_length() - 1
                base = s2 * l2_W + victim
                vbit = 1 << victim
            else:
                victim = l2_victim_of[l2_plru[s2]]
                base = s2 * l2_W + victim
                vbit = 1 << victim
                old_tag = l2_tags[base]
                ev2 += 1
                if l2_dirty[s2] & vbit:
                    wb2 += 1
                    # Inclusive LLC normally still holds the line.
                    llc_mark_dirty(old_tag)
                del look2[old_tag]
            l2_tags[base] = line
            l2_valid[s2] = valid2 | vbit
            l2_dirty[s2] &= ~vbit
            l2_sharers[base] = 0
            l2_pref[s2] &= ~vbit
            l2_tpf[s2] &= ~vbit
            look2[line] = victim
            l2_plru[s2] = (l2_plru[s2] | l2_pset[victim]) & l2_pclr[victim]

        # ---- L1 fill ----------------------------------------------------
        valid1 = l1_valid[s1]
        if valid1 != l1_full:
            inv = ~valid1 & l1_full
            victim = (inv & -inv).bit_length() - 1
            base = s1 * l1_W + victim
            vbit = 1 << victim
        else:
            base = s1 * l1_W
            seg = l1_stamp[base:base + l1_W]
            victim = seg.index(min(seg))  # stamps are unique
            base += victim
            vbit = 1 << victim
            old_tag = l1_tags[base]
            ev1 += 1
            if l1_dirty[s1] & vbit:
                wb1 += 1
                # Non-inclusive L2: a dirty L1 victim lands in (or
                # updates) L2; fall back to the shared helper on a miss.
                s2v = old_tag & l2_mod
                way2 = l2_lookup[s2v].get(old_tag)
                if way2 is not None:
                    l2_dirty[s2v] |= 1 << way2
                else:
                    h._fill_l2(core, old_tag, scratch, dirty=True)
            del look1[old_tag]
        l1_tags[base] = line
        l1_valid[s1] = valid1 | vbit
        if is_write:
            l1_dirty[s1] |= vbit
        else:
            l1_dirty[s1] &= ~vbit
        l1_sharers[base] = 0
        l1_pref[s1] &= ~vbit
        l1_tpf[s1] &= ~vbit
        look1[line] = victim
        l1_stamp[base] = clk1
        clk1 += 1
        return ret

    def flush():
        """Deposit the accumulated deltas into the stats objects."""
        nonlocal h1, h2, h3, m3, ev1, wb1, ev2, wb2, ev3, wb3
        m2 = h3 + m3
        m1 = h2 + m2
        _flush_level_deltas(l1_stats, h1, m1, ev1, wb1, core)
        _flush_level_deltas(l2_stats, h2, m2, ev2, wb2, core)
        _flush_level_deltas(llc_stats, h3, m3, ev3, wb3, core)
        h1 = h2 = h3 = m3 = ev1 = wb1 = ev2 = wb2 = ev3 = wb3 = 0
        l1._clock = clk1

    def report():
        return h1, h2, h3, m3

    return walk, flush, report


def make_cache_level(
    backend,
    name,
    capacity_bytes,
    num_ways,
    line_size=64,
    replacement="lru",
    indexing="mod",
):
    """Construct a cache level for the chosen backend.

    ``object`` is the reference model, ``kernel`` the flat-array kernel,
    and ``seed`` the object model with its tag index disabled — the exact
    pre-optimization code path, kept for benchmarking against.
    """
    if backend == "kernel":
        return KernelCacheLevel(
            name, capacity_bytes, num_ways, line_size, replacement, indexing
        )
    if backend in ("object", "seed"):
        return CacheLevel(
            name,
            capacity_bytes,
            num_ways,
            line_size,
            replacement,
            indexing,
            tag_index=backend == "object",
        )
    raise ConfigurationError(
        f"unknown cache backend {backend!r}; pick one of {BACKENDS}"
    )
