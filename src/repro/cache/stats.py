"""Hit/miss/traffic counters for a cache level."""

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters accumulated by a cache level.

    All counts are since construction or the last :meth:`reset`; the perf
    subsystem (``repro.perf``) snapshots these to produce interval deltas.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0
    back_invalidations: int = 0
    prefetch_fills: int = 0
    prefetch_useful: int = 0
    per_domain_misses: dict = field(default_factory=dict)
    per_domain_accesses: dict = field(default_factory=dict)

    @property
    def hit_ratio(self):
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self):
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self):
        return (
            self.prefetch_useful / self.prefetch_fills if self.prefetch_fills else 0.0
        )

    def record_access(self, domain, hit):
        self.accesses += 1
        self.per_domain_accesses[domain] = self.per_domain_accesses.get(domain, 0) + 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.per_domain_misses[domain] = self.per_domain_misses.get(domain, 0) + 1

    def reset(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.fills = 0
        self.back_invalidations = 0
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        # Cleared in place: the fused kernel walk holds references.
        self.per_domain_misses.clear()
        self.per_domain_accesses.clear()

    def snapshot(self):
        """A plain-dict copy suitable for delta computation."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "fills": self.fills,
            "back_invalidations": self.back_invalidations,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_useful": self.prefetch_useful,
        }
