"""Cache lines and memory accesses."""

from dataclasses import dataclass, field

LINE_SIZE = 64
LINE_SHIFT = 6


@dataclass
class CacheLine:
    """One cache line's metadata within a set.

    ``sharers`` is a bitmask of cores that may hold the line in their inner
    (L1/L2) caches; it drives back-invalidation when an inclusive LLC evicts.
    """

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    sharers: int = 0
    prefetched: bool = False
    touched_after_prefetch: bool = False

    def reset(self):
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.sharers = 0
        self.prefetched = False
        self.touched_after_prefetch = False


@dataclass(frozen=True)
class MemoryAccess:
    """A single load or store observed by the memory system.

    ``pc`` feeds the IP-based prefetcher; ``tid`` identifies the hardware
    thread so accesses route to the right private caches and LLC way mask.
    """

    address: int
    is_write: bool = False
    pc: int = 0
    tid: int = 0

    @property
    def line_address(self):
        return self.address >> LINE_SHIFT

    @property
    def line_offset(self):
        return self.address & (LINE_SIZE - 1)


def line_of(address):
    """Return the line-aligned block number of a byte address."""
    return address >> LINE_SHIFT


def address_of_line(line):
    """Return the first byte address of a line-aligned block number."""
    return line << LINE_SHIFT


@dataclass
class AccessResult:
    """Outcome of one access walked through the hierarchy."""

    hit_level: str = "MEM"
    latency: int = 0
    llc_victim_line: int = -1
    back_invalidations: int = 0
    writebacks: int = 0
    prefetches_issued: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def is_llc_miss(self):
        return self.hit_level == "MEM"
