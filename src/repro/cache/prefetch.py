"""The four Sandy Bridge hardware prefetchers (paper Section 3.3).

1. DCU IP-prefetcher — per-PC stride detection, prefetches into L1.
2. DCU streamer — multiple reads of one line in a short window trigger a
   prefetch of the following line into L1.
3. MLC spatial prefetcher — completes the 128-byte-aligned line pair in L2.
4. MLC streamer — per-4KB-page ascending/descending stream detection,
   prefetches ahead into L2.

Each prefetcher exposes ``observe(access, hit) -> [line_number, ...]`` and
an ``enabled`` flag controlled through the MSR file (``repro.cpu.msr``).
"""

from collections import OrderedDict

PAGE_SHIFT = 12 - 6  # page number of a *line* number (4 KB pages, 64 B lines)


class _BoundedTable(OrderedDict):
    """A small LRU-evicting table modelling finite prefetcher state."""

    def __init__(self, max_entries):
        super().__init__()
        self.max_entries = max_entries

    def put(self, key, value):
        if key in self:
            del self[key]
        self[key] = value
        if len(self) > self.max_entries:
            self.popitem(last=False)


class DcuIpPrefetcher:
    """L1 prefetcher keyed by instruction pointer, detecting fixed strides."""

    target = "L1"

    def __init__(self, table_entries=64):
        self.enabled = True
        self._table = _BoundedTable(table_entries)

    def observe(self, access, hit):
        if not self.enabled or access.is_write:
            return []
        line = access.line_address
        state = self._table.get(access.pc)
        out = []
        if state is not None:
            last_line, last_stride, confirmed = state
            stride = line - last_line
            if stride != 0 and stride == last_stride:
                if confirmed:
                    out.append(line + stride)
                self._table.put(access.pc, (line, stride, True))
            else:
                self._table.put(access.pc, (line, stride, False))
        else:
            self._table.put(access.pc, (line, 0, False))
        return out


class DcuStreamerPrefetcher:
    """L1 next-line prefetcher triggered by repeated reads of one line."""

    target = "L1"

    def __init__(self, table_entries=32, trigger_reads=2):
        self.enabled = True
        self.trigger_reads = trigger_reads
        self._reads = _BoundedTable(table_entries)

    def observe(self, access, hit):
        if not self.enabled or access.is_write:
            return []
        line = access.line_address
        count = self._reads.get(line, 0) + 1
        self._reads.put(line, count)
        if count == self.trigger_reads:
            return [line + 1]
        return []


class MlcSpatialPrefetcher:
    """L2 prefetcher that completes the 128-byte-aligned line pair."""

    target = "L2"

    def __init__(self):
        self.enabled = True

    def observe(self, access, hit):
        if not self.enabled:
            return []
        line = access.line_address
        buddy = line ^ 1  # the other half of the aligned pair
        return [buddy]


class MlcStreamerPrefetcher:
    """L2 prefetcher tracking per-page monotonic streams."""

    target = "L2"

    def __init__(self, table_entries=32, degree=2):
        self.enabled = True
        self.degree = degree
        self._pages = _BoundedTable(table_entries)

    def observe(self, access, hit):
        if not self.enabled:
            return []
        line = access.line_address
        page = line >> PAGE_SHIFT
        state = self._pages.get(page)
        out = []
        if state is not None:
            last_line, direction, confidence = state
            step = line - last_line
            new_dir = 1 if step > 0 else (-1 if step < 0 else direction)
            if step != 0 and new_dir == direction:
                confidence = min(confidence + 1, 4)
            elif step != 0:
                confidence = 0
            if confidence >= 2:
                out = [line + new_dir * (k + 1) for k in range(self.degree)]
            self._pages.put(page, (line, new_dir, confidence))
        else:
            self._pages.put(page, (line, 1, 0))
        return out


class PrefetcherBank:
    """The per-core collection of all four prefetchers.

    ``observe_l1`` runs the DCU prefetchers on every L1 access;
    ``observe_l2`` runs the MLC prefetchers on every access that reaches L2.
    Both return (line_number, target_level) pairs; the hierarchy performs
    the fills so inclusion and way masks are honoured.
    """

    def __init__(self):
        self.dcu_ip = DcuIpPrefetcher()
        self.dcu_streamer = DcuStreamerPrefetcher()
        self.mlc_spatial = MlcSpatialPrefetcher()
        self.mlc_streamer = MlcStreamerPrefetcher()

    def all(self):
        return [self.dcu_ip, self.dcu_streamer, self.mlc_spatial, self.mlc_streamer]

    def set_all(self, enabled):
        for pf in self.all():
            pf.enabled = enabled

    def observe_l1(self, access, hit):
        out = []
        for pf in (self.dcu_ip, self.dcu_streamer):
            out.extend((line, pf.target) for line in pf.observe(access, hit))
        return out

    def observe_l2(self, access, hit):
        out = []
        for pf in (self.mlc_spatial, self.mlc_streamer):
            out.extend((line, pf.target) for line in pf.observe(access, hit))
        return out
