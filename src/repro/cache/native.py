"""On-demand compilation of the native pack-replay kernel.

``pairwalk.c`` (next to this module) implements the fused two-domain
lean replay loop over flat int64 state arrays. This module compiles it
once per source revision with whatever ``cc``/``gcc`` the host offers,
caches the shared object under the trace-pack cache directory, and
loads it with :mod:`ctypes`. Everything is best-effort: no compiler,
a failed compile, or ``REPRO_NATIVE=0`` simply means
:func:`pair_walk_fn` returns ``None`` and callers stay on the
pure-Python loop — results are bit-identical either way, the native
kernel is only faster.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

_ENV_GATE = "REPRO_NATIVE"
_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "pairwalk.c")

# Tri-state memo: unset -> not tried, None -> unavailable, else the
# ctypes function. Per-process, like the kernel's table memos.
_PAIR_WALK = ()


def enabled():
    """Native kernels are opt-out: ``REPRO_NATIVE=0`` disables them."""
    return os.environ.get(_ENV_GATE, "1").lower() not in ("0", "false", "off")


def _cache_dir():
    root = os.environ.get("REPRO_TRACE_CACHE")
    if not root:
        root = os.path.join(
            os.path.expanduser(os.environ.get("XDG_CACHE_HOME", "~/.cache")),
            "repro",
            "traces",
        )
    return os.path.join(os.path.expanduser(root), "native")


def _compiler():
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build_library():
    """Compile pairwalk.c -> cached .so; returns the path or None."""
    try:
        with open(_SOURCE, "rb") as fh:
            source = fh.read()
    except OSError:
        return None
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    target = os.path.join(cache, f"pairwalk-{digest}.so")
    if os.path.exists(target):
        return target
    cc = _compiler()
    if cc is None:
        return None
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, _SOURCE],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, target)  # atomic: concurrent builders converge
        return target
    except (OSError, subprocess.SubprocessError):
        return None


def pair_walk_fn():
    """The compiled ``repro_pair_walk`` entry point, or ``None``.

    The function takes raw pointers (as ``ctypes.c_void_p``) to the
    int64 column/state arrays plus the int32 recency tables; see
    pairwalk.c for the exact argument and ``cfg``/``out`` layouts.
    """
    global _PAIR_WALK
    if _PAIR_WALK != ():
        return _PAIR_WALK
    fn = None
    if enabled():
        path = _build_library()
        if path is not None:
            try:
                lib = ctypes.CDLL(path)
                fn = lib.repro_pair_walk
                fn.restype = ctypes.c_int64
            except OSError:
                fn = None
    _PAIR_WALK = fn
    return fn


def reset():
    """Forget the memoized library (tests toggle REPRO_NATIVE)."""
    global _PAIR_WALK
    _PAIR_WALK = ()
