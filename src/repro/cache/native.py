"""On-demand compilation of the native pack-replay kernels.

``pairwalk.c`` (the fused two-domain lean replay loop) and
``multiwalk.c`` (its N-domain, epoch-resumable generalization) live next
to this module. Each is compiled once per source revision with whatever
``cc``/``gcc`` the host offers, cached as a shared object under the
trace-pack cache directory, and loaded with :mod:`ctypes`. Everything is
best-effort: no compiler, a failed compile, or ``REPRO_NATIVE=0`` simply
means the ``*_fn`` accessors return ``None`` and callers stay on the
pure-Python loops — results are bit-identical either way, the native
kernels are only faster.

"Best-effort" no longer means "silent": the first failure per kernel is
recorded and :func:`kernel_status` reports it, so ``repro trace-sweep
--engine-stat`` (via ``format_engine_stat``) can answer "why is native
off?" without strace archaeology.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

_ENV_GATE = "REPRO_NATIVE"
_HERE = os.path.dirname(os.path.abspath(__file__))

# kernel name -> (C source next to this module, exported symbol)
_KERNELS = {
    "pairwalk": ("pairwalk.c", "repro_pair_walk"),
    "multiwalk": ("multiwalk.c", "repro_multi_walk"),
}

# Tri-state memo per kernel: absent -> not tried, None -> unavailable,
# else the ctypes function. Per-process, like the kernel's table memos.
_LOADED = {}
# kernel name -> human-readable reason it is unavailable (recorded once,
# on the first failed load attempt).
_REASONS = {}


def enabled():
    """Native kernels are opt-out: ``REPRO_NATIVE=0`` disables them."""
    return os.environ.get(_ENV_GATE, "1").lower() not in ("0", "false", "off")


def _cache_dir():
    root = os.environ.get("REPRO_TRACE_CACHE")
    if not root:
        root = os.path.join(
            os.path.expanduser(os.environ.get("XDG_CACHE_HOME", "~/.cache")),
            "repro",
            "traces",
        )
    return os.path.join(os.path.expanduser(root), "native")


def _compiler():
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _build_library(name):
    """Compile ``<name>.c`` -> cached .so; returns ``(path, reason)``.

    Exactly one of the pair is ``None``: a path on success, else the
    human-readable reason the kernel is unavailable.
    """
    filename, _ = _KERNELS[name]
    source_path = os.path.join(_HERE, filename)
    try:
        with open(source_path, "rb") as fh:
            source = fh.read()
    except OSError as exc:
        return None, f"source unreadable: {exc}"
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    target = os.path.join(cache, f"{name}-{digest}.so")
    if os.path.exists(target):
        return target, None
    cc = _compiler()
    if cc is None:
        return None, "no C compiler found ($CC, cc, gcc, clang)"
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp, source_path],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            stderr = proc.stderr.decode("utf-8", "replace").strip()
            first = stderr.splitlines()[0] if stderr else "no diagnostics"
            return None, f"{cc} failed: {first}"
        os.replace(tmp, target)  # atomic: concurrent builders converge
        return target, None
    except (OSError, subprocess.SubprocessError) as exc:
        return None, f"compile error: {exc}"


def _load(name):
    """Tri-state load of one kernel; records the failure reason once."""
    if name in _LOADED:
        return _LOADED[name]
    fn = None
    if not enabled():
        _REASONS[name] = (
            f"disabled ({_ENV_GATE}={os.environ.get(_ENV_GATE)!r})"
        )
    else:
        path, reason = _build_library(name)
        if path is None:
            _REASONS[name] = reason
        else:
            try:
                lib = ctypes.CDLL(path)
                fn = getattr(lib, _KERNELS[name][1])
                fn.restype = ctypes.c_int64
            except (OSError, AttributeError) as exc:
                fn = None
                _REASONS[name] = f"load failed: {exc}"
    _LOADED[name] = fn
    return fn


def pair_walk_fn():
    """The compiled ``repro_pair_walk`` entry point, or ``None``.

    The function takes raw pointers (as ``ctypes.c_void_p``) to the
    int64 column/state arrays plus the int32 recency tables; see
    pairwalk.c for the exact argument and ``cfg``/``out`` layouts.
    """
    return _load("pairwalk")


def multi_walk_fn():
    """The compiled ``repro_multi_walk`` entry point, or ``None``.

    See multiwalk.c for the argument list and the persistent
    ``cfg``/``dom``/``sched`` buffer layouts; the Python owner of those
    buffers is :func:`repro.cache.kernel.build_native_epoch_replay`.
    """
    return _load("multiwalk")


def kernel_status():
    """``{kernel: "ok" | reason}`` for every native kernel.

    Forces a load attempt for kernels not yet tried, so the answer is
    definitive — this backs the ``native-kernel`` lines in
    ``format_engine_stat`` / ``repro trace-sweep --engine-stat``.
    """
    status = {}
    for name in _KERNELS:
        if _load(name) is not None:
            status[name] = "ok"
        else:
            status[name] = _REASONS.get(name, "unavailable")
    return status


def reset():
    """Forget the memoized libraries (tests toggle REPRO_NATIVE)."""
    _LOADED.clear()
    _REASONS.clear()
