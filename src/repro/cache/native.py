"""On-demand compilation of the native pack-replay kernels.

``pairwalk.c`` (the fused two-domain lean replay loop), ``multiwalk.c``
(its N-domain, epoch-resumable generalization), ``batchwalk.c`` (the
batched, multi-threaded driver that replays a whole roster of
independent cells in one call) and ``epochbatch.c`` (the batched driver
made epoch-resumable: one threaded call advances every *active* cell by
one epoch, host-side controller logic in between) live next to this
module. Each is
compiled once per (source revision, flag set) with whatever
``cc``/``gcc`` the host offers, cached as a shared object under the
trace-pack cache directory, and loaded with :mod:`ctypes`. Everything is
best-effort: no compiler, a failed compile, or ``REPRO_NATIVE=0`` simply
means the ``*_fn`` accessors return ``None`` and callers stay on the
pure-Python loops — results are bit-identical either way, the native
kernels are only faster.

"Best-effort" no longer means "silent": the first failure per kernel is
recorded and :func:`kernel_status` reports it, so ``repro trace-sweep
--engine-stat`` (via ``format_engine_stat``) can answer "why is native
off?" without strace archaeology. The same policy covers threading:
``batchwalk`` is built with ``-fopenmp`` only after a tiny ``#pragma
omp`` translation unit compiles and links, falling back to a pthread
worker loop and finally to the serial batched loop, and
:func:`threading_status` records which mode won and why the stronger
ones lost.
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile

_ENV_GATE = "REPRO_NATIVE"
_ENV_THREADS = "REPRO_NATIVE_THREADS"
_HERE = os.path.dirname(os.path.abspath(__file__))

# kernel name -> (C source next to this module, exported symbols)
_KERNELS = {
    "pairwalk": ("pairwalk.c", ("repro_pair_walk",)),
    "multiwalk": ("multiwalk.c", ("repro_multi_walk",)),
    "batchwalk": (
        "batchwalk.c",
        ("repro_batch_walk", "repro_batch_profile", "repro_batch_threading"),
    ),
    "epochbatch": (
        "epochbatch.c",
        ("repro_epoch_batch", "repro_batch_threading"),
    ),
}

# kernel name -> sources it textually #includes: folded into the cache
# digest so an edit to an included file rebuilds the including object.
_INCLUDED = {
    "batchwalk": ("multiwalk.c",),
    "epochbatch": ("batchwalk.c", "multiwalk.c"),
}

# Kernels built on batchwalk.c's run_items worker pool: compiled with
# the probed threading flags, annotated with their mode in kernel_status.
_THREADED_KERNELS = ("batchwalk", "epochbatch")

# Tri-state memo per kernel: absent -> not tried, None -> unavailable,
# else {symbol: ctypes function}. Per-process, like the kernel's table
# memos.
_LOADED = {}
# kernel name -> human-readable reason it is unavailable (recorded once,
# on the first failed load attempt).
_REASONS = {}
# Memoized threading probe result, or None when not yet probed.
_THREADING = None

_NO_COMPILER = "no C compiler found ($CC, cc, gcc, clang)"

_OMP_PROBE_TU = """\
#include <omp.h>
int repro_omp_probe(void) {
    int n = 0;
#pragma omp parallel for
    for (int i = 0; i < 4; i++)
        n += omp_get_thread_num();
    return n;
}
"""

_PTHREAD_PROBE_TU = """\
#include <pthread.h>
static void *repro_noop(void *arg) { return arg; }
int repro_pthread_probe(void) {
    pthread_t t;
    if (pthread_create(&t, 0, repro_noop, 0) != 0)
        return 1;
    pthread_join(t, 0);
    return 0;
}
"""


def enabled():
    """Native kernels are opt-out: ``REPRO_NATIVE=0`` disables them."""
    return os.environ.get(_ENV_GATE, "1").lower() not in ("0", "false", "off")


def _cache_dir():
    root = os.environ.get("REPRO_TRACE_CACHE")
    if not root:
        root = os.path.join(
            os.path.expanduser(os.environ.get("XDG_CACHE_HOME", "~/.cache")),
            "repro",
            "traces",
        )
    return os.path.join(os.path.expanduser(root), "native")


def _compiler():
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _probe_compile(cc, flags, source):
    """Compile a throwaway TU with ``flags``; ``None`` on success, else
    the first diagnostic line."""
    tmpdir = tempfile.mkdtemp(prefix="repro-probe-")
    try:
        tu = os.path.join(tmpdir, "probe.c")
        out = os.path.join(tmpdir, "probe.so")
        with open(tu, "w", encoding="utf-8") as fh:
            fh.write(source)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", *flags, "-o", out, tu],
            capture_output=True,
            timeout=60,
        )
        if proc.returncode == 0:
            return None
        stderr = proc.stderr.decode("utf-8", "replace").strip()
        return stderr.splitlines()[0] if stderr else "no diagnostics"
    except (OSError, subprocess.SubprocessError) as exc:
        return str(exc)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _threading_probe():
    """Pick batchwalk's threading flags: ``{"flags", "mode", "reason"}``.

    ``mode`` is ``"openmp"`` / ``"pthreads"`` / ``"serial"``; ``reason``
    says why a stronger mode lost (``None`` when OpenMP won). Memoized:
    the probe compiles up to two throwaway TUs, once per process.
    """
    global _THREADING
    if _THREADING is not None:
        return _THREADING
    cc = _compiler()
    if cc is None:
        _THREADING = {"flags": (), "mode": "serial", "reason": _NO_COMPILER}
        return _THREADING
    omp_fail = _probe_compile(cc, ("-fopenmp",), _OMP_PROBE_TU)
    if omp_fail is None:
        _THREADING = {"flags": ("-fopenmp",), "mode": "openmp",
                      "reason": None}
        return _THREADING
    pthread_fail = _probe_compile(cc, ("-pthread",), _PTHREAD_PROBE_TU)
    if pthread_fail is None:
        _THREADING = {
            "flags": ("-pthread", "-DREPRO_BATCH_PTHREADS"),
            "mode": "pthreads",
            "reason": f"openmp probe failed: {omp_fail}",
        }
        return _THREADING
    _THREADING = {
        "flags": (),
        "mode": "serial",
        "reason": (
            f"openmp probe failed: {omp_fail}; "
            f"pthread probe failed: {pthread_fail}"
        ),
    }
    return _THREADING


def _kernel_flags(name):
    """Extra compile flags for one kernel (probed, for batched ones)."""
    if name in _THREADED_KERNELS:
        return tuple(_threading_probe()["flags"])
    return ()


def _build_library(name):
    """Compile ``<name>.c`` -> cached .so; returns ``(path, reason)``.

    Exactly one of the pair is ``None``: a path on success, else the
    human-readable reason the kernel is unavailable. The cache digest
    covers both the source bytes and the chosen flags, so an OpenMP
    build and a serial fallback build never collide.
    """
    filename, _ = _KERNELS[name]
    flags = _kernel_flags(name)
    source_path = os.path.join(_HERE, filename)
    try:
        with open(source_path, "rb") as fh:
            source = fh.read()
    except OSError as exc:
        return None, f"source unreadable: {exc}"
    hasher = hashlib.sha256(source)
    for flag in flags:
        hasher.update(flag.encode("utf-8"))
    for included in _INCLUDED.get(name, ()):
        try:
            with open(os.path.join(_HERE, included), "rb") as fh:
                hasher.update(fh.read())
        except OSError as exc:
            return None, f"source unreadable: {exc}"
    digest = hasher.hexdigest()[:16]
    cache = _cache_dir()
    target = os.path.join(cache, f"{name}-{digest}.so")
    if os.path.exists(target):
        return target, None
    cc = _compiler()
    if cc is None:
        return None, _NO_COMPILER
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", *flags, "-o", tmp, source_path],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            stderr = proc.stderr.decode("utf-8", "replace").strip()
            first = stderr.splitlines()[0] if stderr else "no diagnostics"
            return None, f"{cc} failed: {first}"
        os.replace(tmp, target)  # atomic: concurrent builders converge
        return target, None
    except (OSError, subprocess.SubprocessError) as exc:
        return None, f"compile error: {exc}"


def _load(name):
    """Tri-state load of one kernel; records the failure reason once."""
    if name in _LOADED:
        return _LOADED[name]
    fns = None
    if not enabled():
        _REASONS[name] = (
            f"disabled ({_ENV_GATE}={os.environ.get(_ENV_GATE)!r})"
        )
    else:
        path, reason = _build_library(name)
        if path is None:
            _REASONS[name] = reason
        else:
            try:
                lib = ctypes.CDLL(path)
                fns = {}
                for symbol in _KERNELS[name][1]:
                    fn = getattr(lib, symbol)
                    fn.restype = ctypes.c_int64
                    fns[symbol] = fn
            except (OSError, AttributeError) as exc:
                fns = None
                _REASONS[name] = f"load failed: {exc}"
    _LOADED[name] = fns
    return fns


def _symbol(name, symbol):
    fns = _load(name)
    return None if fns is None else fns.get(symbol)


def pair_walk_fn():
    """The compiled ``repro_pair_walk`` entry point, or ``None``.

    The function takes raw pointers (as ``ctypes.c_void_p``) to the
    int64 column/state arrays plus the int32 recency tables; see
    pairwalk.c for the exact argument and ``cfg``/``out`` layouts.
    """
    return _symbol("pairwalk", "repro_pair_walk")


def multi_walk_fn():
    """The compiled ``repro_multi_walk`` entry point, or ``None``.

    See multiwalk.c for the argument list and the persistent
    ``cfg``/``dom``/``sched`` buffer layouts; the Python owner of those
    buffers is :func:`repro.cache.kernel.build_native_epoch_replay`.
    """
    return _symbol("multiwalk", "repro_multi_walk")


def batch_walk_fn():
    """The compiled ``repro_batch_walk`` entry point, or ``None``.

    One call replays every cell of a roster / way sweep against
    contiguous per-cell state banks; see batchwalk.c for the ``bcfg``
    layout and :func:`repro.cache.kernel.build_native_batch_replay` for
    the Python owner of the banks.
    """
    return _symbol("batchwalk", "repro_batch_walk")


def batch_profile_fn():
    """The compiled ``repro_batch_profile`` entry point, or ``None``.

    Set-sharded UMON stack-distance profiling over pack columns; the
    Python caller is :func:`repro.cache.profile_np.profile_pack`.
    """
    return _symbol("batchwalk", "repro_batch_profile")


def epoch_batch_fn():
    """The compiled ``repro_epoch_batch`` entry point, or ``None``.

    Advances only the cells named by the ``active`` index list, each to
    its own per-cell ``cfg[CFG_STOP]`` target, leaving all resumable
    walk state in the caller-owned banks between calls; see
    epochbatch.c for the argument list and
    :func:`repro.cache.kernel.build_native_epoch_batch_replay` for the
    Python owner of the banks.
    """
    return _symbol("epochbatch", "repro_epoch_batch")


def threading_status(kernel="batchwalk"):
    """``{"mode": ..., "reason": ...}`` for a batched kernel's threading.

    ``mode`` is ``"openmp"``, ``"pthreads"`` or ``"serial"``; ``reason``
    explains any fallback (``None`` when OpenMP won cleanly). When the
    named kernel actually loaded, the compiled object's own
    ``repro_batch_threading()`` report wins over the probe's prediction,
    so the answer describes the code that will run, not the flags that
    were requested. ``kernel`` may be any of the run_items-pool kernels
    (``batchwalk``, ``epochbatch``).
    """
    if not enabled():
        return {
            "mode": "serial",
            "reason": (
                f"disabled ({_ENV_GATE}={os.environ.get(_ENV_GATE)!r})"
            ),
        }
    probe = _threading_probe()
    mode, reason = probe["mode"], probe["reason"]
    fn = _symbol(kernel, "repro_batch_threading")
    if fn is not None:
        compiled = {2: "openmp", 1: "pthreads", 0: "serial"}.get(
            int(fn()), "unknown"
        )
        if compiled != mode:
            reason = (
                f"probe chose {mode} but the compiled object reports "
                f"{compiled}"
            )
            mode = compiled
    return {"mode": mode, "reason": reason}


def resolve_native_threads(allocations, threads=None):
    """Worker-thread count for one batched native call.

    Mirrors :func:`repro.exec.pool.resolve_workers`: an explicit
    ``threads`` argument wins, else ``REPRO_NATIVE_THREADS`` (whitespace
    counts as unset), else ``min(usable CPUs, allocations)`` — a batch
    of R cells never needs more than R threads.
    """
    from repro.exec.pool import usable_cpus
    from repro.util.errors import ValidationError

    if threads is None:
        env = os.environ.get(_ENV_THREADS, "").strip()
        if env:
            try:
                threads = int(env)
            except ValueError:
                raise ValidationError(
                    f"{_ENV_THREADS} must be an integer, got {env!r}"
                ) from None
        else:
            threads = min(usable_cpus(), max(1, allocations))
    if threads < 1:
        raise ValidationError("native threads must be >= 1")
    return threads


def kernel_status():
    """``{kernel: "ok" | reason}`` for every native kernel.

    Forces a load attempt for kernels not yet tried, so the answer is
    definitive — this backs the ``native-kernel`` lines in
    ``format_engine_stat`` / ``repro trace-sweep --engine-stat``. The
    batch kernel's "ok" carries its threading mode (and the probe
    failure that forced a fallback), e.g. ``ok [openmp]`` or
    ``ok [serial; openmp probe failed: ...]``.
    """
    status = {}
    for name in _KERNELS:
        if _load(name) is not None:
            if name in _THREADED_KERNELS:
                threading = threading_status(name)
                if threading["reason"]:
                    status[name] = (
                        f"ok [{threading['mode']}; {threading['reason']}]"
                    )
                else:
                    status[name] = f"ok [{threading['mode']}]"
            else:
                status[name] = "ok"
        else:
            status[name] = _REASONS.get(name, "unavailable")
    return status


def reset():
    """Forget the memoized libraries (tests toggle REPRO_NATIVE)."""
    global _THREADING
    _LOADED.clear()
    _REASONS.clear()
    _THREADING = None
