"""Single-pass way-profiling: LRU stack distances and way counters.

Hardware utility monitors (UCP's UMON, and the lightweight occupancy
profiling Com-CAS/LFOC-style schedulers rely on) exploit the LRU stack
inclusion property: if an access hits at stack distance ``d`` in a set,
it hits in *any* allocation of more than ``d`` ways. One replay that
records the per-set stack-distance histogram therefore answers
``hits(ways)`` for every allocation ``1..W`` at once — no per-mask
re-simulation.

:class:`WayProfiler` maintains one auxiliary tag directory per domain
(exactly a UMON: each domain is profiled as if it had the cache to
itself) and truncates each per-set stack at ``num_ways`` entries, so the
cost per access is one bounded ``list.index`` instead of a cache-model
walk. Under true LRU the resulting curve is *exact* — it equals a
brute-force re-simulation at every way count, which
:func:`verify_profile` (and the tests) check literally.

:class:`WaySweep` wraps the profiler in the LLC's default geometry and
is what the trace engine, the MRC calibration fast path, and the
``repro trace-sweep`` CLI command drive.
"""

from dataclasses import dataclass

from repro.cache.block import MemoryAccess
from repro.cache.cache import _INDEXING
from repro.cache.kernel import make_cache_level
from repro.util.errors import ConfigurationError, ValidationError

LLC_NUM_SETS = 8192  # 6 MB / (12 ways x 64 B lines)
LLC_NUM_WAYS = 12


@dataclass
class WayCurve:
    """One domain's profiled utility curve: hits under every allocation."""

    num_ways: int
    accesses: int
    histogram: list  # histogram[d] = accesses at stack distance d;
    # histogram[num_ways] = accesses beyond every allocation (cold or deep)

    def __post_init__(self):
        # hits()/miss_ratio()/marginal_hits() sit inside solver loops, so
        # the prefix sums are materialized once; _cum[w] = hits with w ways.
        cum = [0] * (self.num_ways + 1)
        total = 0
        for ways, count in enumerate(self.histogram[: self.num_ways], start=1):
            total += count
            cum[ways] = total
        self._cum = cum

    def hits(self, ways):
        """Hits this domain would see alone with ``ways`` ways per set."""
        if not 1 <= ways <= self.num_ways:
            raise ValidationError(f"ways must be in 1..{self.num_ways}")
        return self._cum[ways]

    def misses(self, ways):
        return self.accesses - self.hits(ways)

    def miss_ratio(self, ways):
        return self.misses(ways) / self.accesses if self.accesses else 0.0

    def marginal_hits(self, ways):
        """Extra hits contributed by the ``ways``-th way (UCP's utility)."""
        if not 1 <= ways <= self.num_ways:
            raise ValidationError(f"ways must be in 1..{self.num_ways}")
        return self.histogram[ways - 1]

    def curve(self):
        """``{ways: hits}`` for every allocation 1..W."""
        return {w: self.hits(w) for w in range(1, self.num_ways + 1)}


class WayProfiler:
    """Per-domain, per-set LRU stack-distance profiler (UMON-style)."""

    def __init__(self, num_sets=LLC_NUM_SETS, num_ways=LLC_NUM_WAYS,
                 indexing="mod", num_domains=1):
        if num_ways < 1:
            raise ConfigurationError("profiler needs at least one way")
        if num_domains < 1:
            raise ConfigurationError("profiler needs at least one domain")
        if indexing not in _INDEXING:
            raise ConfigurationError(f"unknown indexing scheme {indexing!r}")
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.num_domains = num_domains
        self._indexer = _INDEXING[indexing](num_sets)
        self._stacks = [
            [[] for _ in range(num_sets)] for _ in range(num_domains)
        ]
        self._hist = [[0] * (num_ways + 1) for _ in range(num_domains)]
        self._accesses = [0] * num_domains

    def observe(self, line_number, domain=0):
        """Record one access; updates the domain's stack-distance histogram."""
        stack = self._stacks[domain][self._indexer.index(line_number)]
        try:
            distance = stack.index(line_number)
        except ValueError:
            self._hist[domain][self.num_ways] += 1
            stack.insert(0, line_number)
            if len(stack) > self.num_ways:
                stack.pop()
        else:
            self._hist[domain][distance] += 1
            if distance:
                del stack[distance]
                stack.insert(0, line_number)
        self._accesses[domain] += 1

    def curve(self, domain=0):
        return WayCurve(
            num_ways=self.num_ways,
            accesses=self._accesses[domain],
            histogram=list(self._hist[domain]),
        )

    def curves(self):
        return {d: self.curve(d) for d in range(self.num_domains)}

    def accesses(self, domain=0):
        return self._accesses[domain]

    def snapshot(self):
        """Per-domain histogram/access copies, for windowed (delta) curves.

        Callers that warm the profiler's directory on a prefix of the
        trace snapshot here, replay the measured window, and subtract —
        :func:`delta_curve` builds the windowed curve.
        """
        return [list(h) for h in self._hist], list(self._accesses)

    def delta_curve(self, snapshot, domain=0):
        """The WayCurve accumulated since ``snapshot`` for ``domain``."""
        hists, accesses = snapshot
        return WayCurve(
            num_ways=self.num_ways,
            accesses=self._accesses[domain] - accesses[domain],
            histogram=[
                now - then
                for now, then in zip(self._hist[domain], hists[domain])
            ],
        )


def _line_of(item):
    return item.line_address if isinstance(item, MemoryAccess) else int(item)


class WaySweep:
    """Answer hits/misses under every allocation 1..W from one replay."""

    def __init__(self, num_sets=LLC_NUM_SETS, num_ways=LLC_NUM_WAYS,
                 indexing="hash", num_domains=1, domain_of=None):
        self.num_sets = num_sets
        self.num_ways = num_ways
        self.indexing = indexing
        self.num_domains = num_domains
        # tid -> domain mapping mirrors the hierarchy's pairwise mapping.
        self._domain_of = domain_of or (
            (lambda acc: acc.tid // 2 if isinstance(acc, MemoryAccess) else 0)
            if num_domains > 1
            else (lambda acc: 0)
        )

    def run(self, trace_factory):
        """Replay once; returns ``{domain: WayCurve}``."""
        from repro.perf import engine_counters as ec

        profiler = WayProfiler(
            self.num_sets, self.num_ways, self.indexing, self.num_domains
        )
        observe = profiler.observe
        domain_of = self._domain_of
        for item in trace_factory():
            observe(_line_of(item), domain_of(item))
        ec.add(ec.PROFILER_PASSES)
        return profiler.curves()

    def run_single(self, trace_factory):
        """Replay a single-domain trace; returns its WayCurve."""
        return self.run(trace_factory)[0]

    def run_pack(self, pack, domains=None, use_native=True):
        """Profile a compiled :class:`TracePack` on the vectorized fast
        path; bit-identical to :meth:`run` over the same stream.
        ``use_native`` forwards to :func:`profile_pack`: the batched C
        profiler when available, identical histograms either way."""
        from repro.cache.profile_np import profile_pack

        return profile_pack(
            pack, self.num_sets, self.num_ways, self.indexing,
            self.num_domains, domains=domains, use_native=use_native,
        )


def brute_force_hits(trace_factory, ways, num_sets=LLC_NUM_SETS,
                     indexing="hash", line_size=64, backend="object"):
    """Ground truth: replay through a standalone ``ways``-way LRU cache.

    The geometry pins ``num_sets`` while varying associativity, exactly
    what an LLC way mask of size ``ways`` does for a lone domain.
    """
    level = make_cache_level(
        backend,
        f"sweep-{ways}w",
        num_sets * ways * line_size,
        ways,
        line_size=line_size,
        replacement="lru",
        indexing=indexing,
    )
    hits = 0
    for item in trace_factory():
        line = _line_of(item)
        if level.access(line):
            hits += 1
        else:
            level.fill(line)
    return hits


def verify_profile(trace_factory, way_counts=None, num_sets=LLC_NUM_SETS,
                   num_ways=LLC_NUM_WAYS, indexing="hash", backend="object",
                   use_pack=False):
    """Compare the single-pass profile to per-mask re-simulation.

    Returns ``[(ways, profiled_hits, brute_hits), ...]``; the two columns
    must be equal under true LRU. Raises ValidationError on any mismatch
    so callers (CLI ``--check``, CI) fail loudly.

    With ``use_pack`` both columns replay the compiled trace pack — the
    profile on the vectorized pack profiler, the brute-force passes over
    the pack's raw line column — so a disk-cached pack verifies without
    regenerating the trace N+1 times.
    """
    ways_list = list(way_counts or range(1, num_ways + 1))
    sweep = WaySweep(num_sets, num_ways, indexing)
    if use_pack:
        from repro.workloads.tracepack import get_pack

        pack = get_pack(trace_factory())
        curve = sweep.run_pack(pack)[0]
        source = pack.lines_list
    else:
        curve = sweep.run_single(trace_factory)
        source = trace_factory
    rows = []
    for ways in ways_list:
        brute = brute_force_hits(
            source, ways, num_sets=num_sets, indexing=indexing,
            backend=backend,
        )
        rows.append((ways, curve.hits(ways), brute))
    mismatched = [(w, p, b) for w, p, b in rows if p != b]
    if mismatched:
        raise ValidationError(
            f"profiled hits diverge from re-simulation at {mismatched}"
        )
    return rows
