"""Page-coloring (set) partitioning — the software alternative.

The paper's related work (Cho & Jin, Tam et al., Lin et al.) partitions
the LLC by *sets* through OS page placement: a page's color — the LLC
set-index bits inside its physical frame number — decides which sets its
lines can occupy. It needs no special hardware, but repartitioning means
*recoloring* pages (copying them to frames of another color), which is
expensive, and the number of partitions is fixed by the page size.

This module models that scheme over the same cache substrate so the
way-vs-set comparison the paper draws (Section 7: "our approach can
change LLC partitions much more quickly and with minimal overhead") can
be measured directly — see ``benchmarks/test_ablation_coloring.py``.
"""

from dataclasses import dataclass

from repro.cache.cache import CacheLevel
from repro.util.errors import ConfigurationError, ValidationError

PAGE_BYTES = 4096
PAGE_LINES = PAGE_BYTES // 64

# Cost of recoloring one page: copy 4 KB + update mappings + TLB work.
# Measured numbers on the era's hardware are ~3-5 microseconds/page.
RECOLOR_SECONDS_PER_PAGE = 4e-6


@dataclass(frozen=True)
class ColorAssignment:
    """A domain's set of page colors."""

    domain: int
    colors: frozenset


class ColoredLLC:
    """An LLC partitioned by page color instead of by way.

    The cache is modulo-indexed (page coloring is impossible under a
    hashed index — one of its practical limitations on later hardware).
    A domain's accesses are *remapped* into its colors, modelling the OS
    placing the domain's pages only in frames of those colors.
    """

    def __init__(
        self,
        capacity_bytes=6 * 1024 * 1024,
        num_ways=12,
        line_size=64,
        num_domains=4,
    ):
        self.storage = CacheLevel(
            "LLC-colored",
            capacity_bytes,
            num_ways,
            line_size=line_size,
            replacement="plru",
            indexing="mod",
        )
        sets = self.storage.num_sets
        self.sets_per_color = PAGE_LINES
        if sets % self.sets_per_color:
            raise ConfigurationError("sets must divide evenly into page colors")
        self.num_colors = sets // self.sets_per_color
        self.num_domains = num_domains
        self._colors = {
            d: frozenset(range(self.num_colors)) for d in range(num_domains)
        }
        self.recolored_pages = 0
        self.recolor_cost_s = 0.0
        self._page_map = {}  # (domain, virtual page) -> colored frame page

    # -- partition control ---------------------------------------------------

    def colors_of(self, domain):
        return self._colors[domain]

    def capacity_fraction(self, domain):
        return len(self._colors[domain]) / self.num_colors

    def set_colors(self, domain, colors, resident_pages=0):
        """Reassign a domain's colors.

        Unlike way repartitioning, this has a *cost*: the domain's
        ``resident_pages`` whose current color fell out of the new set
        must be copied to differently-colored frames. The model counts
        that cost; callers charge it to the timeline.
        """
        colors = frozenset(colors)
        if not colors:
            raise ValidationError("a domain needs at least one color")
        if any(not 0 <= c < self.num_colors for c in colors):
            raise ValidationError("color out of range")
        old = self._colors[domain]
        removed = old - colors
        if removed and resident_pages:
            moved = int(resident_pages * len(removed) / max(len(old), 1))
            self.recolored_pages += moved
            self.recolor_cost_s += moved * RECOLOR_SECONDS_PER_PAGE
        self._colors[domain] = colors
        # Remappings change: drop stale translations for this domain.
        self._page_map = {
            key: frame for key, frame in self._page_map.items() if key[0] != domain
        }

    # -- accesses ------------------------------------------------------------------

    def _frame_page(self, domain, line_number):
        """Map a virtual page to a frame whose color the domain owns."""
        virtual_page = line_number // PAGE_LINES
        key = (domain, virtual_page)
        frame = self._page_map.get(key)
        if frame is None:
            colors = sorted(self._colors[domain])
            color = colors[virtual_page % len(colors)]
            # Keep distinct virtual pages of one color in distinct frames
            # by folding the page number into the frame's upper bits.
            frame = (virtual_page // len(colors)) * self.num_colors + color
            self._page_map[key] = frame
        return frame

    def access(self, line_number, is_write=False, domain=0):
        mapped = self._mapped_line(domain, line_number)
        hit = self.storage.access(mapped, is_write=is_write, domain=domain)
        if not hit:
            self.storage.fill(mapped, is_write=is_write, domain=domain)
        return hit

    def _mapped_line(self, domain, line_number):
        frame = self._frame_page(domain, line_number)
        return frame * PAGE_LINES + line_number % PAGE_LINES

    # -- introspection ---------------------------------------------------------------

    def occupancy(self):
        return self.storage.occupancy()

    def occupancy_by_color(self):
        counts = [0] * self.num_colors
        for set_idx, cache_set in enumerate(self.storage._sets):
            color = set_idx // self.sets_per_color
            counts[color] += sum(1 for cl in cache_set if cl.valid)
        return counts

    def partitions_available(self):
        """Page coloring's granularity limit: one partition per color."""
        return self.num_colors
