"""Address-level cache hierarchy simulator.

This package implements the memory system of the paper's prototype Sandy
Bridge platform (Section 2.1):

- private 32 KB L1 data caches and 256 KB non-inclusive L2s per core,
- a shared, inclusive, 12-way 6 MB last-level cache (LLC) with *way-based
  partitioning*: each scheduling domain (core) may only **replace** lines in
  its assigned ways, but **hits anywhere** in the cache, and changing the
  way assignment never flushes data,
- tree-PLRU replacement, a hashed LLC index, and the four Sandy Bridge
  hardware prefetchers.

The interval engine (:mod:`repro.sim`) uses statistical models for speed;
this package is the ground truth for mechanism behaviour and is exercised
directly by the microbenchmarks and the MRC calibration utilities.
"""

from repro.cache.block import CacheLine, MemoryAccess
from repro.cache.cache import CacheLevel
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.indexing import HashedIndex, ModuloIndex
from repro.cache.kernel import BACKENDS, KernelCacheLevel, make_cache_level
from repro.cache.llc import PartitionedLLC, WayMask
from repro.cache.profile import WayCurve, WayProfiler, WaySweep, verify_profile
from repro.cache.prefetch import (
    DcuIpPrefetcher,
    DcuStreamerPrefetcher,
    MlcSpatialPrefetcher,
    MlcStreamerPrefetcher,
    PrefetcherBank,
)
from repro.cache.replacement import PseudoLruTree, TrueLru
from repro.cache.stats import CacheStats

__all__ = [
    "BACKENDS",
    "CacheHierarchy",
    "CacheLevel",
    "CacheLine",
    "CacheStats",
    "DcuIpPrefetcher",
    "DcuStreamerPrefetcher",
    "HashedIndex",
    "KernelCacheLevel",
    "MemoryAccess",
    "MlcSpatialPrefetcher",
    "MlcStreamerPrefetcher",
    "ModuloIndex",
    "PartitionedLLC",
    "PrefetcherBank",
    "PseudoLruTree",
    "TrueLru",
    "WayCurve",
    "WayMask",
    "WayProfiler",
    "WaySweep",
    "make_cache_level",
    "verify_profile",
]
