"""Set-index functions.

The paper attributes the absence of working-set knees partly to
"randomized LLC-indexing functions" (Section 3.2). ``HashedIndex``
XOR-folds upper address bits into the index the way Sandy Bridge's LLC
hash spreads accesses; ``ModuloIndex`` is the textbook power-of-two index
used by the inner caches.
"""

from repro.util.errors import ConfigurationError


class ModuloIndex:
    """index = line_number mod num_sets (num_sets must be a power of two)."""

    def __init__(self, num_sets):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ConfigurationError("num_sets must be a positive power of two")
        self.num_sets = num_sets
        self._mask = num_sets - 1

    def index(self, line_number):
        return line_number & self._mask


class HashedIndex:
    """XOR-folded index that mixes upper address bits into the set index."""

    def __init__(self, num_sets):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ConfigurationError("num_sets must be a positive power of two")
        self.num_sets = num_sets
        self._mask = num_sets - 1
        self._bits = num_sets.bit_length() - 1

    def index(self, line_number):
        folded = line_number
        acc = 0
        while folded:
            acc ^= folded & self._mask
            folded >>= self._bits
        # A final multiplicative mix decorrelates strided patterns.
        acc = (acc * 0x9E3779B1) & 0xFFFFFFFF
        return (acc >> 8) & self._mask if self.num_sets <= (1 << 24) else acc & self._mask
