"""Set-index functions.

The paper attributes the absence of working-set knees partly to
"randomized LLC-indexing functions" (Section 3.2). ``HashedIndex``
XOR-folds upper address bits into the index the way Sandy Bridge's LLC
hash spreads accesses; ``ModuloIndex`` is the textbook power-of-two index
used by the inner caches.
"""

from repro.util.errors import ConfigurationError


class ModuloIndex:
    """index = line_number mod num_sets (num_sets must be a power of two)."""

    def __init__(self, num_sets):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ConfigurationError("num_sets must be a positive power of two")
        self.num_sets = num_sets
        self._mask = num_sets - 1

    def index(self, line_number):
        return line_number & self._mask

    def index_array(self, line_numbers):
        """Vectorized :meth:`index` over an int64 NumPy column."""
        import numpy as np

        lines = np.asarray(line_numbers, dtype=np.int64)
        return lines & np.int64(self._mask)


class HashedIndex:
    """XOR-folded index that mixes upper address bits into the set index."""

    def __init__(self, num_sets):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ConfigurationError("num_sets must be a positive power of two")
        self.num_sets = num_sets
        self._mask = num_sets - 1
        self._bits = num_sets.bit_length() - 1

    def index(self, line_number):
        folded = line_number
        acc = 0
        while folded:
            acc ^= folded & self._mask
            folded >>= self._bits
        # A final multiplicative mix decorrelates strided patterns.
        acc = (acc * 0x9E3779B1) & 0xFFFFFFFF
        return (acc >> 8) & self._mask if self.num_sets <= (1 << 24) else acc & self._mask

    def index_array(self, line_numbers):
        """Vectorized :meth:`index` over an int64 NumPy column.

        XOR-folding an element already at zero is a no-op, so running the
        fold until *every* element is exhausted gives each element exactly
        the same accumulator the scalar loop produces.
        """
        import numpy as np

        folded = np.asarray(line_numbers, dtype=np.int64).astype(np.uint64)
        acc = np.zeros(folded.shape, dtype=np.uint64)
        mask = np.uint64(self._mask)
        bits = np.uint64(self._bits)
        while folded.any():
            acc ^= folded & mask
            folded >>= bits
        # uint64 multiplication wraps modulo 2**64; the low 32 bits match
        # Python's arbitrary-precision product masked to 32 bits.
        with np.errstate(over="ignore"):
            acc = (acc * np.uint64(0x9E3779B1)) & np.uint64(0xFFFFFFFF)
        if self.num_sets <= (1 << 24):
            acc = (acc >> np.uint64(8)) & mask
        else:
            acc = acc & mask
        return acc.astype(np.int64)
