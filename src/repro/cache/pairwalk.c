/* Fused two-domain lean pack replay over raw int64 columns.
 *
 * This is a line-for-line port of kernel._lean_pair_loop: the
 * (vtime, slot) scheduler and both cores' L1 -> L2 -> LLC walks in one
 * loop, operating on flat int64 state arrays snapshotted from the
 * Python cache levels.  Semantics must stay bit-identical to the
 * Python loop — every probe, victim choice, recency update, and
 * back-invalidation happens in the same order with the same tables.
 *
 * Compiled on demand by repro.cache.native (gcc -O2 -shared -fPIC);
 * when no compiler is available the Python loop runs instead.
 *
 * Conventions shared with kernel.KernelCacheLevel:
 *   - tags[set * ways + way] holds the line number, -1 when invalid;
 *   - valid/dirty are per-set bitmasks (lean replay: dirty stays 0);
 *   - L1 recency is the 40320-state 8-way LRU permutation FSM
 *     (l1_touch / l1_fill tables from kernel._lru8_tables);
 *   - L2 and LLC recency are PLRU bit-trees; the 8-way L2 uses full
 *     touch/fill tables, the way-masked LLC walks its tree directly
 *     with the per-node left/right subtree masks.
 */

#include <stdint.h>

typedef int64_t i64;
typedef int32_t i32;

/* cfg[] scalar layout (must match kernel.build_native_pair_walk) */
enum {
    CFG_N0, CFG_N1, CFG_REP0, CFG_REP1, CFG_TOTAL,
    CFG_LEAVES, CFG_W, CFG_L1_MOD, CFG_L2_MOD,
    CFG_CORE_A, CFG_CORE_B, CFG_NUM_CORES,
    CFG_LT0A, CFG_LT1A, CFG_LT2A, CFG_LT3A,
    CFG_LT0B, CFG_LT1B, CFG_LT2B, CFG_LT3B,
    CFG_CBA, CFG_CBB, CFG_MBA, CFG_MBB,
};

/* out[] layout: t0, t1, then the 7 level counters per core, then the
 * per-core L1 and L2 back-invalidation counts. */
enum {
    OUT_T0, OUT_T1,
    OUT_H1A, OUT_H2A, OUT_H3A, OUT_M3A, OUT_E1A, OUT_E2A, OUT_E3A,
    OUT_H1B, OUT_H2B, OUT_H3B, OUT_M3B, OUT_E1B, OUT_E2B, OUT_E3B,
    OUT_BI,  /* + core for L1, + num_cores + core for L2 */
};

typedef struct {
    /* LLC state */
    i64 *tags, *sharers, *valid, *plru;
    const i64 *pset, *pclr, *left, *right;
    i64 leaves, W;
    /* recency tables */
    const i32 *l1_touch, *l1_fill, *l2_touch, *l2_fill;
    /* inner-cache state, all cores, flattened [core][set][way] */
    i64 l1_mod, l2_mod, num_cores;
    i64 *all_l1_tags, *all_l1_valid, *all_l2_tags, *all_l2_valid;
    i64 *l1_bi, *l2_bi;
} Shared;

typedef struct {
    i64 lt0, lt1, lt2, lt3;
    i64 cb, mb, core;
    i64 *l1_tags, *l1_valid, *l1_state;
    i64 *l2_tags, *l2_valid, *l2_plru;
    i64 h1, h2, h3, m3, e1, e2, e3;
} Core;

/* KernelCacheLevel.invalidate: drop the line if present (clears the
 * valid bit and tombstones the tag; recency state is left alone).
 * Returns 1 when the line was resident so the caller can count the
 * back-invalidation, mirroring the membership-checked Python calls. */
static inline int
inval8(i64 *tags, i64 *valid, i64 tag)
{
    i64 v = *valid;
    for (int w = 0; w < 8; w++) {
        if (((v >> w) & 1) && tags[w] == tag) {
            *valid = v & ~((i64)1 << w);
            tags[w] = -1;
            return 1;
        }
    }
    return 0;
}

static inline void
inval_core(const Shared *S, i64 c, i64 tag)
{
    i64 s1 = tag & S->l1_mod;
    i64 l1_sets = S->l1_mod + 1;
    i64 *t1 = S->all_l1_tags + ((c * l1_sets + s1) << 3);
    if (inval8(t1, S->all_l1_valid + c * l1_sets + s1, tag))
        S->l1_bi[c]++;
    i64 s2 = tag & S->l2_mod;
    i64 l2_sets = S->l2_mod + 1;
    i64 *t2 = S->all_l2_tags + ((c * l2_sets + s2) << 3);
    if (inval8(t2, S->all_l2_valid + c * l2_sets + s2, tag))
        S->l2_bi[c]++;
}

/* One access for one core; returns the latency (incl. think cycles). */
static inline i64
access_one(const Shared *S, Core *C, i64 line, i64 s3)
{
    /* L1 probe */
    i64 s1 = line & S->l1_mod;
    i64 *t1 = C->l1_tags + (s1 << 3);
    i64 v1 = C->l1_valid[s1];
    for (int w = 0; w < 8; w++) {
        if (((v1 >> w) & 1) && t1[w] == line) {
            C->h1++;
            C->l1_state[s1] = S->l1_touch[(C->l1_state[s1] << 3) + w];
            return C->lt0;
        }
    }
    i64 lat;
    /* L2 probe */
    i64 s2 = line & S->l2_mod;
    i64 *t2 = C->l2_tags + (s2 << 3);
    i64 v2 = C->l2_valid[s2];
    int hit2 = 0;
    for (int w = 0; w < 8; w++) {
        if (((v2 >> w) & 1) && t2[w] == line) {
            C->h2++;
            C->l2_plru[s2] = S->l2_touch[(C->l2_plru[s2] << 3) + w];
            lat = C->lt1;
            hit2 = 1;
            break;
        }
    }
    if (!hit2) {
        /* LLC probe */
        i64 W = S->W;
        i64 base3 = s3 * W;
        i64 *t3 = S->tags + base3;
        i64 v3 = S->valid[s3];
        int hit3 = 0;
        for (i64 w = 0; w < W; w++) {
            if (((v3 >> w) & 1) && t3[w] == line) {
                C->h3++;
                S->plru[s3] = (S->plru[s3] | S->pset[w]) & S->pclr[w];
                S->sharers[base3 + w] |= C->cb;
                lat = C->lt2;
                hit3 = 1;
                break;
            }
        }
        if (!hit3) {
            C->m3++;
            i64 inv = ~v3 & C->mb;
            if (inv) {
                i64 victim = __builtin_ctzll((unsigned long long)inv);
                S->valid[s3] = v3 | ((i64)1 << victim);
                t3[victim] = line;
                S->sharers[base3 + victim] = C->cb;
                S->plru[s3] =
                    (S->plru[s3] | S->pset[victim]) & S->pclr[victim];
            } else {
                i64 bits = S->plru[s3];
                i64 node = 1;
                while (node < S->leaves) {
                    i64 go_right = (bits >> node) & 1;
                    if (go_right) {
                        if (!(C->mb & S->right[node]))
                            go_right = 0;
                    } else if (!(C->mb & S->left[node])) {
                        go_right = 1;
                    }
                    node = go_right ? 2 * node + 1 : 2 * node;
                }
                i64 victim = node - S->leaves;
                i64 old_tag = t3[victim];
                i64 old_sh = S->sharers[base3 + victim];
                C->e3++;
                /* Inclusion: back-invalidate inner copies.  Fast path
                 * for the self-owned victim, else visit sharer bits,
                 * else (stale zero sharers) sweep every core. */
                if (old_sh == C->cb) {
                    inval_core(S, C->core, old_tag);
                } else if (old_sh) {
                    i64 sh = old_sh;
                    while (sh) {
                        inval_core(
                            S,
                            __builtin_ctzll((unsigned long long)sh),
                            old_tag);
                        sh &= sh - 1;
                    }
                } else {
                    for (i64 c = 0; c < S->num_cores; c++)
                        inval_core(S, c, old_tag);
                }
                t3[victim] = line;
                S->sharers[base3 + victim] = C->cb;
                S->plru[s3] = (bits | S->pset[victim]) & S->pclr[victim];
            }
            lat = C->lt3;
        }
        /* L2 fill (re-read: a self back-invalidation above may have
         * opened a hole in this very set) */
        v2 = C->l2_valid[s2];
        if (v2 == 255) {
            i32 packed = S->l2_fill[C->l2_plru[s2]];
            i64 victim = packed & 7;
            C->l2_plru[s2] = packed >> 3;
            C->e2++;
            t2[victim] = line;
        } else {
            i64 victim = __builtin_ctzll((unsigned long long)(~v2 & 255));
            C->l2_valid[s2] = v2 | ((i64)1 << victim);
            C->l2_plru[s2] = S->l2_touch[(C->l2_plru[s2] << 3) + victim];
            t2[victim] = line;
        }
    }
    /* L1 fill (same re-read rule as L2) */
    i64 st = C->l1_state[s1];
    v1 = C->l1_valid[s1];
    if (v1 == 255) {
        i32 packed = S->l1_fill[st];
        i64 victim = packed & 7;
        C->l1_state[s1] = packed >> 3;
        C->e1++;
        t1[victim] = line;
    } else {
        i64 victim = __builtin_ctzll((unsigned long long)(~v1 & 255));
        C->l1_valid[s1] = v1 | ((i64)1 << victim);
        C->l1_state[s1] = S->l1_touch[(st << 3) + victim];
        t1[victim] = line;
    }
    return lat;
}

i64
repro_pair_walk(
    const i64 *cfg,
    const i64 *l0, const i64 *s0, const i64 *l1col, const i64 *s1col,
    i64 *llc_tags, i64 *llc_sharers, i64 *llc_valid, i64 *llc_plru,
    const i64 *pset, const i64 *pclr, const i64 *pleft, const i64 *pright,
    const i32 *l1_touch, const i32 *l1_fill,
    const i32 *l2_touch, const i32 *l2_fill,
    i64 *all_l1_tags, i64 *all_l1_valid,
    i64 *all_l2_tags, i64 *all_l2_valid,
    i64 *a1_state, i64 *b1_state, i64 *a2_plru, i64 *b2_plru,
    i64 *out)
{
    i64 num_cores = cfg[CFG_NUM_CORES];
    Shared S = {
        llc_tags, llc_sharers, llc_valid, llc_plru,
        pset, pclr, pleft, pright,
        cfg[CFG_LEAVES], cfg[CFG_W],
        l1_touch, l1_fill, l2_touch, l2_fill,
        cfg[CFG_L1_MOD], cfg[CFG_L2_MOD], num_cores,
        all_l1_tags, all_l1_valid, all_l2_tags, all_l2_valid,
        out + OUT_BI, out + OUT_BI + num_cores,
    };
    i64 l1_sets = S.l1_mod + 1;
    i64 l2_sets = S.l2_mod + 1;
    i64 coreA = cfg[CFG_CORE_A], coreB = cfg[CFG_CORE_B];
    Core A = {
        cfg[CFG_LT0A], cfg[CFG_LT1A], cfg[CFG_LT2A], cfg[CFG_LT3A],
        cfg[CFG_CBA], cfg[CFG_MBA], coreA,
        all_l1_tags + coreA * l1_sets * 8,
        all_l1_valid + coreA * l1_sets, a1_state,
        all_l2_tags + coreA * l2_sets * 8,
        all_l2_valid + coreA * l2_sets, a2_plru,
        0, 0, 0, 0, 0, 0, 0,
    };
    Core B = {
        cfg[CFG_LT0B], cfg[CFG_LT1B], cfg[CFG_LT2B], cfg[CFG_LT3B],
        cfg[CFG_CBB], cfg[CFG_MBB], coreB,
        all_l1_tags + coreB * l1_sets * 8,
        all_l1_valid + coreB * l1_sets, b1_state,
        all_l2_tags + coreB * l2_sets * 8,
        all_l2_valid + coreB * l2_sets, b2_plru,
        0, 0, 0, 0, 0, 0, 0,
    };

    i64 n0 = cfg[CFG_N0], n1 = cfg[CFG_N1];
    i64 rep0 = cfg[CFG_REP0], rep1 = cfg[CFG_REP1];
    i64 total = cfg[CFG_TOTAL];
    i64 t0 = 0, t1 = 0, i0 = 0, i1 = 0, base0 = 0, base1 = 0;
    int live0 = n0 > 0, live1 = n1 > 0;
    i64 issued = 0;
    while (issued < total && (live0 || live1)) {
        int retired = 0;
        for (i64 k = total - issued; k > 0; k--) {
            if (live0 && (!live1 || t0 <= t1)) {
                if (i0 == n0) {
                    if (!rep0) {
                        live0 = 0;
                        retired = 1;
                        break;
                    }
                    i0 = 0;
                    base0 += n0;
                }
                t0 += access_one(&S, &A, l0[i0], s0[i0]);
                i0++;
            } else if (live1) {
                if (i1 == n1) {
                    if (!rep1) {
                        live1 = 0;
                        retired = 1;
                        break;
                    }
                    i1 = 0;
                    base1 += n1;
                }
                t1 += access_one(&S, &B, l1col[i1], s1col[i1]);
                i1++;
            } else {
                break;
            }
        }
        if (!retired)
            break;
        issued = base0 + i0 + base1 + i1;
    }

    out[OUT_T0] = t0;
    out[OUT_T1] = t1;
    out[OUT_H1A] = A.h1; out[OUT_H2A] = A.h2; out[OUT_H3A] = A.h3;
    out[OUT_M3A] = A.m3;
    out[OUT_E1A] = A.e1; out[OUT_E2A] = A.e2; out[OUT_E3A] = A.e3;
    out[OUT_H1B] = B.h1; out[OUT_H2B] = B.h2; out[OUT_H3B] = B.h3;
    out[OUT_M3B] = B.m3;
    out[OUT_E1B] = B.e1; out[OUT_E2B] = B.e2; out[OUT_E3B] = B.e3;
    return 0;
}
