/* Fused N-domain lean pack replay, epoch-resumable.
 *
 * Generalizes pairwalk.c: instead of two hard-wired cores and a whole-run
 * loop, every domain's scheduler state (trace position, wrap count,
 * liveness, virtual time, way mask, level counters) lives in a flat
 * int64 buffer owned by Python (`dom`, DOM_STRIDE slots per domain), and
 * one call replays an *epoch* — it stops at an absolute issued-access
 * target (`cfg[CFG_STOP]`) or when the least-advanced live domain has
 * reached a virtual-time horizon (`cfg[CFG_HORIZON]`, -1 to disable) —
 * then writes everything back.  The next call resumes exactly where this
 * one stopped, possibly with different way masks (Python rewrites
 * dom[D_MASK] between calls); nothing is flushed, resident lines and all
 * recency state carry over, which is the Section 2.1 mechanism contract.
 *
 * The scheduler is a linear scan for the minimum (vtime, slot) over live
 * domains: ties break toward the lowest slot, which is exactly the
 * lexicographic pop order of the Python engine's (vtime, slot) heap —
 * entries are unique, so scan and heap retire accesses in the same
 * order.  A non-repeating domain that exhausts its trace goes dead
 * without issuing, mirroring `_packed_heap`'s `continue`.
 *
 * The per-access cache walk (`access_one`) is byte-for-byte the pairwalk
 * walk; per-core L1 permutation-FSM states and L2 PLRU words move into
 * all-core flattened arrays so any subset of cores can participate.
 *
 * Conventions shared with kernel.KernelCacheLevel:
 *   - tags[set * ways + way] holds the line number, -1 when invalid;
 *   - valid/dirty are per-set bitmasks (lean replay: dirty stays 0);
 *   - L1 recency is the 40320-state 8-way LRU permutation FSM
 *     (l1_touch / l1_fill tables from kernel._lru8_tables);
 *   - L2 and LLC recency are PLRU bit-trees; the 8-way L2 uses full
 *     touch/fill tables, the way-masked LLC walks its tree directly
 *     with the per-node left/right subtree masks.
 */

#include <stdint.h>

typedef int64_t i64;
typedef int32_t i32;

/* cfg[] scalar layout (must match kernel.build_native_epoch_replay) */
enum {
    CFG_N, CFG_LEAVES, CFG_W, CFG_L1_MOD, CFG_L2_MOD, CFG_NUM_CORES,
    CFG_STOP, CFG_HORIZON,
    CFG_SLOTS,
};

/* dom[] per-domain layout, persistent across calls */
enum {
    D_CORE, D_CBIT, D_MASK,
    D_LT0, D_LT1, D_LT2, D_LT3,
    D_N, D_REP, D_POS, D_LIVE, D_VTIME,
    D_H1, D_H2, D_H3, D_M3, D_E1, D_E2, D_E3,
    DOM_STRIDE = 20,
};

/* sched[] layout (persistent): total accesses issued so far */
enum { SCHED_ISSUED, SCHED_SLOTS };

typedef struct {
    /* LLC state */
    i64 *tags, *sharers, *valid, *plru;
    const i64 *pset, *pclr, *left, *right;
    i64 leaves, W;
    /* recency tables */
    const i32 *l1_touch, *l1_fill, *l2_touch, *l2_fill;
    /* inner-cache state, all cores, flattened [core][set][way] */
    i64 l1_mod, l2_mod, num_cores;
    i64 *all_l1_tags, *all_l1_valid, *all_l2_tags, *all_l2_valid;
    i64 *l1_bi, *l2_bi;
} Shared;

typedef struct {
    i64 lt0, lt1, lt2, lt3;
    i64 cb, mb, core;
    i64 *l1_tags, *l1_valid, *l1_state;
    i64 *l2_tags, *l2_valid, *l2_plru;
    i64 h1, h2, h3, m3, e1, e2, e3;
} Core;

/* KernelCacheLevel.invalidate: drop the line if present (clears the
 * valid bit and tombstones the tag; recency state is left alone).
 * Returns 1 when the line was resident so the caller can count the
 * back-invalidation, mirroring the membership-checked Python calls. */
static inline int
inval8(i64 *tags, i64 *valid, i64 tag)
{
    i64 v = *valid;
    for (int w = 0; w < 8; w++) {
        if (((v >> w) & 1) && tags[w] == tag) {
            *valid = v & ~((i64)1 << w);
            tags[w] = -1;
            return 1;
        }
    }
    return 0;
}

static inline void
inval_core(const Shared *S, i64 c, i64 tag)
{
    i64 s1 = tag & S->l1_mod;
    i64 l1_sets = S->l1_mod + 1;
    i64 *t1 = S->all_l1_tags + ((c * l1_sets + s1) << 3);
    if (inval8(t1, S->all_l1_valid + c * l1_sets + s1, tag))
        S->l1_bi[c]++;
    i64 s2 = tag & S->l2_mod;
    i64 l2_sets = S->l2_mod + 1;
    i64 *t2 = S->all_l2_tags + ((c * l2_sets + s2) << 3);
    if (inval8(t2, S->all_l2_valid + c * l2_sets + s2, tag))
        S->l2_bi[c]++;
}

/* One access for one core; returns the latency (incl. think cycles). */
static inline i64
access_one(const Shared *S, Core *C, i64 line, i64 s3)
{
    /* L1 probe */
    i64 s1 = line & S->l1_mod;
    i64 *t1 = C->l1_tags + (s1 << 3);
    i64 v1 = C->l1_valid[s1];
    for (int w = 0; w < 8; w++) {
        if (((v1 >> w) & 1) && t1[w] == line) {
            C->h1++;
            C->l1_state[s1] = S->l1_touch[(C->l1_state[s1] << 3) + w];
            return C->lt0;
        }
    }
    i64 lat;
    /* L2 probe */
    i64 s2 = line & S->l2_mod;
    i64 *t2 = C->l2_tags + (s2 << 3);
    i64 v2 = C->l2_valid[s2];
    int hit2 = 0;
    for (int w = 0; w < 8; w++) {
        if (((v2 >> w) & 1) && t2[w] == line) {
            C->h2++;
            C->l2_plru[s2] = S->l2_touch[(C->l2_plru[s2] << 3) + w];
            lat = C->lt1;
            hit2 = 1;
            break;
        }
    }
    if (!hit2) {
        /* LLC probe */
        i64 W = S->W;
        i64 base3 = s3 * W;
        i64 *t3 = S->tags + base3;
        i64 v3 = S->valid[s3];
        int hit3 = 0;
        for (i64 w = 0; w < W; w++) {
            if (((v3 >> w) & 1) && t3[w] == line) {
                C->h3++;
                S->plru[s3] = (S->plru[s3] | S->pset[w]) & S->pclr[w];
                S->sharers[base3 + w] |= C->cb;
                lat = C->lt2;
                hit3 = 1;
                break;
            }
        }
        if (!hit3) {
            C->m3++;
            i64 inv = ~v3 & C->mb;
            if (inv) {
                i64 victim = __builtin_ctzll((unsigned long long)inv);
                S->valid[s3] = v3 | ((i64)1 << victim);
                t3[victim] = line;
                S->sharers[base3 + victim] = C->cb;
                S->plru[s3] =
                    (S->plru[s3] | S->pset[victim]) & S->pclr[victim];
            } else {
                i64 bits = S->plru[s3];
                i64 node = 1;
                while (node < S->leaves) {
                    i64 go_right = (bits >> node) & 1;
                    if (go_right) {
                        if (!(C->mb & S->right[node]))
                            go_right = 0;
                    } else if (!(C->mb & S->left[node])) {
                        go_right = 1;
                    }
                    node = go_right ? 2 * node + 1 : 2 * node;
                }
                i64 victim = node - S->leaves;
                i64 old_tag = t3[victim];
                i64 old_sh = S->sharers[base3 + victim];
                C->e3++;
                /* Inclusion: back-invalidate inner copies.  Fast path
                 * for the self-owned victim, else visit sharer bits,
                 * else (stale zero sharers) sweep every core. */
                if (old_sh == C->cb) {
                    inval_core(S, C->core, old_tag);
                } else if (old_sh) {
                    i64 sh = old_sh;
                    while (sh) {
                        inval_core(
                            S,
                            __builtin_ctzll((unsigned long long)sh),
                            old_tag);
                        sh &= sh - 1;
                    }
                } else {
                    for (i64 c = 0; c < S->num_cores; c++)
                        inval_core(S, c, old_tag);
                }
                t3[victim] = line;
                S->sharers[base3 + victim] = C->cb;
                S->plru[s3] = (bits | S->pset[victim]) & S->pclr[victim];
            }
            lat = C->lt3;
        }
        /* L2 fill (re-read: a self back-invalidation above may have
         * opened a hole in this very set) */
        v2 = C->l2_valid[s2];
        if (v2 == 255) {
            i32 packed = S->l2_fill[C->l2_plru[s2]];
            i64 victim = packed & 7;
            C->l2_plru[s2] = packed >> 3;
            C->e2++;
            t2[victim] = line;
        } else {
            i64 victim = __builtin_ctzll((unsigned long long)(~v2 & 255));
            C->l2_valid[s2] = v2 | ((i64)1 << victim);
            C->l2_plru[s2] = S->l2_touch[(C->l2_plru[s2] << 3) + victim];
            t2[victim] = line;
        }
    }
    /* L1 fill (same re-read rule as L2) */
    i64 st = C->l1_state[s1];
    v1 = C->l1_valid[s1];
    if (v1 == 255) {
        i32 packed = S->l1_fill[st];
        i64 victim = packed & 7;
        C->l1_state[s1] = packed >> 3;
        C->e1++;
        t1[victim] = line;
    } else {
        i64 victim = __builtin_ctzll((unsigned long long)(~v1 & 255));
        C->l1_valid[s1] = v1 | ((i64)1 << victim);
        C->l1_state[s1] = S->l1_touch[(st << 3) + victim];
        t1[victim] = line;
    }
    return lat;
}

i64
repro_multi_walk(
    const i64 *cfg,
    i64 *dom,
    const i64 *const *lines, const i64 *const *sets,
    i64 *llc_tags, i64 *llc_sharers, i64 *llc_valid, i64 *llc_plru,
    const i64 *pset, const i64 *pclr, const i64 *pleft, const i64 *pright,
    const i32 *l1_touch, const i32 *l1_fill,
    const i32 *l2_touch, const i32 *l2_fill,
    i64 *all_l1_tags, i64 *all_l1_valid, i64 *all_l1_state,
    i64 *all_l2_tags, i64 *all_l2_valid, i64 *all_l2_plru,
    i64 *bi,
    i64 *sched)
{
    i64 N = cfg[CFG_N];
    i64 num_cores = cfg[CFG_NUM_CORES];
    Shared S = {
        llc_tags, llc_sharers, llc_valid, llc_plru,
        pset, pclr, pleft, pright,
        cfg[CFG_LEAVES], cfg[CFG_W],
        l1_touch, l1_fill, l2_touch, l2_fill,
        cfg[CFG_L1_MOD], cfg[CFG_L2_MOD], num_cores,
        all_l1_tags, all_l1_valid, all_l2_tags, all_l2_valid,
        bi, bi + num_cores,
    };
    i64 l1_sets = S.l1_mod + 1;
    i64 l2_sets = S.l2_mod + 1;

    /* Bounded by the Python builder's N <= 16 guard. */
    Core C[16];
    i64 n[16], rep[16], pos[16], live[16], vt[16];
    const i64 *lcol[16], *scol[16];
    if (N > 16)
        return -1;
    for (i64 d = 0; d < N; d++) {
        i64 *p = dom + d * DOM_STRIDE;
        i64 core = p[D_CORE];
        Core c = {
            p[D_LT0], p[D_LT1], p[D_LT2], p[D_LT3],
            p[D_CBIT], p[D_MASK], core,
            all_l1_tags + core * l1_sets * 8,
            all_l1_valid + core * l1_sets,
            all_l1_state + core * l1_sets,
            all_l2_tags + core * l2_sets * 8,
            all_l2_valid + core * l2_sets,
            all_l2_plru + core * l2_sets,
            p[D_H1], p[D_H2], p[D_H3], p[D_M3], p[D_E1], p[D_E2], p[D_E3],
        };
        C[d] = c;
        n[d] = p[D_N];
        rep[d] = p[D_REP];
        pos[d] = p[D_POS];
        live[d] = p[D_LIVE];
        vt[d] = p[D_VTIME];
        lcol[d] = lines[d];
        scol[d] = sets[d];
    }

    i64 issued = sched[SCHED_ISSUED];
    i64 stop = cfg[CFG_STOP];
    i64 horizon = cfg[CFG_HORIZON];
    while (issued < stop) {
        /* Linear scan == heap pop: min vtime, lowest slot on ties. */
        i64 best = -1, bt = 0;
        for (i64 d = 0; d < N; d++) {
            if (live[d] && (best < 0 || vt[d] < bt)) {
                best = d;
                bt = vt[d];
            }
        }
        if (best < 0)
            break;
        if (horizon >= 0 && bt >= horizon)
            break;
        i64 i = pos[best];
        if (i == n[best]) {
            if (!rep[best]) {
                live[best] = 0;  /* exhausted, non-repeating: retire */
                continue;
            }
            i = 0;
        }
        vt[best] = bt + access_one(&S, &C[best], lcol[best][i],
                                   scol[best][i]);
        pos[best] = i + 1;
        issued++;
    }

    for (i64 d = 0; d < N; d++) {
        i64 *p = dom + d * DOM_STRIDE;
        p[D_POS] = pos[d];
        p[D_LIVE] = live[d];
        p[D_VTIME] = vt[d];
        p[D_H1] = C[d].h1;
        p[D_H2] = C[d].h2;
        p[D_H3] = C[d].h3;
        p[D_M3] = C[d].m3;
        p[D_E1] = C[d].e1;
        p[D_E2] = C[d].e2;
        p[D_E3] = C[d].e3;
    }
    sched[SCHED_ISSUED] = issued;
    return issued;
}
