/* Epoch-batched replay: advance a roster of resumable cells, one call
 * per epoch, controller logic in the host between calls.
 *
 * repro_epoch_batch operates on exactly the cell-major state banks of
 * repro_batch_walk (batchwalk.c), but instead of running every cell to
 * completion it advances only the cells named in `active` — a caller-
 * owned index list `[count, idx0, idx1, ...]` — each up to its own
 * per-cell cfg[CFG_STOP] target.  All walk state (LLC tags/sharers/
 * valid/PLRU, per-core L1/L2 tags + recency, per-domain counters,
 * cursors, virtual times, the scheduler frontier in sched[]) lives in
 * the Python-owned banks and survives between calls, so the host can
 * read each cell's per-epoch counter deltas, run its
 * DynamicPartitionController decision, rewrite the dom way-mask words
 * flush-free, bump the stop targets, and call again — a whole
 * dynamic-partitioning roster driven by a few C calls per epoch
 * instead of one Python driver per cell.
 *
 * Threading comes from batchwalk.c's compile-probed run_items pool
 * (OpenMP -> pthreads -> serial; repro_batch_threading reports which),
 * clamped to the active count.  Every work item writes only its own
 * cell's banks, so results are thread-count-invariant by construction
 * and bit-identical to driving repro_multi_walk once per cell.
 */

#include "batchwalk.c"

typedef struct {
    const WalkBatch *B;
    const i64 *active;  /* active[0] = count, active[1..] = cell indices */
} EpochBatch;

static void
epoch_cell(void *arg, i64 it)
{
    const EpochBatch *E = (const EpochBatch *)arg;
    walk_cell((void *)E->B, E->active[1 + it]);
}

i64
repro_epoch_batch(
    const i64 *bcfg,
    const i64 *active,
    const i64 *cfg,
    i64 *dom,
    const i64 *const *lines, const i64 *const *sets,
    i64 *llc_tags, i64 *llc_sharers, i64 *llc_valid, i64 *llc_plru,
    const i64 *pset, const i64 *pclr, const i64 *pleft, const i64 *pright,
    const i32 *l1_touch, const i32 *l1_fill,
    const i32 *l2_touch, const i32 *l2_fill,
    i64 *l1_tags, i64 *l1_valid, i64 *l1_state,
    i64 *l2_tags, i64 *l2_valid, i64 *l2_plru,
    i64 *bi,
    i64 *sched)
{
    i64 R = bcfg[B_CELLS];
    i64 threads = bcfg[B_THREADS];
    i64 count = active[0];
    if (R < 1 || count < 1)
        return 0;
    if (threads < 1)
        threads = 1;
    if (threads > count)
        threads = count;

    WalkBatch B = make_walk_batch(
        bcfg, cfg, dom, lines, sets,
        llc_tags, llc_sharers, llc_valid, llc_plru,
        pset, pclr, pleft, pright,
        l1_touch, l1_fill, l2_touch, l2_fill,
        l1_tags, l1_valid, l1_state,
        l2_tags, l2_valid, l2_plru,
        bi, sched);
    EpochBatch E = { &B, active };
    run_items(&E, epoch_cell, count, threads);

    i64 issued = 0;
    for (i64 k = 0; k < count; k++)
        issued += sched[active[1 + k] * SCHED_SLOTS + SCHED_ISSUED];
    return issued;
}
