"""Vectorized way profiling over compiled trace packs.

:class:`~repro.cache.profile.WayProfiler` walks the trace one access at
a time, paying a set-index hash and a Python dispatch per access. Given
a :class:`~repro.workloads.tracepack.TracePack` the same histogram can
be computed set-group-at-a-time: the pack's precomputed set column is
stably argsorted by ``(domain, set)``, which clusters each UMON set's
accesses while preserving their program order, and each cluster is then
reduced with the bounded stack-update loop. The per-access work drops to
a bounded ``list`` membership probe — no indexing, no attribute lookups.

Because the stable sort preserves within-set order and sets are
independent under set-associative LRU, the grouped replay produces
*exactly* the sequential profiler's histograms (asserted by the tests
and the bench ``identical`` flag).
"""

import numpy as np

from repro.cache.profile import LLC_NUM_SETS, LLC_NUM_WAYS, WayCurve
from repro.perf import engine_counters as ec
from repro.util.errors import ConfigurationError


def _domain_column(pack, num_domains):
    """Per-access domain ids, mirroring WaySweep's tid//2 pairing."""
    if num_domains <= 1:
        return None
    return np.asarray(pack.tid, dtype=np.int64) >> 1


def profile_pack(pack, num_sets=LLC_NUM_SETS, num_ways=LLC_NUM_WAYS,
                 indexing="hash", num_domains=1, domains=None):
    """Profile one pack; returns ``{domain: WayCurve}``.

    ``domains`` optionally overrides the per-access domain column (an
    int array aligned with the pack); the default mirrors
    :class:`~repro.cache.profile.WaySweep`'s ``tid // 2`` mapping.
    """
    if num_ways < 1:
        raise ConfigurationError("profiler needs at least one way")
    if num_domains < 1:
        raise ConfigurationError("profiler needs at least one domain")
    sets = np.asarray(pack.set_column(num_sets, indexing), dtype=np.int64)
    if domains is None:
        domains = _domain_column(pack, num_domains)
    histograms = [[0] * (num_ways + 1) for _ in range(num_domains)]
    accesses = [0] * num_domains
    if len(sets):
        if domains is None:
            key = sets
            accesses[0] = len(sets)
        else:
            domains = np.asarray(domains, dtype=np.int64)
            key = domains * np.int64(num_sets) + sets
            counts = np.bincount(domains, minlength=num_domains)
            for d in range(num_domains):
                accesses[d] = int(counts[d])
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        lines = np.asarray(pack.line, dtype=np.int64)[order].tolist()
        bounds = (np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1).tolist()
        starts = [0] + bounds
        ends = bounds + [len(lines)]
        group_keys = sorted_keys[starts].tolist()
        for start, end, group_key in zip(starts, ends, group_keys):
            hist = histograms[group_key // num_sets if domains is not None else 0]
            stack = []
            index = stack.index
            insert = stack.insert
            pop = stack.pop
            for line in lines[start:end]:
                if line in stack:
                    distance = index(line)
                    hist[distance] += 1
                    if distance:
                        del stack[distance]
                        insert(0, line)
                else:
                    hist[num_ways] += 1
                    insert(0, line)
                    if len(stack) > num_ways:
                        pop()
    ec.add(ec.PROFILER_PASSES)
    return {
        d: WayCurve(num_ways=num_ways, accesses=accesses[d],
                    histogram=histograms[d])
        for d in range(num_domains)
    }


def sweep_pack(trace, num_sets=LLC_NUM_SETS, num_ways=LLC_NUM_WAYS,
               indexing="hash", cache=None, store=True):
    """Compile/load the pack for ``trace`` and profile it (single domain)."""
    from repro.workloads.tracepack import get_pack

    pack = get_pack(trace, cache=cache, store=store)
    return profile_pack(pack, num_sets, num_ways, indexing)[0]
