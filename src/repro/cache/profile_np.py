"""Vectorized way profiling over compiled trace packs.

:class:`~repro.cache.profile.WayProfiler` walks the trace one access at
a time, paying a set-index hash and a Python dispatch per access. Given
a :class:`~repro.workloads.tracepack.TracePack` the same histogram can
be computed set-group-at-a-time: the pack's precomputed set column is
stably argsorted by ``(domain, set)``, which clusters each UMON set's
accesses while preserving their program order, and each cluster is then
reduced with the bounded stack-update loop. The per-access work drops to
a bounded ``list`` membership probe — no indexing, no attribute lookups.

Because the stable sort preserves within-set order and sets are
independent under set-associative LRU, the grouped replay produces
*exactly* the sequential profiler's histograms (asserted by the tests
and the bench ``identical`` flag).
"""

import numpy as np

from repro.cache.profile import LLC_NUM_SETS, LLC_NUM_WAYS, WayCurve
from repro.perf import engine_counters as ec
from repro.util.errors import ConfigurationError


def _domain_column(pack, num_domains):
    """Per-access domain ids, mirroring WaySweep's tid//2 pairing."""
    if num_domains <= 1:
        return None
    return np.asarray(pack.tid, dtype=np.int64) >> 1


def _profile_pack_native(pack, sets, domains, num_sets, num_ways,
                         num_domains):
    """Histograms via the set-sharded C profiler, or ``None``.

    One ``repro_batch_profile`` call covers every domain: each
    (domain, set-shard) pair is an independent work item with its own
    histogram slot, and the per-domain histogram is the fixed-order
    integer sum over that domain's shard slots — exact, so the result
    is invariant to both the shard count and the thread schedule.
    """
    import ctypes

    from repro.cache import native

    fn = native.batch_profile_fn()
    if fn is None:
        return None
    i64 = np.int64
    lines = np.ascontiguousarray(np.asarray(pack.line, dtype=i64))
    sets = np.ascontiguousarray(sets)
    if domains is None:
        cell_lines = [lines]
        cell_sets = [sets]
    else:
        cell_lines = []
        cell_sets = []
        for d in range(num_domains):
            picked = np.flatnonzero(domains == d)
            cell_lines.append(np.ascontiguousarray(lines[picked]))
            cell_sets.append(np.ascontiguousarray(sets[picked]))
    cells = len(cell_lines)
    threads = native.resolve_native_threads(cells)
    shards = threads
    line_ptrs = np.array([c.ctypes.data for c in cell_lines], dtype=np.uintp)
    set_ptrs = np.array([c.ctypes.data for c in cell_sets], dtype=np.uintp)
    cell_n = np.array([len(c) for c in cell_lines], dtype=i64)
    stack_lines = np.zeros(cells * num_sets * num_ways, dtype=i64)
    stack_depth = np.zeros(cells * num_sets, dtype=i64)
    hist = np.zeros(cells * shards * (num_ways + 1), dtype=i64)
    pcfg = np.array([cells, threads, shards, num_sets, num_ways], dtype=i64)
    args = [
        ctypes.c_void_p(a.ctypes.data)
        for a in (pcfg, line_ptrs, set_ptrs, cell_n,
                  stack_lines, stack_depth, hist)
    ]
    fn(*args)
    per_cell = hist.reshape(cells, shards, num_ways + 1).sum(axis=1)
    return [[int(x) for x in per_cell[d]] for d in range(cells)]


def profile_pack(pack, num_sets=LLC_NUM_SETS, num_ways=LLC_NUM_WAYS,
                 indexing="hash", num_domains=1, domains=None,
                 use_native=True):
    """Profile one pack; returns ``{domain: WayCurve}``.

    ``domains`` optionally overrides the per-access domain column (an
    int array aligned with the pack); the default mirrors
    :class:`~repro.cache.profile.WaySweep`'s ``tid // 2`` mapping.
    ``use_native`` (default) routes the stack updates through the
    batched C profiler when it is available; histograms are identical
    either way, the native pass is only faster.
    """
    if num_ways < 1:
        raise ConfigurationError("profiler needs at least one way")
    if num_domains < 1:
        raise ConfigurationError("profiler needs at least one domain")
    sets = np.asarray(pack.set_column(num_sets, indexing), dtype=np.int64)
    if domains is None:
        domains = _domain_column(pack, num_domains)
    histograms = [[0] * (num_ways + 1) for _ in range(num_domains)]
    accesses = [0] * num_domains
    if len(sets):
        if domains is None:
            key = sets
            accesses[0] = len(sets)
        else:
            domains = np.asarray(domains, dtype=np.int64)
            key = domains * np.int64(num_sets) + sets
            counts = np.bincount(domains, minlength=num_domains)
            for d in range(num_domains):
                accesses[d] = int(counts[d])
        if use_native:
            native_hists = _profile_pack_native(
                pack, sets, domains, num_sets, num_ways, num_domains
            )
            if native_hists is not None:
                ec.add(ec.PROFILER_PASSES)
                return {
                    d: WayCurve(num_ways=num_ways, accesses=accesses[d],
                                histogram=native_hists[d])
                    for d in range(num_domains)
                }
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        lines = np.asarray(pack.line, dtype=np.int64)[order].tolist()
        bounds = (np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1).tolist()
        starts = [0] + bounds
        ends = bounds + [len(lines)]
        group_keys = sorted_keys[starts].tolist()
        for start, end, group_key in zip(starts, ends, group_keys):
            hist = histograms[group_key // num_sets if domains is not None else 0]
            stack = []
            index = stack.index
            insert = stack.insert
            pop = stack.pop
            for line in lines[start:end]:
                if line in stack:
                    distance = index(line)
                    hist[distance] += 1
                    if distance:
                        del stack[distance]
                        insert(0, line)
                else:
                    hist[num_ways] += 1
                    insert(0, line)
                    if len(stack) > num_ways:
                        pop()
    ec.add(ec.PROFILER_PASSES)
    return {
        d: WayCurve(num_ways=num_ways, accesses=accesses[d],
                    histogram=histograms[d])
        for d in range(num_domains)
    }


def sweep_pack(trace, num_sets=LLC_NUM_SETS, num_ways=LLC_NUM_WAYS,
               indexing="hash", cache=None, store=True):
    """Compile/load the pack for ``trace`` and profile it (single domain)."""
    from repro.workloads.tracepack import get_pack

    pack = get_pack(trace, cache=cache, store=store)
    return profile_pack(pack, num_sets, num_ways, indexing)[0]
