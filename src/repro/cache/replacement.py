"""Replacement policies with way-mask-aware victim selection.

The partitioning mechanism works "by modifying the cache-replacement
algorithm" (paper Section 2.1): a victim is only ever chosen among the ways
a domain is allowed to replace. Both policies here accept an
``allowed_ways`` iterable on victim selection for that reason.
"""

from repro.util.errors import ValidationError


class TrueLru:
    """Exact LRU over one cache set.

    Maintains a recency list (most-recent first). Used by small inner
    caches and as a reference implementation in tests.
    """

    def __init__(self, num_ways):
        if num_ways < 1:
            raise ValidationError("a set needs at least one way")
        self.num_ways = num_ways
        self._recency = list(range(num_ways))

    def touch(self, way):
        """Mark ``way`` most recently used."""
        self._recency.remove(way)
        self._recency.insert(0, way)

    def victim(self, allowed_ways=None):
        """Return the least-recently-used way among ``allowed_ways``."""
        if allowed_ways is None:
            return self._recency[-1]
        allowed = set(allowed_ways)
        if not allowed:
            raise ValidationError("victim selection requires at least one allowed way")
        for way in reversed(self._recency):
            if way in allowed:
                return way
        raise ValidationError("allowed ways are outside this set")

    def recency_order(self):
        """Most-recent-first order; exposed for tests."""
        return list(self._recency)


class PseudoLruTree:
    """Tree-based pseudo-LRU (the policy used by Sandy Bridge's LLC).

    A binary tree of direction bits covers the ways (padded to a power of
    two). On a touch, bits along the path are set to point *away* from the
    touched way; the victim walk follows the bits. When a subtree contains
    no allowed (or no existing) way, the walk detours to the other side —
    this is exactly how masked replacement composes with PLRU in hardware.
    """

    def __init__(self, num_ways):
        if num_ways < 1:
            raise ValidationError("a set needs at least one way")
        self.num_ways = num_ways
        self._leaves = 1
        while self._leaves < num_ways:
            self._leaves *= 2
        # Internal nodes of a complete binary tree, root at index 1.
        self._bits = [0] * self._leaves

    def _leaf_range(self, node, lo, hi):
        return lo, hi

    def touch(self, way):
        """Update direction bits so the walk points away from ``way``."""
        if not 0 <= way < self.num_ways:
            raise ValidationError(f"way {way} out of range")
        node, lo, hi = 1, 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point right, away from the touched way
                node, hi = 2 * node, mid
            else:
                self._bits[node] = 0  # point left
                node, lo = 2 * node + 1, mid
        return self

    def victim(self, allowed_ways=None):
        """Walk the tree to a victim way, constrained to ``allowed_ways``."""
        if allowed_ways is None:
            allowed = set(range(self.num_ways))
        else:
            allowed = {w for w in allowed_ways if 0 <= w < self.num_ways}
        if not allowed:
            raise ValidationError("victim selection requires at least one allowed way")

        node, lo, hi = 1, 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            left_ok = any(lo <= w < mid for w in allowed)
            right_ok = any(mid <= w < hi for w in allowed)
            go_right = self._bits[node] == 1
            if go_right and not right_ok:
                go_right = False
            elif not go_right and not left_ok:
                go_right = True
            if go_right:
                node, lo = 2 * node + 1, mid
            else:
                node, hi = 2 * node, mid
        return lo

    def bits(self):
        """The raw direction bits; exposed for tests."""
        return list(self._bits)
