"""Shared utilities: units, errors, deterministic RNG helpers, tables."""

from repro.util.errors import (
    ConfigurationError,
    ReproError,
    SchedulingError,
    ValidationError,
)
from repro.util.plot import heatmap, line_plot, sparkline
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.tables import format_table
from repro.util.units import (
    GB,
    GHZ,
    KB,
    MB,
    MHZ,
    bytes_to_mb,
    mb_to_bytes,
    percent,
)

__all__ = [
    "ConfigurationError",
    "DeterministicRng",
    "GB",
    "GHZ",
    "KB",
    "MB",
    "MHZ",
    "ReproError",
    "SchedulingError",
    "ValidationError",
    "bytes_to_mb",
    "derive_seed",
    "format_table",
    "heatmap",
    "line_plot",
    "mb_to_bytes",
    "percent",
    "sparkline",
]
