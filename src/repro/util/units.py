"""Unit constants and conversions used throughout the simulator.

All internal interfaces pass plain numbers; these constants document the
units at the point of construction (e.g. ``capacity_bytes=6 * MB``).
"""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

MHZ = 1_000_000
GHZ = 1_000_000_000


def mb_to_bytes(mb):
    """Convert a (possibly fractional) megabyte count to bytes."""
    return int(round(mb * MB))


def bytes_to_mb(nbytes):
    """Convert bytes to megabytes as a float."""
    return nbytes / MB


def percent(fraction):
    """Render a fraction (0.063) as a percentage value (6.3)."""
    return 100.0 * fraction
