"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables and figures
report; this module renders them legibly without third-party dependencies.
"""


def _cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render ``rows`` (sequences) under ``headers`` as an ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
