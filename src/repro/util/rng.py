"""Deterministic random-number helpers.

Experiments must be reproducible run-to-run, so every stochastic component
takes an explicit seed. ``derive_seed`` maps (seed, label) pairs to child
seeds so that adding a new consumer never perturbs existing streams.
"""

import hashlib

import numpy as np


def derive_seed(base_seed, *labels):
    """Derive a child seed from a base seed and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


class DeterministicRng:
    """A seeded random stream with convenience draws for the simulator."""

    def __init__(self, seed, *labels):
        self.seed = derive_seed(seed, *labels) if labels else int(seed)
        self._rng = np.random.default_rng(self.seed)

    def child(self, *labels):
        """Create an independent stream derived from this one's seed."""
        return DeterministicRng(derive_seed(self.seed, *labels))

    def uniform(self, low=0.0, high=1.0):
        return float(self._rng.uniform(low, high))

    def integers(self, low, high):
        """Uniform integer in [low, high)."""
        return int(self._rng.integers(low, high))

    def normal(self, mean=0.0, std=1.0):
        return float(self._rng.normal(mean, std))

    def zipf_index(self, n, alpha=1.2):
        """Draw an index in [0, n) with a Zipf-like popularity skew."""
        if n <= 0:
            raise ValueError("n must be positive")
        if n == 1:
            return 0
        # Inverse-CDF sampling over the truncated Zipf distribution.
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-alpha)
        weights /= weights.sum()
        return int(self._rng.choice(n, p=weights))

    def choice(self, seq):
        return seq[self.integers(0, len(seq))]

    def shuffle(self, seq):
        """Return a shuffled copy of ``seq`` (the input is not mutated)."""
        out = list(seq)
        self._rng.shuffle(out)
        return out
