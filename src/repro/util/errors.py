"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A machine, cache, or model configuration is inconsistent."""


class ValidationError(ReproError):
    """An argument is outside the domain a component supports."""


class SchedulingError(ReproError):
    """A requested CPU/cache assignment conflicts with existing state."""
