"""Plain-text plotting for benchmark output.

The paper's figures are line charts, heat maps and contour plots; the
benchmark harness renders their text equivalents so the shapes are
visible in a terminal without any plotting dependency.
"""

from repro.util.errors import ValidationError

_SPARK_LEVELS = " .:-=+*#%@"
_HEAT_LEVELS = " .:-=+*#%@"


def sparkline(values, width=None):
    """Render a sequence as a one-line intensity chart."""
    values = list(values)
    if not values:
        raise ValidationError("nothing to plot")
    if width and len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    chars = []
    for v in values:
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def line_plot(series, height=10, width=60, title=None):
    """Render one or more named series as an ASCII line plot.

    Args:
        series: {label: [(x, y), ...]} — x values need not align.
    """
    if not series:
        raise ValidationError("nothing to plot")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValidationError("series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*abcdefgh"
    for idx, (label, pts) in enumerate(series.items()):
        mark = marks[idx % len(marks)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * len(f"{y_hi:.3g} ") + "│" + "".join(row))
    lines.append(f"{y_lo:.3g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * len(f"{y_lo:.3g} ")
        + "└"
        + "─" * width
        + f"  x: {x_lo:.3g}..{x_hi:.3g}"
    )
    legend = "   ".join(
        f"{marks[i % len(marks)]}={label}" for i, label in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def heatmap(matrix, row_labels, col_labels, title=None, lo=None, hi=None):
    """Render a 2-D dict {(row, col): value} as an ASCII heat map."""
    if not matrix:
        raise ValidationError("nothing to plot")
    values = list(matrix.values())
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = (hi - lo) or 1.0
    label_w = max(len(str(r)) for r in row_labels)
    lines = []
    if title:
        lines.append(title)
    for row in row_labels:
        cells = []
        for col in col_labels:
            v = matrix.get((row, col))
            if v is None:
                cells.append(" ")
                continue
            level = int(min(max((v - lo) / span, 0.0), 1.0) * (len(_HEAT_LEVELS) - 1))
            cells.append(_HEAT_LEVELS[level])
        lines.append(f"{str(row):>{label_w}} |" + "".join(cells) + "|")
    lines.append(
        f"{'':>{label_w}}  scale: ' '={lo:.3g} .. '@'={hi:.3g}; "
        f"columns: {col_labels[0]}..{col_labels[-1]}"
    )
    return "\n".join(lines)
