"""An ordered, chunked process-pool map with a serial fallback.

The contract is strict determinism: ``parallel_map(fn, items)`` returns
``[fn(item) for item in items]`` — same values, same order — no matter
how many workers run or how the pool schedules chunks. Workers receive
work through pickling, so ``fn`` must be a module-level function and the
items picklable; anything else falls back to the serial path rather than
failing the experiment.
"""

import os

from repro.util.errors import ValidationError

_ENV_WORKERS = "REPRO_WORKERS"


def resolve_workers(workers=None):
    """Turn a worker request into a concrete positive count.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable and
    finally to 1 (serial) — experiments stay serial unless a caller or
    the environment opts in.
    """
    if workers is None:
        env = os.environ.get(_ENV_WORKERS, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                # The ValueError's traceback adds nothing the message
                # doesn't already say; keep the validation error clean.
                raise ValidationError(
                    f"{_ENV_WORKERS} must be an integer, got {env!r}"
                ) from None
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValidationError("workers must be >= 1")
    return workers


def _usable_cpus():
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def usable_cpus():
    """CPUs this process may actually run on (affinity-aware).

    The default sizing input for both process pools and the native batch
    kernel's in-C thread count (``repro.cache.native``).
    """
    return _usable_cpus()


def _serial_map(fn, items, initializer, initargs):
    if initializer is not None:
        initializer(*initargs)
    return [fn(item) for item in items]


def persisted_pack_paths(packs):
    """On-disk directories of the already-persisted packs.

    Memory-only packs (``pack.path is None``) are skipped — a worker
    that needs one recompiles it locally, which keeps the fan-out
    correct at the cost of that one pack's compile time. The result
    feeds ``parallel_map(..., pack_paths=...)`` so N-domain sweeps ship
    paths to workers, never arrays.
    """
    return tuple(p.path for p in packs if getattr(p, "path", None))


def pack_initializer(pack_paths, initializer=None, initargs=()):
    """Compose a worker initializer that pre-opens compiled trace packs.

    ``pack_paths`` are on-disk pack directories (strings — cheap to
    pickle); each worker memmaps them into its process-local pack memo
    on startup, so tasks that replay the same traces share the cached
    files zero-copy instead of shipping or regenerating arrays. Any
    wrapped ``initializer`` runs after the preload. Returns
    ``(initializer, initargs)`` ready for :func:`parallel_map`.
    """
    paths = tuple(str(p) for p in pack_paths)
    return _preload_then_init, (paths, initializer, initargs)


def _preload_then_init(paths, initializer, initargs):
    from repro.workloads.tracepack import preload_packs

    preload_packs(paths)
    if initializer is not None:
        initializer(*initargs)


def parallel_map(
    fn,
    items,
    workers=None,
    initializer=None,
    initargs=(),
    chunksize=None,
    cap_to_cpus=True,
    pack_paths=None,
):
    """Map ``fn`` over ``items``, optionally on a process pool.

    Results come back in input order. ``workers=1`` (the default) runs
    serially in-process — including the initializer, so the two paths
    exercise identical code. Simulation work is CPU-bound, so the pool
    never oversubscribes: requested workers are capped at the cores the
    process may actually use (``cap_to_cpus=False`` disables this, for
    tests that must exercise the pool machinery regardless of host).
    If the pool cannot be created or fails mid-flight (sandboxes without
    fork, unpicklable work), the whole map silently re-runs serially:
    parallelism is a wall-clock optimization, never a correctness
    dependency.
    """
    if pack_paths:
        initializer, initargs = pack_initializer(
            pack_paths, initializer, initargs
        )
    items = list(items)
    workers = resolve_workers(workers)
    if cap_to_cpus:
        workers = min(workers, _usable_cpus())
    if workers == 1 or len(items) <= 1:
        return _serial_map(fn, items, initializer, initargs)

    workers = min(workers, len(items))
    if chunksize is None:
        chunksize = max(1, len(items) // (workers * 4))
    try:
        import concurrent.futures
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as executor:
            return list(executor.map(fn, items, chunksize=chunksize))
    except (ValidationError, KeyboardInterrupt):
        raise
    except Exception:
        return _serial_map(fn, items, initializer, initargs)
