"""Machine-bound task execution for experiment fan-out.

A worker process cannot share the driver's :class:`Machine` (its memo and
solo caches are plain dicts), so each worker rebuilds an identical one
from a :class:`MachineSpec` at pool start and keeps it for every task it
runs — the per-worker caches then warm up exactly like the serial path's
single cache does, preserving determinism because cache hits return the
same values a fresh solve would.
"""

from dataclasses import dataclass

from repro.exec.pool import parallel_map, resolve_workers

# The worker's Machine, built once per process by _init_worker.
_WORKER_MACHINE = None


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to rebuild a Machine in another process."""

    config: object = None
    tuning: object = None
    mpki_noise_std: float = 0.0
    noise_seed: int = 0
    memoize: bool = True


def machine_spec(machine):
    """The spec that rebuilds ``machine`` (caches start empty)."""
    return MachineSpec(
        config=machine.config,
        tuning=machine.tuning,
        mpki_noise_std=machine.mpki_noise_std,
        noise_seed=machine.noise_seed,
        memoize=machine.memo.enabled,
    )


def build_machine(spec):
    from repro.sim.engine import Machine

    return Machine(
        config=spec.config,
        tuning=spec.tuning,
        mpki_noise_std=spec.mpki_noise_std,
        noise_seed=spec.noise_seed,
        memoize=spec.memoize,
    )


def _init_worker(spec):
    global _WORKER_MACHINE
    _WORKER_MACHINE = build_machine(spec)


def worker_machine():
    """The Machine bound to this worker process (serial: the caller's)."""
    if _WORKER_MACHINE is None:
        raise RuntimeError("worker_machine() outside an initialized worker")
    return _WORKER_MACHINE


def _bound_task(payload):
    fn, item = payload
    return fn(_WORKER_MACHINE, item)


def run_tasks(machine, fn, items, workers=None, chunksize=None, cap_to_cpus=True):
    """Run ``fn(machine, item)`` for every item, serially or on a pool.

    ``fn`` must be a module-level function of ``(machine, item)``; with
    ``workers > 1`` it receives the worker's rebuilt Machine instead of
    the caller's. Results return in input order either way.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if cap_to_cpus:
        from repro.exec.pool import _usable_cpus

        workers = min(workers, _usable_cpus())
    if workers == 1 or len(items) <= 1:
        return [fn(machine, item) for item in items]
    return parallel_map(
        _bound_task,
        [(fn, item) for item in items],
        workers=workers,
        initializer=_init_worker,
        initargs=(machine_spec(machine),),
        chunksize=chunksize,
        cap_to_cpus=False,
    )
