"""Deterministic parallel execution of independent experiment tasks.

Experiments like the Fig. 8 pairwise matrix are embarrassingly parallel:
every cell is an independent simulation of a deterministic engine, so
running cells on a process pool must (and does) return results that are
bitwise identical to the serial loop — the only thing parallelism may
change is wall-clock time. :func:`parallel_map` provides the ordered,
chunked, fallback-to-serial primitive; :func:`run_tasks` binds it to a
:class:`~repro.sim.engine.Machine` rebuilt once per worker process.
"""

from repro.exec.pool import (
    parallel_map,
    persisted_pack_paths,
    resolve_workers,
    usable_cpus,
)
from repro.exec.workers import (
    MachineSpec,
    build_machine,
    machine_spec,
    run_tasks,
    worker_machine,
)

__all__ = [
    "MachineSpec",
    "build_machine",
    "machine_spec",
    "parallel_map",
    "persisted_pack_paths",
    "resolve_workers",
    "run_tasks",
    "usable_cpus",
    "worker_machine",
]
