"""Interchangeable simulation substrates behind one protocol.

The policies of Section 5 and the Algorithm 6.2 controller are written
once, in :mod:`repro.core.policies`, against :class:`SimBackend`; this
package supplies the two implementations:

- :class:`AnalyticalBackend` — the statistical interval engine
  (``Machine.run_pair``), bit-identical to the pre-refactor policy code;
- :class:`TraceBackend` — address-level trace replay
  (``TraceEngine.run_packed`` / ``run_dynamic`` over compiled packs),
  with the biased-split search scored from one profiled way sweep.

``get_backend(name)`` maps the CLI's ``--backend`` flag to a fresh
instance.
"""

from repro.backend.analytical import AnalyticalBackend
from repro.backend.protocol import (
    MAX_TENANTS,
    BackendCapabilities,
    CoRunMeasurement,
    GroupMeasurement,
    GroupSplit,
    PairSpec,
    SimBackend,
    SoloMeasurement,
    TenantSet,
    WaySplit,
    WayUtility,
)
from repro.backend.trace import TraceBackend
from repro.util.errors import ValidationError

BACKEND_NAMES = ("analytical", "trace")


def get_backend(name, **kwargs):
    """A fresh backend by CLI name ('analytical' | 'trace')."""
    if name == "analytical":
        return AnalyticalBackend(**kwargs)
    if name == "trace":
        return TraceBackend(**kwargs)
    raise ValidationError(
        f"unknown backend {name!r}; pick one of {BACKEND_NAMES}"
    )


__all__ = [
    "AnalyticalBackend",
    "BACKEND_NAMES",
    "BackendCapabilities",
    "CoRunMeasurement",
    "GroupMeasurement",
    "GroupSplit",
    "MAX_TENANTS",
    "PairSpec",
    "SimBackend",
    "SoloMeasurement",
    "TenantSet",
    "TraceBackend",
    "WaySplit",
    "WayUtility",
    "get_backend",
]
