"""The simulation-backend protocol the policy layer is written against.

The paper's contribution is its *policies* — shared, fair, biased, and
the dynamic controller — not the substrate they run on. LFOC makes the
same point for fairness policies over commodity partitioning mechanisms,
and Nejat et al. coordinate partitioning with other knobs precisely
because the policy logic is decoupled from the mechanism. This module
pins that separation down as a small protocol:

- :class:`SimBackend` — ``solo(spec)``, ``co_run(spec, split)``,
  ``capabilities()``, plus ``sweep(spec)`` and ``dynamic(spec)`` hooks;
- :class:`WaySplit` — a backend-neutral LLC allocation (contiguous
  masks carved from opposite ends of the cache, overlapping when the
  way counts exceed the cache — the "shared" configuration);
- :class:`CoRunMeasurement` — the common result shape every policy
  consumes: a foreground cost (lower is better) and a background
  progress rate (higher is better), with the backend's native result
  attached as ``raw``.

:mod:`repro.core.policies` implements shared/fair/biased/dynamic once
against this protocol; :mod:`repro.backend.analytical` and
:mod:`repro.backend.trace` supply the two substrates (the interval
engine and the address-level trace engine).
"""

from dataclasses import dataclass, field

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class WaySplit:
    """An LLC allocation for a foreground/background pair.

    Both backends realize a split the same way: the foreground's mask is
    the first ``fg_ways`` ways, the background's the last ``bg_ways``.
    When ``fg_ways + bg_ways`` exceeds the cache the masks overlap —
    ``WaySplit.shared`` gives the fully shared (no partitioning)
    configuration.
    """

    fg_ways: int
    bg_ways: int

    def __post_init__(self):
        if self.fg_ways < 1 or self.bg_ways < 1:
            raise ValidationError("both applications need at least one way")

    @classmethod
    def shared(cls, llc_ways):
        return cls(llc_ways, llc_ways)

    @classmethod
    def fair(cls, llc_ways):
        half = llc_ways // 2
        return cls(half, llc_ways - half)

    @classmethod
    def disjoint(cls, fg_ways, llc_ways):
        return cls(fg_ways, llc_ways - fg_ways)

    def overlaps(self, llc_ways):
        return self.fg_ways + self.bg_ways > llc_ways


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, and how its measurements read.

    ``fg_cost_unit`` / ``bg_rate_unit`` label the measurement axes
    (seconds and instructions/s for the analytical engine; cycles/access
    and accesses/kilocycle for the trace engine). ``sweep_is_measured``
    says whether ``sweep()`` entries are full co-run measurements that a
    policy may return directly (analytical), or profile-derived scores
    whose chosen split must be re-measured with ``co_run`` (trace).
    """

    name: str
    llc_ways: int
    fg_cost_unit: str
    bg_rate_unit: str
    sweep_is_measured: bool = True
    supports_dynamic: bool = True
    supports_energy: bool = False
    # Whether co_run_grid accepts a per-item platform config (an
    # operating point) — the joint (frequency x allocation) searches
    # need this; backends without it only take (spec, split) items.
    supports_operating_points: bool = False


@dataclass
class PairSpec:
    """A foreground/background workload pair in backend-native terms.

    ``fg``/``bg`` are whatever the backend runs — application models for
    :class:`~repro.backend.analytical.AnalyticalBackend`,
    :class:`~repro.sim.trace_engine.TraceWorkload` instances for
    :class:`~repro.backend.trace.TraceBackend`. ``options`` carries
    backend-specific run options (e.g. ``bg_continuous`` or
    ``timeline`` for the interval engine).
    """

    fg: object
    bg: object
    options: dict = field(default_factory=dict)

    @property
    def fg_name(self):
        return self.fg.name

    @property
    def bg_name(self):
        return self.bg.name


@dataclass
class SoloMeasurement:
    """One workload alone on the whole cache."""

    backend: str
    name: str
    cost: float  # same unit as CoRunMeasurement.fg_cost
    raw: object = None


@dataclass
class CoRunMeasurement:
    """The backend-neutral outcome of one co-run at one allocation.

    ``fg_cost`` is the foreground's degradation metric (runtime in
    seconds, or average access latency in cycles) — lower is better.
    ``bg_rate`` is the background's progress rate (instructions per
    second, or accesses per kilocycle) — higher is better. ``raw`` is
    the backend's native result (a :class:`~repro.sim.engine.PairResult`
    or a ``{name: TraceStats}`` dict); ``extra`` holds anything else a
    caller may want (controller actions, reallocation timelines, way
    curves).
    """

    backend: str
    fg_name: str
    bg_name: str
    fg_ways: int
    bg_ways: int
    fg_cost: float
    bg_rate: float
    raw: object = None
    extra: dict = field(default_factory=dict)


class SimBackend:
    """The protocol every simulation substrate implements.

    Concrete backends override :meth:`capabilities`, :meth:`solo` and
    :meth:`co_run`; :meth:`sweep` has a generic per-split default, and
    :meth:`dynamic` raises unless the backend supports a controller.
    """

    def capabilities(self):
        """Static description of this backend (a BackendCapabilities)."""
        raise NotImplementedError

    def solo(self, workload):
        """Measure one workload alone; returns a SoloMeasurement."""
        raise NotImplementedError

    def co_run(self, spec, split):
        """Co-run ``spec`` under ``split``; returns a CoRunMeasurement."""
        raise NotImplementedError

    def sweep(self, spec):
        """Score every disjoint split (fg gets 1..ways-1).

        Returns ``[(fg_ways, CoRunMeasurement)]`` in ascending foreground
        allocation order. The default measures each split with
        :meth:`co_run`; backends with a cheaper exact source (the trace
        engine's single-pass way profile) override this and set
        ``sweep_is_measured=False`` in their capabilities.
        """
        llc_ways = self.capabilities().llc_ways
        return [
            (fg_ways, self.co_run(spec, WaySplit.disjoint(fg_ways, llc_ways)))
            for fg_ways in range(1, llc_ways)
        ]

    def co_run_grid(self, items):
        """Measure a batch of co-run cells; returns ``[CoRunMeasurement]``.

        ``items`` is a sequence of ``(spec, split)`` pairs, optionally
        ``(spec, split, config)`` triples naming a per-cell operating
        point for backends whose capabilities set
        ``supports_operating_points``. The default walks the batch
        through :meth:`co_run` one cell at a time; vectorized backends
        override this with a single batched solve that must return
        results bit-identical to the sequential walk.
        """
        results = []
        for item in items:
            if len(item) == 3 and item[2] is not None:
                raise ValidationError(
                    f"backend {self.capabilities().name!r} does not support "
                    "per-cell operating points"
                )
            spec, split = item[0], item[1]
            results.append(self.co_run(spec, split))
        return results

    def dynamic(self, spec, controller=None):
        """Run ``spec`` under the dynamic controller.

        Returns a CoRunMeasurement whose ``extra`` carries at least
        ``actions`` (the controller's reallocation trail) and
        ``controller``.
        """
        raise ValidationError(
            f"backend {self.capabilities().name!r} does not support the "
            "dynamic controller"
        )
