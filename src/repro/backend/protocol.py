"""The simulation-backend protocol the policy layer is written against.

The paper's contribution is its *policies* — shared, fair, biased, and
the dynamic controller — not the substrate they run on. LFOC makes the
same point for fairness policies over commodity partitioning mechanisms,
and Nejat et al. coordinate partitioning with other knobs precisely
because the policy logic is decoupled from the mechanism. This module
pins that separation down as a small protocol:

- :class:`SimBackend` — ``solo(spec)``, ``co_run(spec, split)``,
  ``capabilities()``, plus ``sweep(spec)`` and ``dynamic(spec)`` hooks;
- :class:`WaySplit` — a backend-neutral LLC allocation (contiguous
  masks carved from opposite ends of the cache, overlapping when the
  way counts exceed the cache — the "shared" configuration);
- :class:`CoRunMeasurement` — the common result shape every policy
  consumes: a foreground cost (lower is better) and a background
  progress rate (higher is better), with the backend's native result
  attached as ``raw``.

:mod:`repro.core.policies` implements shared/fair/biased/dynamic once
against this protocol; :mod:`repro.backend.analytical` and
:mod:`repro.backend.trace` supply the two substrates (the interval
engine and the address-level trace engine).
"""

from dataclasses import dataclass, field

from repro.util.errors import ValidationError

# The native replay kernels bank counters for up to 16 partition
# domains per cell; the group protocol inherits that ceiling.
MAX_TENANTS = 16


@dataclass(frozen=True)
class WaySplit:
    """An LLC allocation for a foreground/background pair.

    Both backends realize a split the same way: the foreground's mask is
    the first ``fg_ways`` ways, the background's the last ``bg_ways``.
    When ``fg_ways + bg_ways`` exceeds the cache the masks overlap —
    ``WaySplit.shared`` gives the fully shared (no partitioning)
    configuration.
    """

    fg_ways: int
    bg_ways: int

    def __post_init__(self):
        if self.fg_ways < 1 or self.bg_ways < 1:
            raise ValidationError("both applications need at least one way")

    @classmethod
    def shared(cls, llc_ways):
        return cls(llc_ways, llc_ways)

    @classmethod
    def fair(cls, llc_ways):
        half = llc_ways // 2
        return cls(half, llc_ways - half)

    @classmethod
    def disjoint(cls, fg_ways, llc_ways):
        return cls(fg_ways, llc_ways - fg_ways)

    def overlaps(self, llc_ways):
        return self.fg_ways + self.bg_ways > llc_ways


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, and how its measurements read.

    ``fg_cost_unit`` / ``bg_rate_unit`` label the measurement axes
    (seconds and instructions/s for the analytical engine; cycles/access
    and accesses/kilocycle for the trace engine). ``sweep_is_measured``
    says whether ``sweep()`` entries are full co-run measurements that a
    policy may return directly (analytical), or profile-derived scores
    whose chosen split must be re-measured with ``co_run`` (trace).
    """

    name: str
    llc_ways: int
    fg_cost_unit: str
    bg_rate_unit: str
    sweep_is_measured: bool = True
    supports_dynamic: bool = True
    supports_energy: bool = False
    # Whether co_run_grid accepts a per-item platform config (an
    # operating point) — the joint (frequency x allocation) searches
    # need this; backends without it only take (spec, split) items.
    supports_operating_points: bool = False


@dataclass
class PairSpec:
    """A foreground/background workload pair in backend-native terms.

    ``fg``/``bg`` are whatever the backend runs — application models for
    :class:`~repro.backend.analytical.AnalyticalBackend`,
    :class:`~repro.sim.trace_engine.TraceWorkload` instances for
    :class:`~repro.backend.trace.TraceBackend`. ``options`` carries
    backend-specific run options (e.g. ``bg_continuous`` or
    ``timeline`` for the interval engine).
    """

    fg: object
    bg: object
    options: dict = field(default_factory=dict)

    @property
    def fg_name(self):
        return self.fg.name

    @property
    def bg_name(self):
        return self.bg.name


@dataclass
class SoloMeasurement:
    """One workload alone on the whole cache."""

    backend: str
    name: str
    cost: float  # same unit as CoRunMeasurement.fg_cost
    raw: object = None


@dataclass
class CoRunMeasurement:
    """The backend-neutral outcome of one co-run at one allocation.

    ``fg_cost`` is the foreground's degradation metric (runtime in
    seconds, or average access latency in cycles) — lower is better.
    ``bg_rate`` is the background's progress rate (instructions per
    second, or accesses per kilocycle) — higher is better. ``raw`` is
    the backend's native result (a :class:`~repro.sim.engine.PairResult`
    or a ``{name: TraceStats}`` dict); ``extra`` holds anything else a
    caller may want (controller actions, reallocation timelines, way
    curves).
    """

    backend: str
    fg_name: str
    bg_name: str
    fg_ways: int
    bg_ways: int
    fg_cost: float
    bg_rate: float
    raw: object = None
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class GroupSplit:
    """An LLC allocation for an N-tenant group.

    ``mask_bits[i]`` is tenant *i*'s way mask as an integer bit pattern
    over ``llc_ways`` ways (bit 0 = way 0). Unlike :class:`WaySplit`,
    masks are arbitrary — tenants may share a mask (a cluster), overlap
    partially, or own disjoint contiguous regions. The pair case remains
    a view: every split a pair policy can produce (shared, fair, or
    disjoint fg-bottom/bg-top) round-trips through
    :meth:`from_pair`/:meth:`pair_view` without loss.
    """

    mask_bits: tuple
    llc_ways: int = 12

    def __post_init__(self):
        object.__setattr__(self, "mask_bits", tuple(int(b) for b in self.mask_bits))
        n = len(self.mask_bits)
        if not 1 <= n <= MAX_TENANTS:
            raise ValidationError(
                f"a group split needs 1..{MAX_TENANTS} tenants, got {n}"
            )
        if self.llc_ways < 1:
            raise ValidationError("the cache needs at least one way")
        full = (1 << self.llc_ways) - 1
        for i, bits in enumerate(self.mask_bits):
            if bits <= 0:
                raise ValidationError(f"tenant {i} has an empty way mask")
            if bits & ~full:
                raise ValidationError(
                    f"tenant {i} mask {bits:#x} exceeds {self.llc_ways} ways"
                )

    @classmethod
    def shared(cls, tenants, llc_ways):
        """Every tenant sees the whole cache (no partitioning)."""
        full = (1 << llc_ways) - 1
        return cls(tuple(full for _ in range(tenants)), llc_ways)

    @classmethod
    def fair(cls, tenants, llc_ways):
        """Contiguous even apportioning, remainder to the earliest tenants."""
        base, extra = divmod(llc_ways, tenants)
        if base < 1:
            raise ValidationError(
                f"cannot fairly split {llc_ways} ways across {tenants} tenants"
            )
        counts = [base + (1 if i < extra else 0) for i in range(tenants)]
        return cls.from_way_counts(counts, llc_ways)

    @classmethod
    def from_way_counts(cls, counts, llc_ways):
        """Pack disjoint contiguous regions bottom-up from way 0."""
        counts = [int(c) for c in counts]
        if sum(counts) > llc_ways:
            raise ValidationError(
                f"way counts {counts} exceed the {llc_ways}-way cache"
            )
        bits, offset = [], 0
        for count in counts:
            if count < 1:
                raise ValidationError("every tenant needs at least one way")
            bits.append(((1 << count) - 1) << offset)
            offset += count
        return cls(tuple(bits), llc_ways)

    @classmethod
    def from_pair(cls, split, llc_ways):
        """Realize a :class:`WaySplit` the way both backends do: the
        foreground takes the first ``fg_ways`` ways, the background the
        last ``bg_ways``."""
        if split.fg_ways > llc_ways or split.bg_ways > llc_ways:
            raise ValidationError(
                f"pair split {split} exceeds the {llc_ways}-way cache"
            )
        fg = (1 << split.fg_ways) - 1
        bg = ((1 << split.bg_ways) - 1) << (llc_ways - split.bg_ways)
        return cls((fg, bg), llc_ways)

    @property
    def tenants(self):
        return len(self.mask_bits)

    @property
    def way_counts(self):
        return tuple(bin(bits).count("1") for bits in self.mask_bits)

    def pair_view(self):
        """The equivalent :class:`WaySplit` when this is a 2-tenant split
        in the canonical pair shape (fg bottom-contiguous, bg
        top-contiguous), else ``None``."""
        if len(self.mask_bits) != 2:
            return None
        fg_bits, bg_bits = self.mask_bits
        fg_ways, bg_ways = self.way_counts
        if fg_bits != (1 << fg_ways) - 1:
            return None
        if bg_bits != ((1 << bg_ways) - 1) << (self.llc_ways - bg_ways):
            return None
        return WaySplit(fg_ways, bg_ways)


@dataclass
class TenantSet:
    """An N-tenant workload group in backend-native terms.

    ``tenants`` are whatever the backend runs (application models or
    :class:`~repro.sim.trace_engine.TraceWorkload` instances), in
    priority order: tenant 0 is the primary (the latency-sensitive
    foreground of the pair protocol), the rest are peers. ``names``
    may be given explicitly to alias duplicate workloads; it defaults
    to each tenant's own ``name``. A group built with :meth:`from_pair`
    keeps the original :class:`PairSpec` so 2-tenant delegation hands
    the backend the exact object a seed call site would have.
    """

    tenants: list
    options: dict = field(default_factory=dict)
    names: tuple = None
    pair: object = None

    def __post_init__(self):
        self.tenants = list(self.tenants)
        n = len(self.tenants)
        if not 2 <= n <= MAX_TENANTS:
            raise ValidationError(
                f"a tenant group needs 2..{MAX_TENANTS} tenants, got {n}"
            )
        if self.names is None:
            self.names = tuple(t.name for t in self.tenants)
        else:
            self.names = tuple(str(name) for name in self.names)
        if len(self.names) != n:
            raise ValidationError(
                f"{n} tenants but {len(self.names)} names"
            )
        if len(set(self.names)) != n:
            raise ValidationError(
                f"tenant names must be unique, got {list(self.names)}"
            )

    @classmethod
    def from_pair(cls, spec):
        # A pair may legitimately co-run a workload with itself; alias
        # the background so group names stay unique.
        fg_name, bg_name = spec.fg_name, spec.bg_name
        if bg_name == fg_name:
            bg_name = f"{bg_name}#2"
        return cls(
            tenants=[spec.fg, spec.bg],
            options=spec.options,
            names=(fg_name, bg_name),
            pair=spec,
        )

    @property
    def primary(self):
        return self.tenants[0]

    def pair_spec(self):
        """The 2-tenant view as a :class:`PairSpec` (the original object
        when this group was built from one)."""
        if self.pair is not None:
            return self.pair
        if len(self.tenants) != 2:
            raise ValidationError(
                f"a {len(self.tenants)}-tenant group has no pair view"
            )
        return PairSpec(fg=self.tenants[0], bg=self.tenants[1], options=self.options)


@dataclass
class GroupMeasurement:
    """The backend-neutral outcome of one N-tenant co-run.

    ``costs[i]``/``rates[i]`` are tenant *i*'s degradation metric and
    progress rate in the backend's units (``None`` when the substrate
    did not measure that axis for that tenant). When the measurement
    came through the 2-tenant pair delegation, ``pair`` holds the
    wrapped :class:`CoRunMeasurement` and the ``fg_*``/``bg_*``
    properties read from it — byte-identical to the pre-group protocol.
    """

    backend: str
    names: tuple
    split: GroupSplit
    costs: tuple
    rates: tuple
    raw: object = None
    pair: object = None
    extra: dict = field(default_factory=dict)

    @property
    def fg_name(self):
        return self.names[0]

    @property
    def fg_cost(self):
        if self.pair is not None:
            return self.pair.fg_cost
        return self.costs[0]

    @property
    def bg_rate(self):
        if self.pair is not None:
            return self.pair.bg_rate
        return sum(rate for rate in self.rates[1:] if rate is not None)

    @property
    def fg_ways(self):
        if self.pair is not None:
            return self.pair.fg_ways
        return self.split.way_counts[0]

    @property
    def bg_ways(self):
        if self.pair is not None:
            return self.pair.bg_ways
        counts = self.split.way_counts
        return max(counts[1:]) if len(counts) > 1 else 0


@dataclass(frozen=True)
class WayUtility:
    """A tenant's way-utility curve: LLC hits at 1..N allocated ways.

    This is the classification signal for LFOC-style clustering — the
    trace backend derives it from the single-pass way profile (an MRC),
    the analytical backend from cached solo runs at each allocation.
    """

    name: str
    hits_by_ways: tuple
    accesses: float

    @property
    def llc_ways(self):
        return len(self.hits_by_ways)

    def hits_at(self, ways):
        if not 1 <= ways <= self.llc_ways:
            raise ValidationError(
                f"ways must be 1..{self.llc_ways}, got {ways}"
            )
        return self.hits_by_ways[ways - 1]

    def misses_at(self, ways):
        return max(0.0, self.accesses - self.hits_at(ways))

    def miss_ratio_at(self, ways):
        if not self.accesses:
            return 0.0
        return self.misses_at(ways) / self.accesses


class SimBackend:
    """The protocol every simulation substrate implements.

    Concrete backends override :meth:`capabilities`, :meth:`solo` and
    :meth:`co_run`; :meth:`sweep` has a generic per-split default, and
    :meth:`dynamic` raises unless the backend supports a controller.
    The group methods (:meth:`co_run_group`, :meth:`dynamic_group`,
    :meth:`way_utility`) default to the 2-tenant pair delegation so a
    backend that only speaks pairs still serves pair-shaped groups.
    """

    def capabilities(self):
        """Static description of this backend (a BackendCapabilities)."""
        raise NotImplementedError

    def solo(self, workload):
        """Measure one workload alone; returns a SoloMeasurement."""
        raise NotImplementedError

    def co_run(self, spec, split):
        """Co-run ``spec`` under ``split``; returns a CoRunMeasurement."""
        raise NotImplementedError

    def sweep(self, spec):
        """Score every disjoint split (fg gets 1..ways-1).

        Returns ``[(fg_ways, CoRunMeasurement)]`` in ascending foreground
        allocation order. The default measures each split with
        :meth:`co_run`; backends with a cheaper exact source (the trace
        engine's single-pass way profile) override this and set
        ``sweep_is_measured=False`` in their capabilities.
        """
        llc_ways = self.capabilities().llc_ways
        return [
            (fg_ways, self.co_run(spec, WaySplit.disjoint(fg_ways, llc_ways)))
            for fg_ways in range(1, llc_ways)
        ]

    def co_run_grid(self, items):
        """Measure a batch of co-run cells; returns ``[CoRunMeasurement]``.

        ``items`` is a sequence of ``(spec, split)`` pairs, optionally
        ``(spec, split, config)`` triples naming a per-cell operating
        point for backends whose capabilities set
        ``supports_operating_points``. The default walks the batch
        through :meth:`co_run` one cell at a time; vectorized backends
        override this with a single batched solve that must return
        results bit-identical to the sequential walk.
        """
        results = []
        for item in items:
            if len(item) == 3 and item[2] is not None:
                raise ValidationError(
                    f"backend {self.capabilities().name!r} does not support "
                    "per-cell operating points"
                )
            spec, split = item[0], item[1]
            results.append(self.co_run(spec, split))
        return results

    def dynamic(self, spec, controller=None):
        """Run ``spec`` under the dynamic controller.

        Returns a CoRunMeasurement whose ``extra`` carries at least
        ``actions`` (the controller's reallocation trail) and
        ``controller``.
        """
        raise ValidationError(
            f"backend {self.capabilities().name!r} does not support the "
            "dynamic controller"
        )

    def _pair_group_measurement(self, group, split):
        """Serve a pair-shaped 2-tenant group through :meth:`co_run`.

        Returns ``None`` when the group is not pair-shaped. The wrapped
        :class:`CoRunMeasurement` comes from the exact call a seed pair
        site would make, so delegated results are bit-identical.
        """
        if len(group.tenants) != 2:
            return None
        pair_split = split.pair_view()
        if pair_split is None:
            return None
        measurement = self.co_run(group.pair_spec(), pair_split)
        return GroupMeasurement(
            backend=measurement.backend,
            names=(measurement.fg_name, measurement.bg_name),
            split=split,
            costs=(measurement.fg_cost, None),
            rates=(None, measurement.bg_rate),
            raw=measurement.raw,
            pair=measurement,
            extra=measurement.extra,
        )

    def co_run_group(self, group, split):
        """Co-run an N-tenant ``group`` under a :class:`GroupSplit`.

        Returns a :class:`GroupMeasurement`. The default serves
        pair-shaped 2-tenant groups via :meth:`co_run` and raises for
        anything larger; N-native backends override this.
        """
        measurement = self._pair_group_measurement(group, split)
        if measurement is None:
            raise ValidationError(
                f"backend {self.capabilities().name!r} only supports "
                "pair-shaped 2-tenant groups"
            )
        return measurement

    def dynamic_group(self, group, controller=None):
        """Run an N-tenant group under a dynamic controller.

        Returns a :class:`GroupMeasurement` whose ``extra`` carries at
        least ``actions`` and ``controller``. The default delegates
        2-tenant groups to :meth:`dynamic` and raises for larger ones.
        """
        if len(group.tenants) == 2:
            measurement = self.dynamic(group.pair_spec(), controller=controller)
            llc_ways = self.capabilities().llc_ways
            split = GroupSplit.from_pair(
                WaySplit(measurement.fg_ways, measurement.bg_ways), llc_ways
            )
            return GroupMeasurement(
                backend=measurement.backend,
                names=(measurement.fg_name, measurement.bg_name),
                split=split,
                costs=(measurement.fg_cost, None),
                rates=(None, measurement.bg_rate),
                raw=measurement.raw,
                pair=measurement,
                extra=measurement.extra,
            )
        raise ValidationError(
            f"backend {self.capabilities().name!r} does not support "
            "dynamic groups beyond pairs"
        )

    def way_utility(self, group):
        """Per-tenant way-utility curves: ``{name: WayUtility}``."""
        raise ValidationError(
            f"backend {self.capabilities().name!r} does not expose "
            "way-utility curves"
        )
