"""The trace-engine backend: policies over address-level replay.

Wraps :class:`repro.sim.trace_engine.TraceEngine` behind
:class:`~repro.backend.protocol.SimBackend`, so the Section 5 policy
suite (and the dynamic controller) runs against *actual line
replacement* — the mechanism-level ground truth the occupancy model
approximates:

- ``co_run`` replays compiled trace packs through ``run_packed`` with
  the split's way masks applied (a fresh hierarchy per run, exactly the
  pre-refactor per-mask methodology);
- ``sweep`` does NOT re-simulate per split: one profiled co-run
  (:func:`repro.sim.trace_engine.way_allocation_sweep`, a per-domain
  UMON) yields exact ``hits(ways)`` curves, and every disjoint split is
  scored from those curves — foreground cost as misses at its
  allocation, background rate as hits at the complement. The biased
  policy then measures only its chosen split;
- ``dynamic`` drives :meth:`TraceEngine.run_dynamic` — epoch-resumable
  replay with flush-free reallocation between control periods.

``fg_cost`` is the foreground's average access latency in cycles;
``bg_rate`` is the background's accesses per kilocycle of its own
virtual time. Both are deterministic and identical across the native
and pure-Python kernels.
"""

from repro.backend.protocol import (
    BackendCapabilities,
    CoRunMeasurement,
    GroupMeasurement,
    GroupSplit,
    PairSpec,
    SimBackend,
    SoloMeasurement,
    TenantSet,
    WaySplit,
    WayUtility,
)
from repro.util.errors import ValidationError

DEFAULT_TOTAL_ACCESSES = 120_000
DEFAULT_EPOCH_ACCESSES = 4_000


class TraceBackend(SimBackend):
    """Shared/fair/biased/dynamic over the address-level trace engine."""

    def __init__(self, total_accesses=DEFAULT_TOTAL_ACCESSES,
                 cache_backend="kernel", prefetchers_on=False,
                 use_packs=True, epoch_accesses=DEFAULT_EPOCH_ACCESSES,
                 dynamic_total_accesses=None, measured_sweep=False,
                 native_threads=None):
        if total_accesses < 1:
            raise ValidationError("total_accesses must be positive")
        self.total_accesses = total_accesses
        self.cache_backend = cache_backend
        self.prefetchers_on = prefetchers_on
        self.use_packs = use_packs
        self.epoch_accesses = epoch_accesses
        self.dynamic_total_accesses = (
            dynamic_total_accesses or total_accesses
        )
        self.measured_sweep = measured_sweep
        self.native_threads = native_threads

    def capabilities(self):
        from repro.cache.profile import LLC_NUM_WAYS

        return BackendCapabilities(
            name="trace",
            llc_ways=LLC_NUM_WAYS,
            fg_cost_unit="cycles/access",
            bg_rate_unit="accesses/kcycle",
            sweep_is_measured=self.measured_sweep,
            supports_dynamic=True,
            supports_energy=False,
        )

    # -- engine plumbing ----------------------------------------------------

    def _fresh_engine(self, spec=None, split=None):
        """A new hierarchy, with ``split``'s way masks applied if given."""
        from repro.cache.llc import WayMask
        from repro.sim.trace_engine import TraceEngine

        engine = TraceEngine(
            prefetchers_on=self.prefetchers_on, backend=self.cache_backend
        )
        if split is not None:
            llc_ways = self.capabilities().llc_ways
            core_of = engine.hierarchy.core_of_tid
            engine.hierarchy.set_way_mask(
                core_of(spec.fg.tid),
                WayMask.contiguous(split.fg_ways, 0, llc_ways),
            )
            engine.hierarchy.set_way_mask(
                core_of(spec.bg.tid),
                WayMask.contiguous(
                    split.bg_ways, llc_ways - split.bg_ways, llc_ways
                ),
            )
        return engine

    def _run(self, engine, workloads, total_accesses):
        if self.use_packs:
            return engine.run_packed(workloads, total_accesses=total_accesses)
        return engine.run(workloads, total_accesses=total_accesses)

    @staticmethod
    def _rate(stats):
        return stats.access_rate_per_kilocycle

    # -- the protocol -------------------------------------------------------

    def solo(self, workload):
        """The workload alone on the whole (unpartitioned) cache."""
        engine = self._fresh_engine()
        stats = self._run(engine, [workload], self.total_accesses)
        return SoloMeasurement(
            backend="trace",
            name=workload.name,
            cost=stats[workload.name].avg_latency,
            raw=stats,
        )

    def co_run(self, spec, split):
        engine = self._fresh_engine(spec, split)
        stats = self._run(engine, [spec.fg, spec.bg], self.total_accesses)
        return CoRunMeasurement(
            backend="trace",
            fg_name=spec.fg_name,
            bg_name=spec.bg_name,
            fg_ways=split.fg_ways,
            bg_ways=split.bg_ways,
            fg_cost=stats[spec.fg_name].avg_latency,
            bg_rate=self._rate(stats[spec.bg_name]),
            raw=stats,
        )

    def sweep_roster_cells(self, spec):
        """``(splits, RosterCells)`` for the measured sweep's roster.

        One RosterCell per disjoint split, masks built exactly as
        :meth:`co_run` builds them. Exposed separately so the campaign
        runner can concatenate many cells' sweeps into ONE batched
        native call; :meth:`_measured_sweep` replays just this pair's.
        """
        from repro.cache.llc import WayMask
        from repro.sim.trace_engine import RosterCell

        llc_ways = self.capabilities().llc_ways
        fg_core = spec.fg.tid // 2
        bg_core = spec.bg.tid // 2
        splits = [
            WaySplit.disjoint(fg_ways, llc_ways)
            for fg_ways in range(1, llc_ways)
        ]
        cells = [
            RosterCell(
                workloads=[spec.fg, spec.bg],
                masks={
                    fg_core: WayMask.contiguous(s.fg_ways, 0, llc_ways),
                    bg_core: WayMask.contiguous(
                        s.bg_ways, llc_ways - s.bg_ways, llc_ways
                    ),
                },
                total_accesses=self.total_accesses,
            )
            for s in splits
        ]
        return splits, cells

    def sweep_entries(self, spec, splits, outcomes):
        """``[(fg_ways, CoRunMeasurement)]`` from replayed sweep stats."""
        out = []
        for split, stats in zip(splits, outcomes):
            out.append(
                (
                    split.fg_ways,
                    CoRunMeasurement(
                        backend="trace",
                        fg_name=spec.fg_name,
                        bg_name=spec.bg_name,
                        fg_ways=split.fg_ways,
                        bg_ways=split.bg_ways,
                        fg_cost=stats[spec.fg_name].avg_latency,
                        bg_rate=self._rate(stats[spec.bg_name]),
                        raw=stats,
                        extra={"source": "measured"},
                    ),
                )
            )
        return out

    def _measured_sweep(self, spec):
        """Every disjoint split actually replayed, in ONE native call.

        The batched kernel runs all 11 allocations as independent cells
        of a roster — each with its own fresh hierarchy copy and its own
        way masks — so the entries are true measurements, bit-identical
        to calling :meth:`co_run` per split, at roughly the cost of one
        replay's Python overhead. Falls back (inside
        ``run_packed_roster``) to the sequential per-split path when the
        batch kernel is unavailable; results are identical either way.
        """
        from repro.sim.trace_engine import run_packed_roster

        splits, cells = self.sweep_roster_cells(spec)
        outcomes = run_packed_roster(
            cells,
            prefetchers_on=self.prefetchers_on,
            backend=self.cache_backend,
            threads=self.native_threads,
        )
        return self.sweep_entries(spec, splits, outcomes)

    def sweep(self, spec):
        """Every disjoint split, scored from ONE profiled co-run.

        The per-domain stack-distance curves are exact under true LRU
        (what the UMON directories model), so the scores rank splits
        exactly as per-mask re-simulation of the profiled stream would —
        without 11 replays. Entries are scores, not measurements
        (``sweep_is_measured=False``): the policy layer re-measures the
        split it finally picks with :meth:`co_run`.

        With ``measured_sweep=True`` every split is instead *replayed*
        through the batched native kernel (one C call for the whole
        sweep) and the entries are real measurements — see
        :meth:`_measured_sweep`.
        """
        from repro.sim.trace_engine import way_allocation_sweep

        if self.measured_sweep:
            if not self.use_packs:
                # No packs, no batch kernel: the generic per-split
                # co_run loop is the measured reference.
                return SimBackend.sweep(self, spec)
            return self._measured_sweep(spec)

        llc_ways = self.capabilities().llc_ways
        workloads = [spec.fg, spec.bg]
        stats, curves = way_allocation_sweep(
            workloads,
            total_accesses=self.total_accesses,
            prefetchers_on=self.prefetchers_on,
            backend=self.cache_backend,
            use_packs=self.use_packs,
        )
        fg_curve = curves[spec.fg.tid // 2]
        bg_curve = curves[spec.bg.tid // 2]
        out = []
        for fg_ways in range(1, llc_ways):
            bg_ways = llc_ways - fg_ways
            out.append(
                (
                    fg_ways,
                    CoRunMeasurement(
                        backend="trace",
                        fg_name=spec.fg_name,
                        bg_name=spec.bg_name,
                        fg_ways=fg_ways,
                        bg_ways=bg_ways,
                        fg_cost=float(fg_curve.misses(fg_ways)),
                        bg_rate=float(bg_curve.hits(bg_ways)),
                        raw=None,
                        extra={"source": "profile"},
                    ),
                )
            )
        return out

    def dynamic_roster_cell(self, spec, controller=None):
        """The :class:`~repro.sim.trace_engine.DynamicRosterCell`
        realizing one dynamic cell, with the default controller the
        per-cell reference path would build — the campaign runner packs
        many of these into one :func:`run_dynamic_roster` call."""
        from repro.core.dynamic import DynamicPartitionController
        from repro.sim.trace_engine import DynamicRosterCell

        if controller is None:
            controller = DynamicPartitionController(
                fg_name=spec.fg_name, bg_name=spec.bg_name
            )
        return DynamicRosterCell(
            workloads=[spec.fg, spec.bg],
            controller=controller,
            epoch_accesses=self.epoch_accesses,
            total_accesses=self.dynamic_total_accesses,
        )

    def dynamic_measurement(self, spec, controller, result):
        """The CoRunMeasurement for one finished dynamic replay —
        shared by :meth:`dynamic` and the campaign's dynamic-roster
        shard executor, so both produce field-identical records."""
        llc_ways = self.capabilities().llc_ways
        return CoRunMeasurement(
            backend="trace",
            fg_name=spec.fg_name,
            bg_name=spec.bg_name,
            fg_ways=controller.fg_ways,
            bg_ways=llc_ways - controller.fg_ways,
            fg_cost=result.stats[spec.fg_name].avg_latency,
            bg_rate=self._rate(result.stats[spec.bg_name]),
            raw=result.stats,
            extra={
                "controller": controller,
                "actions": result.actions,
                "timeline": result.timeline,
                "epochs": result.epochs,
                "native": result.native,
                "result": result,
            },
        )

    def dynamic(self, spec, controller=None):
        """Epoch-resumable replay under the dynamic controller.

        Runs as a one-cell dynamic roster through the batched epoch
        kernel (:func:`~repro.sim.trace_engine.run_dynamic_roster`),
        which falls back to the sequential ``run_dynamic`` driver —
        bit-identical either way — when the epoch-batch kernel is
        unavailable or the cell is not batchable.
        """
        from repro.sim.trace_engine import run_dynamic_roster

        cell = self.dynamic_roster_cell(spec, controller)
        result = run_dynamic_roster(
            [cell],
            prefetchers_on=self.prefetchers_on,
            backend=self.cache_backend,
            threads=self.native_threads,
            sequential=not self.use_packs,
        )[0]
        return self.dynamic_measurement(spec, cell.controller, result)

    # -- N-tenant groups ----------------------------------------------------

    def _group_masks(self, group, split):
        """``{core: WayMask}`` for a group cell, one distinct core per
        tenant (the trace hierarchy maps ``tid // 2`` to a core)."""
        from repro.cache.llc import WayMask

        llc_ways = self.capabilities().llc_ways
        masks = {}
        for tenant, bits in zip(group.tenants, split.mask_bits):
            core = tenant.tid // 2
            if core in masks:
                raise ValidationError(
                    f"group tenants must live on distinct cores; core "
                    f"{core} is claimed twice (tid {tenant.tid})"
                )
            masks[core] = WayMask.from_bits(bits, llc_ways)
        return masks

    def group_roster_cell(self, group, split):
        """The :class:`~repro.sim.trace_engine.RosterCell` realizing one
        N-tenant co-run — the campaign planner packs many of these into
        one :func:`run_packed_roster` call."""
        from repro.sim.trace_engine import RosterCell

        return RosterCell(
            workloads=list(group.tenants),
            masks=self._group_masks(group, split),
            total_accesses=self.total_accesses,
        )

    def group_measurement(self, group, split, stats):
        """The GroupMeasurement for one finished group replay — shared
        by :meth:`co_run_group` and the campaign's roster/cluster shard
        executors, so both produce field-identical records."""
        return GroupMeasurement(
            backend="trace",
            names=tuple(group.names),
            split=split,
            costs=tuple(stats[n].avg_latency for n in group.names),
            rates=tuple(self._rate(stats[n]) for n in group.names),
            raw=stats,
        )

    def co_run_group(self, group, split):
        """Co-run N tenants under per-tenant way masks.

        Pair-shaped 2-tenant groups delegate to :meth:`co_run` (bit-
        identical to the seed pair path). Larger groups replay as a
        one-cell roster through the batched native kernel; without
        packs the address-level engine runs them directly.
        """
        measurement = self._pair_group_measurement(group, split)
        if measurement is not None:
            return measurement
        if not self.use_packs:
            engine = self._fresh_engine()
            for core, mask in self._group_masks(group, split).items():
                engine.hierarchy.set_way_mask(core, mask)
            stats = self._run(engine, list(group.tenants),
                              self.total_accesses)
        else:
            from repro.sim.trace_engine import run_packed_roster

            cell = self.group_roster_cell(group, split)
            stats = run_packed_roster(
                [cell],
                prefetchers_on=self.prefetchers_on,
                backend=self.cache_backend,
                threads=self.native_threads,
            )[0]
        return self.group_measurement(group, split, stats)

    def group_dynamic_roster_cell(self, group, controller=None):
        """The DynamicRosterCell realizing one dynamic group cell, with
        the default controller treating tenant 0 as the foreground and
        the rest as peers sharing the complement mask."""
        from repro.core.dynamic import DynamicPartitionController
        from repro.sim.trace_engine import DynamicRosterCell

        if controller is None:
            controller = DynamicPartitionController(
                fg_name=group.names[0], bg_name=tuple(group.names[1:])
            )
        return DynamicRosterCell(
            workloads=list(group.tenants),
            controller=controller,
            epoch_accesses=self.epoch_accesses,
            total_accesses=self.dynamic_total_accesses,
        )

    def group_dynamic_measurement(self, group, controller, result):
        llc_ways = self.capabilities().llc_ways
        masks = controller.masks()
        split = GroupSplit(
            tuple(masks[name].bits for name in group.names), llc_ways
        )
        extra = {
            "controller": controller,
            "actions": result.actions,
            "timeline": result.timeline,
            "epochs": result.epochs,
            "native": result.native,
            "result": result,
        }
        lifetime = getattr(controller, "lifetime", None)
        if lifetime is not None:
            extra["lifetime"] = lifetime
        measurement = self.group_measurement(group, split, result.stats)
        measurement.extra = extra
        return measurement

    def dynamic_group(self, group, controller=None):
        """N-tenant epoch-resumable replay under a dynamic controller
        (the Algorithm 6.2 controller with peers, or a churn schedule),
        through the flush-free mask hand-off of the epoch-batch kernel.
        """
        if len(group.tenants) == 2 and controller is None:
            return SimBackend.dynamic_group(self, group, controller=None)
        from repro.sim.trace_engine import run_dynamic_roster

        self._group_masks(group, GroupSplit.shared(
            len(group.tenants), self.capabilities().llc_ways
        ))  # distinct-core validation up front
        cell = self.group_dynamic_roster_cell(group, controller)
        result = run_dynamic_roster(
            [cell],
            prefetchers_on=self.prefetchers_on,
            backend=self.cache_backend,
            threads=self.native_threads,
            sequential=not self.use_packs,
        )[0]
        return self.group_dynamic_measurement(group, cell.controller, result)

    def way_utility(self, group):
        """Per-tenant way-utility curves from ONE profiled group co-run
        (the same single-pass UMON directories :meth:`sweep` uses)."""
        from repro.sim.trace_engine import way_allocation_sweep

        llc_ways = self.capabilities().llc_ways
        stats, curves = way_allocation_sweep(
            list(group.tenants),
            total_accesses=self.total_accesses,
            prefetchers_on=self.prefetchers_on,
            backend=self.cache_backend,
            use_packs=self.use_packs,
        )
        out = {}
        for tenant, name in zip(group.tenants, group.names):
            curve = curves[tenant.tid // 2]
            hits = tuple(
                float(curve.hits(w)) for w in range(1, llc_ways + 1)
            )
            accesses = float(curve.hits(llc_ways) + curve.misses(llc_ways))
            out[name] = WayUtility(
                name=name, hits_by_ways=hits, accesses=accesses
            )
        return out

    # Convenience used by the CLI, bench, and tests.
    @staticmethod
    def pair_spec(fg_factory, bg_factory, fg_name="fg", bg_name="bg",
                  fg_tid=0, bg_tid=4, fg_think=6, bg_think=2, **options):
        """A PairSpec from two picklable trace factories."""
        from repro.sim.trace_engine import TraceWorkload

        return PairSpec(
            fg=TraceWorkload(fg_name, fg_factory, tid=fg_tid,
                             think_cycles=fg_think),
            bg=TraceWorkload(bg_name, bg_factory, tid=bg_tid,
                             think_cycles=bg_think),
            options=options,
        )


__all__ = ["GroupSplit", "TenantSet", "TraceBackend", "WaySplit"]
