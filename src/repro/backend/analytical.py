"""The interval-engine backend: policies over ``Machine.run_pair``.

Wraps :class:`repro.sim.engine.Machine` (and its IntervalMemo and shared
solo cache) behind :class:`~repro.backend.protocol.SimBackend`. The
mapping is exactly what the pre-refactor policy code did — the same
``paper_pair_allocations`` masks, the same ``run_pair`` calls in the
same order — so policy outcomes through this backend are bit-identical
to the seed implementation.
"""

from repro.backend.protocol import (
    BackendCapabilities,
    CoRunMeasurement,
    SimBackend,
    SoloMeasurement,
    WaySplit,
)
from repro.runtime.harness import paper_pair_allocations
from repro.util.errors import ValidationError

PAPER_THREADS = 4


class AnalyticalBackend(SimBackend):
    """Shared/fair/biased/dynamic over the statistical interval engine.

    ``fg_cost`` is the foreground runtime in seconds; ``bg_rate`` is the
    background's instructions per second while the foreground ran
    (``PairResult.bg_rate_ips``). ``raw`` is the full
    :class:`~repro.sim.engine.PairResult`, energy included.
    """

    def __init__(self, machine=None):
        if machine is None:
            from repro.sim.engine import Machine

            machine = Machine()
        self.machine = machine

    def capabilities(self):
        return BackendCapabilities(
            name="analytical",
            llc_ways=self.machine.config.llc_ways,
            fg_cost_unit="s",
            bg_rate_unit="instr/s",
            sweep_is_measured=True,
            supports_dynamic=True,
            supports_energy=True,
            supports_operating_points=True,
        )

    @staticmethod
    def _grid_options(options):
        """The grid solver's supported option subset, or None.

        ``run_pair_grid`` covers the continuous-background, uncontrolled
        steady-state case (what sweeps and campaigns run). Anything else
        — a finite background, the dynamic controller, timelines, or
        custom step sizes — falls back to the scalar engine.
        """
        known = {"bg_continuous": True, "prefetchers_on": True}
        merged = dict(known, **options)
        if set(merged) != set(known) or merged["bg_continuous"] is not True:
            return None
        if not isinstance(merged["prefetchers_on"], bool):
            return None
        return merged

    def solo(self, app, threads=None):
        """The app alone in the paper's co-run slot, via the solo cache."""
        if threads is None:
            threads = 1 if app.scalability.single_threaded else PAPER_THREADS
        result = self.machine.run_solo_cached(
            app, threads=threads, ways=self.machine.config.llc_ways
        )
        return SoloMeasurement(
            backend="analytical", name=app.name, cost=result.runtime_s,
            raw=result,
        )

    def co_run(self, spec, split):
        llc_ways = self.machine.config.llc_ways
        fg_alloc, bg_alloc = paper_pair_allocations(
            spec.fg, spec.bg, split.fg_ways, split.bg_ways, llc_ways
        )
        pair = self.machine.run_pair(
            spec.fg, spec.bg, fg_alloc, bg_alloc, **spec.options
        )
        return CoRunMeasurement(
            backend="analytical",
            fg_name=spec.fg_name,
            bg_name=spec.bg_name,
            fg_ways=split.fg_ways,
            bg_ways=split.bg_ways,
            fg_cost=pair.fg.runtime_s,
            bg_rate=pair.bg_rate_ips,
            raw=pair,
        )

    def co_run_grid(self, items):
        """Vectorized batch of co-runs via :mod:`repro.sim.gridsolve`.

        ``items`` are ``(spec, split)`` pairs or ``(spec, split, config)``
        triples (per-cell operating points). Cells whose options the
        grid solver covers are solved in one vectorized call; the rest
        run through the scalar :meth:`co_run`. Results are returned in
        item order and are bit-identical to the sequential walk.
        """
        from repro.sim.gridsolve import GridCell, run_pair_grid

        items = list(items)
        cells = {}
        for i, item in enumerate(items):
            spec, split = item[0], item[1]
            config = item[2] if len(item) == 3 else None
            options = self._grid_options(spec.options)
            if options is None:
                continue
            cfg = config or self.machine.config
            fg_alloc, bg_alloc = paper_pair_allocations(
                spec.fg, spec.bg, split.fg_ways, split.bg_ways, cfg.llc_ways
            )
            cells[i] = GridCell(
                fg=spec.fg,
                bg=spec.bg,
                fg_allocation=fg_alloc,
                bg_allocation=bg_alloc,
                config=config,
                prefetchers_on=options["prefetchers_on"],
            )
        order = sorted(cells)
        pairs = run_pair_grid(
            [cells[i] for i in order],
            tuning=self.machine.tuning,
            config=self.machine.config,
        )
        solved = dict(zip(order, pairs))

        results = []
        for i, item in enumerate(items):
            spec, split = item[0], item[1]
            pair = solved.get(i)
            if pair is None:
                config = item[2] if len(item) == 3 else None
                if config is not None:
                    raise ValidationError(
                        "per-cell operating points require grid-solvable "
                        f"options; got {spec.options!r}"
                    )
                results.append(self.co_run(spec, split))
                continue
            results.append(
                CoRunMeasurement(
                    backend="analytical",
                    fg_name=spec.fg_name,
                    bg_name=spec.bg_name,
                    fg_ways=split.fg_ways,
                    bg_ways=split.bg_ways,
                    fg_cost=pair.fg.runtime_s,
                    bg_rate=pair.bg_rate_ips,
                    raw=pair,
                )
            )
        return results

    def sweep(self, spec):
        """All disjoint splits in one vectorized grid call.

        Falls back to the per-split default when ``spec.options`` asks
        for something the grid solver does not model (finite
        backgrounds, controllers, timelines).
        """
        if self._grid_options(spec.options) is None:
            return super().sweep(spec)
        llc_ways = self.machine.config.llc_ways
        splits = [
            WaySplit.disjoint(fg_ways, llc_ways)
            for fg_ways in range(1, llc_ways)
        ]
        measurements = self.co_run_grid([(spec, split) for split in splits])
        return [
            (split.fg_ways, m) for split, m in zip(splits, measurements)
        ]

    def dynamic(self, spec, controller=None):
        """One dynamic-controller co-run (Algorithm 6.2, 100 ms periods).

        Self-pairs are cloned under an aliased name by the engine, so the
        controller is keyed on the aliased background name.
        """
        from repro.core.dynamic import DynamicPartitionController

        fg, bg = spec.fg, spec.bg
        bg_name = bg.name if bg.name != fg.name else f"{bg.name}#2"
        if controller is None:
            controller = DynamicPartitionController(
                fg_name=fg.name,
                bg_name=bg_name,
                llc_ways=self.machine.config.llc_ways,
                way_mb=self.machine.config.way_mb,
            )
        masks = controller.masks()
        fg_alloc, bg_alloc = paper_pair_allocations(
            fg, bg, llc_ways=self.machine.config.llc_ways
        )
        options = dict(spec.options)
        options.setdefault("bg_continuous", True)
        pair = self.machine.run_pair(
            fg,
            bg,
            fg_alloc.with_mask(masks[fg.name]),
            bg_alloc.with_mask(masks[bg_name]),
            controller=controller,
            **options,
        )
        return CoRunMeasurement(
            backend="analytical",
            fg_name=fg.name,
            bg_name=bg_name,
            fg_ways=controller.fg_ways,
            bg_ways=self.machine.config.llc_ways - controller.fg_ways,
            fg_cost=pair.fg.runtime_s,
            bg_rate=pair.bg_rate_ips,
            raw=pair,
            extra={"controller": controller, "actions": controller.actions},
        )

    # Convenience used by the CLI and tests: a spec from application names.
    @staticmethod
    def pair_spec(fg, bg, **options):
        from repro.backend.protocol import PairSpec
        from repro.workloads import get_application

        if isinstance(fg, str):
            fg = get_application(fg)
        if isinstance(bg, str):
            bg = get_application(bg)
        return PairSpec(fg=fg, bg=bg, options=options)


__all__ = ["AnalyticalBackend", "WaySplit"]
