"""The interval-engine backend: policies over ``Machine.run_pair``.

Wraps :class:`repro.sim.engine.Machine` (and its IntervalMemo and shared
solo cache) behind :class:`~repro.backend.protocol.SimBackend`. The
mapping is exactly what the pre-refactor policy code did — the same
``paper_pair_allocations`` masks, the same ``run_pair`` calls in the
same order — so policy outcomes through this backend are bit-identical
to the seed implementation.
"""

from repro.backend.protocol import (
    BackendCapabilities,
    CoRunMeasurement,
    GroupMeasurement,
    GroupSplit,
    SimBackend,
    SoloMeasurement,
    TenantSet,
    WaySplit,
    WayUtility,
)
from repro.runtime.harness import paper_pair_allocations
from repro.util.errors import ValidationError

PAPER_THREADS = 4


class AnalyticalBackend(SimBackend):
    """Shared/fair/biased/dynamic over the statistical interval engine.

    ``fg_cost`` is the foreground runtime in seconds; ``bg_rate`` is the
    background's instructions per second while the foreground ran
    (``PairResult.bg_rate_ips``). ``raw`` is the full
    :class:`~repro.sim.engine.PairResult`, energy included.
    """

    def __init__(self, machine=None):
        if machine is None:
            from repro.sim.engine import Machine

            machine = Machine()
        self.machine = machine

    def capabilities(self):
        return BackendCapabilities(
            name="analytical",
            llc_ways=self.machine.config.llc_ways,
            fg_cost_unit="s",
            bg_rate_unit="instr/s",
            sweep_is_measured=True,
            supports_dynamic=True,
            supports_energy=True,
            supports_operating_points=True,
        )

    @staticmethod
    def _grid_options(options):
        """The grid solver's supported option subset, or None.

        ``run_pair_grid`` covers the continuous-background, uncontrolled
        steady-state case (what sweeps and campaigns run). Anything else
        — a finite background, the dynamic controller, timelines, or
        custom step sizes — falls back to the scalar engine.
        """
        known = {"bg_continuous": True, "prefetchers_on": True}
        merged = dict(known, **options)
        if set(merged) != set(known) or merged["bg_continuous"] is not True:
            return None
        if not isinstance(merged["prefetchers_on"], bool):
            return None
        return merged

    def solo(self, app, threads=None):
        """The app alone in the paper's co-run slot, via the solo cache."""
        if threads is None:
            threads = 1 if app.scalability.single_threaded else PAPER_THREADS
        result = self.machine.run_solo_cached(
            app, threads=threads, ways=self.machine.config.llc_ways
        )
        return SoloMeasurement(
            backend="analytical", name=app.name, cost=result.runtime_s,
            raw=result,
        )

    def co_run(self, spec, split):
        llc_ways = self.machine.config.llc_ways
        fg_alloc, bg_alloc = paper_pair_allocations(
            spec.fg, spec.bg, split.fg_ways, split.bg_ways, llc_ways
        )
        pair = self.machine.run_pair(
            spec.fg, spec.bg, fg_alloc, bg_alloc, **spec.options
        )
        return CoRunMeasurement(
            backend="analytical",
            fg_name=spec.fg_name,
            bg_name=spec.bg_name,
            fg_ways=split.fg_ways,
            bg_ways=split.bg_ways,
            fg_cost=pair.fg.runtime_s,
            bg_rate=pair.bg_rate_ips,
            raw=pair,
        )

    def co_run_grid(self, items):
        """Vectorized batch of co-runs via :mod:`repro.sim.gridsolve`.

        ``items`` are ``(spec, split)`` pairs or ``(spec, split, config)``
        triples (per-cell operating points). Cells whose options the
        grid solver covers are solved in one vectorized call; the rest
        run through the scalar :meth:`co_run`. Results are returned in
        item order and are bit-identical to the sequential walk.
        """
        from repro.sim.gridsolve import GridCell, run_pair_grid

        items = list(items)
        cells = {}
        for i, item in enumerate(items):
            spec, split = item[0], item[1]
            config = item[2] if len(item) == 3 else None
            options = self._grid_options(spec.options)
            if options is None:
                continue
            cfg = config or self.machine.config
            fg_alloc, bg_alloc = paper_pair_allocations(
                spec.fg, spec.bg, split.fg_ways, split.bg_ways, cfg.llc_ways
            )
            cells[i] = GridCell(
                fg=spec.fg,
                bg=spec.bg,
                fg_allocation=fg_alloc,
                bg_allocation=bg_alloc,
                config=config,
                prefetchers_on=options["prefetchers_on"],
            )
        order = sorted(cells)
        pairs = run_pair_grid(
            [cells[i] for i in order],
            tuning=self.machine.tuning,
            config=self.machine.config,
        )
        solved = dict(zip(order, pairs))

        results = []
        for i, item in enumerate(items):
            spec, split = item[0], item[1]
            pair = solved.get(i)
            if pair is None:
                config = item[2] if len(item) == 3 else None
                if config is not None:
                    raise ValidationError(
                        "per-cell operating points require grid-solvable "
                        f"options; got {spec.options!r}"
                    )
                results.append(self.co_run(spec, split))
                continue
            results.append(
                CoRunMeasurement(
                    backend="analytical",
                    fg_name=spec.fg_name,
                    bg_name=spec.bg_name,
                    fg_ways=split.fg_ways,
                    bg_ways=split.bg_ways,
                    fg_cost=pair.fg.runtime_s,
                    bg_rate=pair.bg_rate_ips,
                    raw=pair,
                )
            )
        return results

    def sweep(self, spec):
        """All disjoint splits in one vectorized grid call.

        Falls back to the per-split default when ``spec.options`` asks
        for something the grid solver does not model (finite
        backgrounds, controllers, timelines).
        """
        if self._grid_options(spec.options) is None:
            return super().sweep(spec)
        llc_ways = self.machine.config.llc_ways
        splits = [
            WaySplit.disjoint(fg_ways, llc_ways)
            for fg_ways in range(1, llc_ways)
        ]
        measurements = self.co_run_grid([(spec, split) for split in splits])
        return [
            (split.fg_ways, m) for split, m in zip(splits, measurements)
        ]

    def dynamic(self, spec, controller=None):
        """One dynamic-controller co-run (Algorithm 6.2, 100 ms periods).

        Self-pairs are cloned under an aliased name by the engine, so the
        controller is keyed on the aliased background name.
        """
        from repro.core.dynamic import DynamicPartitionController

        fg, bg = spec.fg, spec.bg
        bg_name = bg.name if bg.name != fg.name else f"{bg.name}#2"
        if controller is None:
            controller = DynamicPartitionController(
                fg_name=fg.name,
                bg_name=bg_name,
                llc_ways=self.machine.config.llc_ways,
                way_mb=self.machine.config.way_mb,
            )
        masks = controller.masks()
        fg_alloc, bg_alloc = paper_pair_allocations(
            fg, bg, llc_ways=self.machine.config.llc_ways
        )
        options = dict(spec.options)
        options.setdefault("bg_continuous", True)
        pair = self.machine.run_pair(
            fg,
            bg,
            fg_alloc.with_mask(masks[fg.name]),
            bg_alloc.with_mask(masks[bg_name]),
            controller=controller,
            **options,
        )
        return CoRunMeasurement(
            backend="analytical",
            fg_name=fg.name,
            bg_name=bg_name,
            fg_ways=controller.fg_ways,
            bg_ways=self.machine.config.llc_ways - controller.fg_ways,
            fg_cost=pair.fg.runtime_s,
            bg_rate=pair.bg_rate_ips,
            raw=pair,
            extra={"controller": controller, "actions": controller.actions},
        )

    # -- N-tenant groups ----------------------------------------------------

    def _group_allocations(self, group, mask_bits):
        """One :class:`~repro.sim.allocation.Allocation` per tenant.

        Each tenant is pinned to its own physical core (up to the
        machine's core count) with ``1`` thread for single-threaded
        models and ``2`` (both hyperthreads) otherwise, and its fills
        restricted to its mask.
        """
        from repro.cache.llc import WayMask
        from repro.sim.allocation import Allocation

        num_cores = self.machine.config.num_cores
        if len(group.tenants) > num_cores:
            raise ValidationError(
                f"the analytical machine has {num_cores} cores; cannot "
                f"pin {len(group.tenants)} tenants"
            )
        llc_ways = self.machine.config.llc_ways
        allocations = []
        for core, (app, bits) in enumerate(zip(group.tenants, mask_bits)):
            threads = 1 if app.scalability.single_threaded else 2
            allocations.append(Allocation(
                threads=threads,
                cores=(core,),
                mask=WayMask.from_bits(bits, llc_ways),
            ))
        return allocations

    def _group_run_options(self, group):
        allowed = {"step_s", "timeline"}
        unknown = set(group.options) - allowed
        if unknown:
            raise ValidationError(
                f"group runs do not support options {sorted(unknown)}"
            )
        return dict(group.options)

    def group_measurement(self, group, split, result, extra=None):
        """The GroupMeasurement for one finished ``Machine.run_group``."""
        fg_runtime = result.fg.runtime_s
        names = tuple(group.names)
        costs = [result.fg.runtime_s]
        rates = [None]
        for name in names[1:]:
            bg = result.backgrounds[name]
            costs.append(bg.runtime_s)
            rates.append(
                bg.instructions / fg_runtime if fg_runtime else 0.0
            )
        return GroupMeasurement(
            backend="analytical",
            names=names,
            split=split,
            costs=tuple(costs),
            rates=tuple(rates),
            raw=result,
            extra=extra or {},
        )

    def co_run_group(self, group, split):
        """Co-run N tenants under per-tenant way masks.

        Pair-shaped 2-tenant groups delegate to :meth:`co_run` (the
        grid-capable pair machinery, bit-identical to the seed path);
        larger groups run through ``Machine.run_group`` — the scalar
        N-tenant interval solve.
        """
        measurement = self._pair_group_measurement(group, split)
        if measurement is not None:
            return measurement
        allocations = self._group_allocations(group, split.mask_bits)
        options = self._group_run_options(group)
        result = self.machine.run_group(
            group.tenants[0], group.tenants[1:],
            allocations[0], allocations[1:], **options
        )
        return self.group_measurement(group, split, result)

    def dynamic_group(self, group, controller=None):
        """N tenants under a dynamic controller via ``Machine.run_group``.

        2-tenant groups delegate to :meth:`dynamic` (the seed pair
        path). For larger groups the default controller treats tenant 0
        as the foreground and the rest as peers sharing the complement.
        """
        if len(group.tenants) == 2:
            return SimBackend.dynamic_group(self, group, controller=controller)
        from repro.core.dynamic import DynamicPartitionController

        names = tuple(group.names)
        if controller is None:
            controller = DynamicPartitionController(
                fg_name=names[0],
                bg_name=names[1:],
                llc_ways=self.machine.config.llc_ways,
                way_mb=self.machine.config.way_mb,
            )
        masks = controller.masks()
        llc_ways = self.machine.config.llc_ways
        split = GroupSplit(
            tuple(masks[name].bits for name in names), llc_ways
        )
        allocations = self._group_allocations(group, split.mask_bits)
        options = self._group_run_options(group)
        result = self.machine.run_group(
            group.tenants[0], group.tenants[1:],
            allocations[0], allocations[1:],
            controller=controller, **options
        )
        final = controller.masks()
        final_split = GroupSplit(
            tuple(final[name].bits for name in names), llc_ways
        )
        return self.group_measurement(
            group, final_split, result,
            extra={"controller": controller, "actions": controller.actions},
        )

    def way_utility(self, group):
        """Per-tenant way-utility curves from cached solo runs at each
        allocation (the backend's solo methodology, one run per way
        count)."""
        llc_ways = self.machine.config.llc_ways
        out = {}
        for app, name in zip(group.tenants, group.names):
            threads = 1 if app.scalability.single_threaded else PAPER_THREADS
            hits = []
            for ways in range(1, llc_ways + 1):
                result = self.machine.run_solo_cached(
                    app, threads=threads, ways=ways
                )
                hits.append(
                    max(0.0, result.llc_accesses - result.llc_misses)
                )
            full = self.machine.run_solo_cached(
                app, threads=threads, ways=llc_ways
            )
            out[name] = WayUtility(
                name=name,
                hits_by_ways=tuple(hits),
                accesses=float(full.llc_accesses),
            )
        return out

    # Convenience used by the CLI and tests: a spec from application names.
    @staticmethod
    def pair_spec(fg, bg, **options):
        from repro.backend.protocol import PairSpec
        from repro.workloads import get_application

        if isinstance(fg, str):
            fg = get_application(fg)
        if isinstance(bg, str):
            bg = get_application(bg)
        return PairSpec(fg=fg, bg=bg, options=options)

    @staticmethod
    def group_spec(names, **options):
        """A TenantSet from application names (or models), aliasing
        duplicates exactly as ``Machine.run_group`` does ("#2", ...)."""
        from repro.workloads import get_application

        apps = [
            get_application(n) if isinstance(n, str) else n for n in names
        ]
        seen, aliased = set(), []
        for app in apps:
            name = app.name
            suffix = 2
            while name in seen:
                name = f"{app.name}#{suffix}"
                suffix += 1
            seen.add(name)
            aliased.append(name)
        return TenantSet(tenants=apps, options=options, names=tuple(aliased))


__all__ = ["AnalyticalBackend", "GroupSplit", "TenantSet", "WaySplit"]
