"""Reduce a multi-shard campaign store into comparable summaries.

The store is just RunSet shards, so everything downstream of a campaign
speaks the existing run-record schema: ``load_campaign_store`` merges
the shards (``repro compare`` accepts the directory directly), and
``summarize_campaign`` reduces the merged records into the per-axis
counts and per-pair policy winners the render/compare pipeline reports.
"""

from repro.analysis.store import load_runset_dir
from repro.util.errors import ValidationError


def load_campaign_store(store_dir):
    """``(merged RunSet, {cell_id: record})`` for a campaign store."""
    merged = load_runset_dir(store_dir)
    by_cell = {}
    for record in merged.records:
        cell_id = record.provenance.get("cell_id")
        if cell_id:
            by_cell[cell_id] = record
    return merged, by_cell


def summarize_campaign(store_dir):
    """A plain-data summary of everything a campaign store holds.

    Returns a dict with the record/shard counts, per-axis record
    counts, retry totals, per-cell reallocation counts for dynamic
    cells (from the controller's recorded action trail), and — per
    (backend, workload, geometry) group, where the workload is the
    fg/bg pair or the full N-tenant roster — the policy with the
    lowest foreground cost and the one with the highest background
    rate, the reduction ``repro consolidate`` renders for a single
    pair.
    """
    merged, by_cell = load_campaign_store(store_dir)
    if not by_cell:
        raise ValidationError(
            f"store {store_dir} holds no campaign records (no cell_id "
            "provenance)"
        )
    records = list(by_cell.values())

    axes = {"backend": {}, "policy": {}, "pair": {}, "tenants": {}}
    retried = 0
    groups = {}
    dynamic_cells = []
    for record in records:
        # N-tenant records carry the full roster; the workload key (and
        # the winner-table grouping) is the tenant tuple, so a 3-tenant
        # group never merges with a pair that happens to share fg+bg.
        tenants = tuple(getattr(record, "tenants", ()) or ())
        workload = tenants if tenants else (record.fg, record.bg)
        if record.policy == "dynamic":
            dynamic_cells.append(
                {
                    "pair": "+".join(workload),
                    "backend": record.backend,
                    "fg_ways": record.fg_ways,
                    "reallocations": record.provenance.get(
                        "dynamic_actions"
                    ),
                }
            )
        axes["backend"][record.backend] = (
            axes["backend"].get(record.backend, 0) + 1
        )
        axes["policy"][record.policy] = axes["policy"].get(record.policy, 0) + 1
        label = "+".join(workload)
        axis = "tenants" if tenants else "pair"
        axes[axis][label] = axes[axis].get(label, 0) + 1
        if record.provenance.get("attempts", 1) > 1:
            retried += 1
        geometry = tuple(
            sorted((record.provenance.get("geometry") or {}).items())
        )
        groups.setdefault(
            (record.backend, workload, geometry), []
        ).append(record)

    best = []
    for (backend, workload, geometry), members in sorted(groups.items()):
        lowest_cost = min(members, key=lambda r: r.metrics["fg_cost"])
        highest_rate = max(members, key=lambda r: r.metrics["bg_rate"])
        best.append(
            {
                "backend": backend,
                "fg": workload[0],
                "bg": "+".join(workload[1:]),
                "tenants": (
                    list(workload) if len(workload) > 2 else []
                ),
                "geometry": dict(geometry),
                "policies": sorted({r.policy for r in members}),
                "lowest_fg_cost": {
                    "policy": lowest_cost.policy,
                    "fg_cost": lowest_cost.metrics["fg_cost"],
                    "unit": lowest_cost.units.get("fg_cost", ""),
                },
                "highest_bg_rate": {
                    "policy": highest_rate.policy,
                    "bg_rate": highest_rate.metrics["bg_rate"],
                    "unit": highest_rate.units.get("bg_rate", ""),
                },
            }
        )

    return {
        "records": len(records),
        "shards": merged.meta.get("shards", 0),
        "retried_cells": retried,
        "axes": axes,
        "groups": best,
        "dynamic_cells": sorted(
            dynamic_cells, key=lambda c: (c["backend"], c["pair"])
        ),
    }


def format_campaign_summary(summary):
    """Render ``summarize_campaign``'s output as a text report."""
    from repro.util.tables import format_table

    lines = [
        f"campaign store: {summary['records']} records in "
        f"{summary['shards']} shards"
        + (
            f" ({summary['retried_cells']} cells needed retries)"
            if summary["retried_cells"]
            else ""
        )
    ]
    for axis in ("backend", "policy", "pair", "tenants"):
        counts = summary["axes"].get(axis) or {}
        if axis in ("pair", "tenants") and not counts:
            continue
        rendered = ", ".join(
            f"{value}={count}" for value, count in sorted(counts.items())
        )
        lines.append(f"  by {axis}: {rendered}")
    rows = [
        (
            "+".join(group["tenants"]) or f"{group['fg']}+{group['bg']}",
            group["backend"],
            str(len(group["policies"])),
            f"{group['lowest_fg_cost']['policy']} "
            f"({group['lowest_fg_cost']['fg_cost']:.4f})",
            f"{group['highest_bg_rate']['policy']} "
            f"({group['highest_bg_rate']['bg_rate']:.4f})",
        )
        for group in summary["groups"]
    ]
    lines.append("")
    lines.append(
        format_table(
            ["pair", "backend", "policies", "best fg cost", "best bg rate"],
            rows,
            title="Per-pair policy winners",
        )
    )
    dynamic = summary.get("dynamic_cells") or ()
    if dynamic:
        lines.append("")
        lines.append(
            format_table(
                ["pair", "backend", "final fg ways", "reallocations"],
                [
                    (
                        cell["pair"],
                        cell["backend"],
                        str(cell["fg_ways"]),
                        (
                            "?"
                            if cell["reallocations"] is None
                            else str(cell["reallocations"])
                        ),
                    )
                    for cell in dynamic
                ],
                title="Dynamic controller cells",
            )
        )
    return "\n".join(lines)


__all__ = [
    "format_campaign_summary",
    "load_campaign_store",
    "summarize_campaign",
]
