"""Shard planning: pack batchable cells into native roster calls.

The perf contract of a campaign is that its inner loop is C — or, for
the analytical backend, NumPy — not per-cell Python. A cell is
*batchable* when its outcome is one fixed-split co-run whose allocation
is known before anything executes: ``shared``/``fair``/``static-N`` on
the trace backend, ``shared``/``fair`` on the analytical backend. Trace
batchable cells group into roster shards, each replayed by ONE
:func:`repro.sim.trace_engine.run_packed_roster` call (threaded inside
the kernel per ``REPRO_NATIVE_THREADS``); analytical batchable cells
group into grid shards, each solved by ONE vectorized
:meth:`repro.backend.analytical.AnalyticalBackend.co_run_grid` call.
Everything else — ``biased`` (needs a sweep and an argmax before its
final co-run) and ``dynamic`` (epoch feedback loop) — falls back to
per-cell execution fanned out over the exec pool's ``parallel_map``.

Shards are also the checkpoint unit: the runner persists one atomic
RunSet shard file per executed shard, so ``--resume`` granularity and
C-call granularity are the same knob (``shard_size``).
"""

from dataclasses import dataclass, field

from repro.campaign.manifest import static_policy_ways
from repro.util.errors import ValidationError

DEFAULT_SHARD_SIZE = 64
DEFAULT_FALLBACK_SHARD_SIZE = 8

# tids for the fg/bg domains of every campaign pair: cores 0 and 2 on
# the four-core hierarchy (matching trace_pair_spec).
FG_TID = 0
BG_TID = 4


def is_batchable(cell):
    """True when the cell is one fixed-split co-run (no feedback loop).

    Trace cells batch into native roster shards (one
    ``run_packed_roster`` call each); analytical cells batch into
    vectorized grid shards (one ``co_run_grid`` call each). ``biased``
    and ``dynamic`` stay per-cell on both backends — their splits are
    decided by a sweep argmax or epoch feedback, not by the manifest.
    """
    if cell.backend == "trace":
        return (
            cell.policy in ("shared", "fair")
            or static_policy_ways(cell.policy) is not None
        )
    if cell.backend == "analytical":
        return cell.policy in ("shared", "fair")
    return False


def split_for(cell, llc_ways=12):
    """The WaySplit a batchable cell runs under (None for non-batchable)."""
    from repro.backend.protocol import WaySplit

    if cell.policy == "shared":
        return WaySplit.shared(llc_ways)
    if cell.policy == "fair":
        return WaySplit.fair(llc_ways)
    ways = static_policy_ways(cell.policy)
    if ways is None:
        return None
    return WaySplit.disjoint(ways, llc_ways)


def trace_spec_for(cell):
    """The backend PairSpec for a trace cell (picklable factories)."""
    from repro.analysis.experiments import trace_pair_spec

    geometry = cell.geometry_dict
    return trace_pair_spec(
        cell.fg,
        cell.bg,
        accesses=int(geometry["accesses"]),
        footprint_mb=float(geometry["footprint_mb"]),
        alpha=float(geometry["alpha"]),
        seed=int(geometry["seed"]),
        bg_footprint_mb=float(geometry["bg_footprint_mb"]),
    )


def backend_for(cell, threads=None):
    """A fresh SimBackend configured for the cell."""
    if cell.backend == "trace":
        from repro.backend import TraceBackend

        geometry = cell.geometry_dict
        controller = cell.controller_dict
        return TraceBackend(
            total_accesses=int(geometry["accesses"]),
            epoch_accesses=int(
                controller.get("epoch_accesses") or 4_000
            ),
            dynamic_total_accesses=controller.get("total_accesses"),
            native_threads=threads,
        )
    if cell.backend == "analytical":
        from repro.backend import AnalyticalBackend

        return AnalyticalBackend()
    raise ValidationError(f"unknown cell backend {cell.backend!r}")


def roster_cell_for(cell, llc_ways=12):
    """The RosterCell realizing a batchable campaign cell.

    Masks are built exactly as ``TraceBackend.co_run`` builds them —
    the foreground's ways from way 0 up, the background's from the top
    down — so a roster-replayed cell is bit-identical to the per-cell
    reference path.
    """
    from repro.cache.llc import WayMask
    from repro.sim.trace_engine import RosterCell

    split = split_for(cell, llc_ways)
    if split is None:
        raise ValidationError(f"cell {cell.cell_id} is not batchable")
    spec = trace_spec_for(cell)
    return RosterCell(
        workloads=[spec.fg, spec.bg],
        masks={
            spec.fg.tid // 2: WayMask.contiguous(split.fg_ways, 0, llc_ways),
            spec.bg.tid // 2: WayMask.contiguous(
                split.bg_ways, llc_ways - split.bg_ways, llc_ways
            ),
        },
        total_accesses=int(cell.geometry_dict["accesses"]),
    ), spec, split


@dataclass
class ShardPlan:
    """The execution plan: roster, grid, and fallback shards.

    Each entry is a list of :class:`~repro.campaign.manifest.CampaignCell`;
    roster shards execute as one batched native call, grid shards as one
    vectorized analytical solve, and fallback shards as a
    ``parallel_map`` over per-cell execution. ``skipped`` counts cells
    the store already held (resume hits).
    """

    roster_shards: list = field(default_factory=list)
    grid_shards: list = field(default_factory=list)
    fallback_shards: list = field(default_factory=list)
    skipped: list = field(default_factory=list)

    @property
    def batchable_cells(self):
        return sum(len(shard) for shard in self.roster_shards)

    @property
    def grid_cells(self):
        return sum(len(shard) for shard in self.grid_shards)

    @property
    def fallback_cells(self):
        return sum(len(shard) for shard in self.fallback_shards)

    @property
    def total_shards(self):
        return (
            len(self.roster_shards)
            + len(self.grid_shards)
            + len(self.fallback_shards)
        )

    def shards(self):
        """All shards in deterministic execution order, tagged by kind."""
        for shard in self.roster_shards:
            yield "roster", shard
        for shard in self.grid_shards:
            yield "grid", shard
        for shard in self.fallback_shards:
            yield "fallback", shard


def plan_shards(cells, done_ids=(), shard_size=DEFAULT_SHARD_SIZE,
                fallback_shard_size=DEFAULT_FALLBACK_SHARD_SIZE):
    """Split the remaining cells into roster and fallback shards.

    ``done_ids`` holds content addresses already present in the store;
    those cells are skipped without executing anything. The split and
    the shard boundaries are deterministic functions of the cell list,
    so two planners over the same manifest and store agree exactly.
    """
    if shard_size < 1 or fallback_shard_size < 1:
        raise ValidationError("shard sizes must be >= 1")
    done_ids = set(done_ids)
    plan = ShardPlan()
    batchable = []
    grid = []
    fallback = []
    for cell in cells:
        if cell.cell_id in done_ids:
            plan.skipped.append(cell)
        elif not is_batchable(cell):
            fallback.append(cell)
        elif cell.backend == "trace":
            batchable.append(cell)
        else:
            grid.append(cell)
    plan.roster_shards = [
        batchable[i:i + shard_size]
        for i in range(0, len(batchable), shard_size)
    ]
    plan.grid_shards = [
        grid[i:i + shard_size]
        for i in range(0, len(grid), shard_size)
    ]
    plan.fallback_shards = [
        fallback[i:i + fallback_shard_size]
        for i in range(0, len(fallback), fallback_shard_size)
    ]
    return plan
