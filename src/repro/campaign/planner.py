"""Shard planning: pack batchable cells into native roster calls.

The perf contract of a campaign is that its inner loop is C — or, for
the analytical backend, NumPy — not per-cell Python. Every trace cell
is batchable, each policy through the shard kind that fits its control
structure:

- ``shared``/``fair``/``static-N`` (one fixed-split co-run known before
  anything executes) group into **roster** shards, each replayed by ONE
  :func:`repro.sim.trace_engine.run_packed_roster` call;
- ``biased`` (measure every split, then argmax) groups into **sweep**
  shards: each cell contributes its 11-allocation measured sweep to one
  batched roster call, and the winner is chosen from the measured
  entries — no separate re-measure co-run is needed, because the
  entries *are* co-run measurements and replay is deterministic;
- ``dynamic`` (epoch feedback loop) groups into **dynamic-roster**
  shards, each driven by :func:`repro.sim.trace_engine.run_dynamic_roster`
  — one threaded epoch-batch C call per control period for the whole
  shard, controller decisions stepped host-side between calls;
- N-tenant group cells batch too: fixed-split groups join **roster**
  shards (masks straight from their ``GroupSplit``), and ``cluster``
  cells form **cluster** shards — each cell profiles its tenants' way
  utility (one batched sweep call), then every planned split in the
  shard replays in ONE batched roster call. Group ``biased``/``dynamic``
  cells fall back per-cell; their control loops already run one batched
  native call per cell.

Analytical ``shared``/``fair`` cells group into **grid** shards, each
solved by ONE vectorized
:meth:`repro.backend.analytical.AnalyticalBackend.co_run_grid` call.
Only the genuinely unbatchable remainder (analytical ``biased``/
``dynamic``, whose inner loop is the scalar engine) falls back to
per-cell execution fanned out over the exec pool's ``parallel_map``.

Shards are also the checkpoint unit: the runner persists one atomic
RunSet shard file per executed shard, so ``--resume`` granularity and
C-call granularity are the same knob (``shard_size``).
"""

from dataclasses import dataclass, field

from repro.campaign.manifest import static_policy_ways
from repro.util.errors import ValidationError

DEFAULT_SHARD_SIZE = 64
DEFAULT_FALLBACK_SHARD_SIZE = 8

# tids for the fg/bg domains of every campaign pair: cores 0 and 2 on
# the four-core hierarchy (matching trace_pair_spec).
FG_TID = 0
BG_TID = 4


def shard_kind_for(cell):
    """The batched shard kind executing this cell, or ``None``.

    ``"roster"`` for fixed-split trace cells, ``"sweep"`` for trace
    ``biased`` (an 11-allocation measured-sweep roster per cell),
    ``"dynamic"`` for trace ``dynamic`` (the epoch-batch kernel driving
    a controller per cell), ``"grid"`` for analytical fixed splits.
    ``None`` means per-cell fallback over the exec pool.
    """
    if cell.backend == "trace":
        if cell.tenants:
            # N-tenant group cells: fixed splits replay as roster
            # shards; `cluster` profiles then replays (its own shard
            # kind); group biased/dynamic stay per-cell — their control
            # loops (utility scoring, churn-aware epoch feedback) run
            # one batched native call per cell already.
            if cell.policy in ("shared", "fair"):
                return "roster"
            if cell.policy == "cluster":
                return "cluster"
            return None
        if cell.policy == "biased":
            return "sweep"
        if cell.policy == "dynamic":
            return "dynamic"
        if (
            cell.policy in ("shared", "fair")
            or static_policy_ways(cell.policy) is not None
        ):
            return "roster"
        return None
    if cell.backend == "analytical":
        return "grid" if cell.policy in ("shared", "fair") else None
    return None


def is_batchable(cell):
    """True when the cell executes inside a batched shard kind.

    Every trace policy is batchable — fixed splits as roster shards,
    ``biased`` as measured-sweep roster shards, ``dynamic`` as
    epoch-batched dynamic-roster shards. Analytical ``shared``/``fair``
    batch into vectorized grid shards; analytical ``biased``/``dynamic``
    stay per-cell (their inner loop is the scalar engine).
    """
    return shard_kind_for(cell) is not None


def split_for(cell, llc_ways=12):
    """The WaySplit a batchable cell runs under (None for non-batchable)."""
    from repro.backend.protocol import WaySplit

    if cell.policy == "shared":
        return WaySplit.shared(llc_ways)
    if cell.policy == "fair":
        return WaySplit.fair(llc_ways)
    ways = static_policy_ways(cell.policy)
    if ways is None:
        return None
    return WaySplit.disjoint(ways, llc_ways)


def trace_spec_for(cell):
    """The backend PairSpec for a trace cell (picklable factories)."""
    from repro.analysis.experiments import trace_pair_spec

    geometry = cell.geometry_dict
    return trace_pair_spec(
        cell.fg,
        cell.bg,
        accesses=int(geometry["accesses"]),
        footprint_mb=float(geometry["footprint_mb"]),
        alpha=float(geometry["alpha"]),
        seed=int(geometry["seed"]),
        bg_footprint_mb=float(geometry["bg_footprint_mb"]),
    )


def trace_group_for(cell):
    """The backend TenantSet for an N-tenant trace cell."""
    from repro.analysis.experiments import trace_group_spec

    geometry = cell.geometry_dict
    return trace_group_spec(
        cell.tenants,
        accesses=int(geometry["accesses"]),
        footprint_mb=float(geometry["footprint_mb"]),
        alpha=float(geometry["alpha"]),
        seed=int(geometry["seed"]),
        bg_footprint_mb=float(geometry["bg_footprint_mb"]),
    )


def group_split_for(cell, llc_ways=12):
    """The GroupSplit a fixed-split group cell runs under.

    Mirrors ``group_shared``/``group_fair`` exactly — including the
    two-tenant fair case, which follows ``WaySplit.fair``'s remainder
    convention — so a roster-replayed group cell is bit-identical to
    the per-cell reference path.
    """
    from repro.backend.protocol import GroupSplit, WaySplit

    n = len(cell.tenants)
    if cell.policy == "shared":
        return GroupSplit.shared(n, llc_ways)
    if cell.policy == "fair":
        if n == 2:
            return GroupSplit.from_pair(WaySplit.fair(llc_ways), llc_ways)
        return GroupSplit.fair(n, llc_ways)
    return None


def backend_for(cell, threads=None):
    """A fresh SimBackend configured for the cell."""
    if cell.backend == "trace":
        from repro.backend import TraceBackend

        geometry = cell.geometry_dict
        controller = cell.controller_dict
        # measured_sweep: biased cells choose from *replayed* splits
        # (one batched roster call), so the per-cell reference path and
        # the sweep-shard path score identical measurements.
        return TraceBackend(
            total_accesses=int(geometry["accesses"]),
            epoch_accesses=int(
                controller.get("epoch_accesses") or 4_000
            ),
            dynamic_total_accesses=controller.get("total_accesses"),
            measured_sweep=True,
            native_threads=threads,
        )
    if cell.backend == "analytical":
        from repro.backend import AnalyticalBackend

        return AnalyticalBackend()
    raise ValidationError(f"unknown cell backend {cell.backend!r}")


def roster_cell_for(cell, llc_ways=12):
    """The RosterCell realizing a batchable campaign cell.

    Masks are built exactly as ``TraceBackend.co_run`` builds them —
    the foreground's ways from way 0 up, the background's from the top
    down — so a roster-replayed cell is bit-identical to the per-cell
    reference path.
    """
    from repro.cache.llc import WayMask
    from repro.sim.trace_engine import RosterCell

    split = split_for(cell, llc_ways)
    if split is None:
        raise ValidationError(f"cell {cell.cell_id} is not batchable")
    spec = trace_spec_for(cell)
    return RosterCell(
        workloads=[spec.fg, spec.bg],
        masks={
            spec.fg.tid // 2: WayMask.contiguous(split.fg_ways, 0, llc_ways),
            spec.bg.tid // 2: WayMask.contiguous(
                split.bg_ways, llc_ways - split.bg_ways, llc_ways
            ),
        },
        total_accesses=int(cell.geometry_dict["accesses"]),
    ), spec, split


@dataclass
class ShardPlan:
    """The execution plan: roster, grid, sweep, dynamic, and fallback
    shards.

    Each entry is a list of :class:`~repro.campaign.manifest.CampaignCell`;
    roster shards execute as one batched native call, grid shards as one
    vectorized analytical solve, sweep shards as one batched
    measured-sweep call covering every member cell's 11 allocations,
    dynamic shards as one epoch-batched controller roster, and fallback
    shards as a ``parallel_map`` over per-cell execution. ``skipped``
    counts cells the store already held (resume hits).
    """

    roster_shards: list = field(default_factory=list)
    grid_shards: list = field(default_factory=list)
    sweep_shards: list = field(default_factory=list)
    dynamic_shards: list = field(default_factory=list)
    cluster_shards: list = field(default_factory=list)
    fallback_shards: list = field(default_factory=list)
    skipped: list = field(default_factory=list)

    @property
    def batchable_cells(self):
        return sum(len(shard) for shard in self.roster_shards)

    @property
    def grid_cells(self):
        return sum(len(shard) for shard in self.grid_shards)

    @property
    def sweep_cells(self):
        return sum(len(shard) for shard in self.sweep_shards)

    @property
    def dynamic_cells(self):
        return sum(len(shard) for shard in self.dynamic_shards)

    @property
    def cluster_cells(self):
        return sum(len(shard) for shard in self.cluster_shards)

    @property
    def fallback_cells(self):
        return sum(len(shard) for shard in self.fallback_shards)

    @property
    def total_shards(self):
        return (
            len(self.roster_shards)
            + len(self.grid_shards)
            + len(self.sweep_shards)
            + len(self.dynamic_shards)
            + len(self.cluster_shards)
            + len(self.fallback_shards)
        )

    def shards(self):
        """All shards in deterministic execution order, tagged by kind."""
        for shard in self.roster_shards:
            yield "roster", shard
        for shard in self.grid_shards:
            yield "grid", shard
        for shard in self.sweep_shards:
            yield "sweep", shard
        for shard in self.dynamic_shards:
            yield "dynamic", shard
        for shard in self.cluster_shards:
            yield "cluster", shard
        for shard in self.fallback_shards:
            yield "fallback", shard


def plan_shards(cells, done_ids=(), shard_size=DEFAULT_SHARD_SIZE,
                fallback_shard_size=DEFAULT_FALLBACK_SHARD_SIZE):
    """Split the remaining cells into shards by kind.

    ``done_ids`` holds content addresses already present in the store;
    those cells are skipped without executing anything. The split and
    the shard boundaries are deterministic functions of the cell list,
    so two planners over the same manifest and store agree exactly.
    Sweep shards chunk at ``shard_size // 11`` cells (floor 1), since
    every member contributes an 11-allocation roster to the one batched
    call — a shard's native call stays near ``shard_size`` replay
    cells regardless of kind.
    """
    if shard_size < 1 or fallback_shard_size < 1:
        raise ValidationError("shard sizes must be >= 1")
    done_ids = set(done_ids)
    plan = ShardPlan()
    by_kind = {
        "roster": [], "grid": [], "sweep": [], "dynamic": [],
        "cluster": [], None: [],
    }
    for cell in cells:
        if cell.cell_id in done_ids:
            plan.skipped.append(cell)
        else:
            by_kind[shard_kind_for(cell)].append(cell)

    def chunk(items, size):
        return [items[i:i + size] for i in range(0, len(items), size)]

    plan.roster_shards = chunk(by_kind["roster"], shard_size)
    plan.grid_shards = chunk(by_kind["grid"], shard_size)
    plan.sweep_shards = chunk(by_kind["sweep"], max(1, shard_size // 11))
    plan.dynamic_shards = chunk(by_kind["dynamic"], shard_size)
    # A cluster cell profiles (one 12-allocation sweep call) before its
    # final replay joins the shard's one batched roster call.
    plan.cluster_shards = chunk(by_kind["cluster"], max(1, shard_size // 12))
    plan.fallback_shards = chunk(by_kind[None], fallback_shard_size)
    return plan
