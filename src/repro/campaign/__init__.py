"""Fleet-scale experiment campaigns.

The Section 5/6 evaluation is a grid of (policy x pair x geometry)
cells; this package scales that grid from dozens of cells to millions
while keeping every record reproducible:

- :mod:`repro.campaign.manifest` — a declarative manifest (JSON) whose
  axes expand into a deterministic, content-addressed cell list;
- :mod:`repro.campaign.planner` — groups batchable cells into roster
  shards (one ``run_packed_roster`` C call each) and routes the rest
  through the exec pool;
- :mod:`repro.campaign.runner` — sharded, checkpointed, resumable
  execution with bounded retry, writing one atomic
  :class:`~repro.analysis.store.RunSet` shard file per shard;
- :mod:`repro.campaign.summary` — reduces a shard store back into the
  compare/render pipeline.
"""

from repro.campaign.manifest import (
    CampaignCell,
    CampaignManifest,
    UnknownManifestKey,
    expand_manifest,
    load_manifest,
    manifest_from_dict,
)
from repro.campaign.planner import ShardPlan, is_batchable, plan_shards
from repro.campaign.runner import (
    CampaignResult,
    run_campaign,
    run_campaign_cell,
    verify_campaign,
)
from repro.campaign.summary import load_campaign_store, summarize_campaign

__all__ = [
    "CampaignCell",
    "CampaignManifest",
    "CampaignResult",
    "ShardPlan",
    "UnknownManifestKey",
    "expand_manifest",
    "is_batchable",
    "load_campaign_store",
    "load_manifest",
    "manifest_from_dict",
    "plan_shards",
    "run_campaign",
    "run_campaign_cell",
    "summarize_campaign",
    "verify_campaign",
]
