"""Declarative campaign manifests and their deterministic expansion.

A manifest is a small JSON document naming the axes of an experiment
grid — policies, workload pairs, trace geometries, controller configs,
and backends. ``expand_manifest`` walks the axes in one fixed order and
yields a :class:`CampaignCell` per grid point, each carrying a
content-address (``cell_id``) over everything that determines its
outcome, so a cell's record can be recognised across runs, hosts, and
stores without coordination.

Validation is strict: an unknown key anywhere in the manifest raises
:class:`UnknownManifestKey` listing the valid keys (the CLI turns that
into an exit-2 usage error, mirroring ``bench_smoke --only``'s unknown
arm handling) — a typo'd axis must never silently shrink a campaign.
"""

import hashlib
import itertools
import json
from dataclasses import dataclass, field

from repro.util.errors import ValidationError

# Bump when the cell execution semantics change incompatibly, so stored
# records from older campaign engines stop matching by content address.
# v2: trace `biased` cells choose from a *measured* 11-allocation sweep
# (one batched roster call) instead of profile-derived scores, which can
# move the chosen split.
CAMPAIGN_VERSION = 2

MANIFEST_KEYS = (
    "name",
    "backends",
    "policies",
    "pairs",
    "geometries",
    "controllers",
    "tenants",
    "churn",
)
GEOMETRY_KEYS = (
    "accesses",
    "footprint_mb",
    "bg_footprint_mb",
    "alpha",
    "seed",
)
CONTROLLER_KEYS = ("epoch_accesses", "total_accesses")

BACKEND_NAMES = ("trace", "analytical")
# "static-N" (an explicit disjoint split giving the foreground N ways)
# is accepted in addition to the Section 5 policy names.
BASE_POLICIES = ("shared", "fair", "biased", "dynamic")
# Policies that expand over the N-tenant `tenants` axis. static-N stays
# a pair axis; `cluster` (LFOC-style) is tenant-only.
GROUP_POLICIES = ("shared", "fair", "biased", "dynamic", "cluster")
MAX_MANIFEST_TENANTS = 4  # one trace core per tenant

DEFAULT_GEOMETRY = {
    "accesses": 60_000,
    "footprint_mb": 4.0,
    "bg_footprint_mb": 8.0,
    "alpha": 0.9,
    "seed": 1,
}
DEFAULT_CONTROLLER = {"epoch_accesses": 4_000, "total_accesses": None}


class UnknownManifestKey(ValidationError):
    """An unrecognised manifest key, with the valid vocabulary attached."""

    def __init__(self, where, unknown, valid):
        self.where = where
        self.unknown = tuple(sorted(unknown))
        self.valid = tuple(valid)
        super().__init__(
            f"unknown {where} key(s) {', '.join(map(repr, self.unknown))}; "
            f"valid keys: {', '.join(self.valid)}"
        )


def _check_keys(where, data, valid):
    unknown = set(data) - set(valid)
    if unknown:
        raise UnknownManifestKey(where, unknown, valid)


def static_policy_ways(policy):
    """``"static-9" -> 9``; ``None`` for non-static policy names."""
    if not policy.startswith("static-"):
        return None
    try:
        ways = int(policy.split("-", 1)[1])
    except ValueError:
        raise ValidationError(
            f"malformed static policy {policy!r}: expected 'static-<fg ways>'"
        ) from None
    if not 1 <= ways <= 11:
        raise ValidationError(
            f"static policy {policy!r} out of range: fg ways must be 1..11"
        )
    return ways


@dataclass(frozen=True)
class CampaignManifest:
    """The validated axes of one campaign grid."""

    name: str
    backends: tuple = ("trace",)
    policies: tuple = ("shared", "fair", "biased")
    pairs: tuple = ()  # ((fg, bg), ...)
    geometries: tuple = ()  # (frozen geometry dicts as sorted item tuples)
    controllers: tuple = ()
    tenants: tuple = ()  # ((kind, kind, ...), ...) N-tenant rosters
    churn: tuple = ()  # (((tenant, epoch, action), ...), ...) schedules

    def geometry_dicts(self):
        return [dict(g) for g in self.geometries]

    def controller_dicts(self):
        return [dict(c) for c in self.controllers]

    def churn_specs(self):
        """Each schedule as the declarative event-dict list."""
        return [
            [
                {"tenant": tenant, "epoch": epoch, "action": action}
                for tenant, epoch, action in schedule
            ]
            for schedule in self.churn
        ]


@dataclass(frozen=True)
class CampaignCell:
    """One grid point: everything needed to run and re-identify it.

    ``geometry`` and ``controller`` are stored as sorted item tuples so
    the cell is hashable and picklable; ``cell_id`` is a sha256 content
    address over the cell payload plus the campaign schema and model
    versions — the key the store deduplicates on.
    """

    backend: str
    policy: str
    fg: str
    bg: str
    geometry: tuple = ()
    controller: tuple = ()
    # N-tenant group cells: the roster of trace kinds (in tenant order)
    # and, for dynamic cells, the churn schedule. Pair cells leave both
    # empty, which also keeps them OUT of the cell_id payload — pair
    # content addresses are unchanged from campaign v2 stores.
    tenants: tuple = ()
    churn: tuple = ()
    index: int = 0

    @property
    def geometry_dict(self):
        return dict(self.geometry)

    @property
    def controller_dict(self):
        return dict(self.controller)

    @property
    def churn_spec(self):
        return [
            {"tenant": tenant, "epoch": epoch, "action": action}
            for tenant, epoch, action in self.churn
        ]

    @property
    def cell_id(self):
        from repro import __version__

        payload = {
            "campaign_version": CAMPAIGN_VERSION,
            "model_version": __version__,
            "backend": self.backend,
            "policy": self.policy,
            "fg": self.fg,
            "bg": self.bg,
            "geometry": dict(self.geometry),
            "controller": dict(self.controller),
        }
        if self.tenants:
            payload["tenants"] = list(self.tenants)
        if self.churn:
            payload["churn"] = self.churn_spec
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        return digest[:16]


def _freeze(data):
    return tuple(sorted(data.items()))


def manifest_from_dict(data, where="manifest"):
    """Validate a parsed manifest document into a CampaignManifest."""
    if not isinstance(data, dict):
        raise ValidationError(f"{where} is not a JSON object: {data!r}")
    _check_keys(where, data, MANIFEST_KEYS)

    name = data.get("name", "campaign")
    if not isinstance(name, str) or not name:
        raise ValidationError(f"{where}: 'name' must be a non-empty string")

    backends = tuple(data.get("backends", ("trace",)))
    for backend in backends:
        if backend not in BACKEND_NAMES:
            raise ValidationError(
                f"{where}: unknown backend {backend!r}; "
                f"valid backends: {', '.join(BACKEND_NAMES)}"
            )

    tenants = data.get("tenants", ())
    frozen_tenants = []
    for i, roster in enumerate(tenants):
        if not isinstance(roster, (list, tuple)):
            raise ValidationError(
                f"{where}: tenants #{i} must be a list of 2.."
                f"{MAX_MANIFEST_TENANTS} trace kinds, got {roster!r}"
            )
        if not 2 <= len(roster) <= MAX_MANIFEST_TENANTS:
            raise ValidationError(
                f"{where}: tenants #{i} must name 2.."
                f"{MAX_MANIFEST_TENANTS} tenants (one trace core each), "
                f"got {len(roster)}"
            )
        frozen_tenants.append(tuple(str(kind) for kind in roster))
    if frozen_tenants and "analytical" in backends:
        raise ValidationError(
            f"{where}: the 'tenants' axis names synthetic trace kinds "
            "and expands on the trace backend only"
        )

    policies = tuple(data.get("policies", ("shared", "fair", "biased")))
    if not policies:
        raise ValidationError(f"{where}: 'policies' must not be empty")
    for policy in policies:
        if policy == "cluster":
            if not frozen_tenants:
                raise ValidationError(
                    f"{where}: the 'cluster' policy needs a 'tenants' axis"
                )
            continue
        if policy not in BASE_POLICIES:
            static_policy_ways(policy)  # raises unless a valid static-N

    pairs = data.get("pairs", ())
    if not pairs and not frozen_tenants:
        raise ValidationError(
            f"{where}: 'pairs' must list [fg, bg] entries (or a "
            "'tenants' axis must be given)"
        )
    frozen_pairs = []
    for pair in pairs:
        if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
            raise ValidationError(
                f"{where}: each pair must be a [fg, bg] list, got {pair!r}"
            )
        frozen_pairs.append((str(pair[0]), str(pair[1])))
    if not frozen_pairs:
        for policy in policies:
            if static_policy_ways(policy) is not None:
                raise ValidationError(
                    f"{where}: static policy {policy!r} expands over "
                    "'pairs', which is empty"
                )

    churn = data.get("churn", ())
    frozen_churn = []
    if churn:
        from repro.workloads.churn import ChurnSchedule

        if not frozen_tenants:
            raise ValidationError(
                f"{where}: the 'churn' axis needs a 'tenants' axis"
            )
        if "dynamic" not in policies:
            raise ValidationError(
                f"{where}: the 'churn' axis only applies to the "
                "'dynamic' policy, which is not listed"
            )
        for i, spec in enumerate(churn):
            if not isinstance(spec, (list, tuple)):
                raise ValidationError(
                    f"{where}: churn #{i} must be a list of "
                    "{tenant, epoch, action} events"
                )
            schedule = ChurnSchedule.from_spec(spec)  # validates events
            frozen_churn.append(tuple(
                (e.tenant, e.epoch, e.action) for e in schedule.events
            ))

    geometries = data.get("geometries", ()) or [{}]
    frozen_geometries = []
    for i, geometry in enumerate(geometries):
        if not isinstance(geometry, dict):
            raise ValidationError(
                f"{where}: geometry #{i} is not an object: {geometry!r}"
            )
        _check_keys(f"geometry #{i}", geometry, GEOMETRY_KEYS)
        merged = dict(DEFAULT_GEOMETRY)
        merged.update(geometry)
        if int(merged["accesses"]) < 1:
            raise ValidationError(
                f"{where}: geometry #{i}: accesses must be positive"
            )
        frozen_geometries.append(_freeze(merged))

    controllers = data.get("controllers", ()) or [{}]
    frozen_controllers = []
    for i, controller in enumerate(controllers):
        if not isinstance(controller, dict):
            raise ValidationError(
                f"{where}: controller #{i} is not an object: {controller!r}"
            )
        _check_keys(f"controller #{i}", controller, CONTROLLER_KEYS)
        merged = dict(DEFAULT_CONTROLLER)
        merged.update(controller)
        frozen_controllers.append(_freeze(merged))

    return CampaignManifest(
        name=name,
        backends=backends,
        policies=policies,
        pairs=tuple(frozen_pairs),
        geometries=tuple(frozen_geometries),
        controllers=tuple(frozen_controllers),
        tenants=tuple(frozen_tenants),
        churn=tuple(frozen_churn),
    )


def load_manifest(path):
    """Read and validate a JSON manifest file."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ValidationError(f"no manifest at {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"corrupt manifest {path}: {exc}") from exc
    return manifest_from_dict(data, where=f"manifest {path}")


def expand_manifest(manifest):
    """The deterministic cell list for a manifest.

    Axis order is backend -> policy -> pair -> geometry -> controller.
    Non-dynamic cells collapse the controller axis (a controller config
    cannot change their outcome, so expanding it would mint duplicate
    content addresses); analytical cells likewise collapse the geometry
    axis (geometries parameterize synthetic traces, which the interval
    engine does not consume).
    """
    cells = []
    for backend, policy in itertools.product(
        manifest.backends, manifest.policies
    ):
        if backend == "analytical" and static_policy_ways(policy) is not None:
            # Static splits are a trace-grid axis; the analytical grid
            # keeps the paper's four policies.
            raise ValidationError(
                f"policy {policy!r} is not supported on the analytical "
                "backend"
            )
        # The combined workload axis: pairs first (unchanged order, so
        # existing pair campaigns keep their cell sequence), then the
        # N-tenant rosters. `cluster` is tenant-only; static-N is
        # pair-only; the tenants axis itself is trace-only.
        workloads = []
        if policy != "cluster":
            workloads.extend(("pair", pair) for pair in manifest.pairs)
        if backend == "trace" and static_policy_ways(policy) is None:
            workloads.extend(("group", roster) for roster in manifest.tenants)
        for kind, workload in workloads:
            geometries = (
                manifest.geometries if backend == "trace" else ((),)
            )
            for geometry in geometries:
                controllers = (
                    manifest.controllers if policy == "dynamic" else ((),)
                )
                for controller in controllers:
                    # The churn axis only varies dynamic group cells;
                    # everything else collapses it (a schedule cannot
                    # change a static cell's outcome).
                    if kind == "group" and policy == "dynamic":
                        churns = ((),) + tuple(manifest.churn)
                    else:
                        churns = ((),)
                    for churn in churns:
                        if kind == "pair":
                            fg, bg = workload
                            tenants = ()
                        else:
                            fg = workload[0]
                            bg = "+".join(workload[1:])
                            tenants = workload
                        cells.append(
                            CampaignCell(
                                backend=backend,
                                policy=policy,
                                fg=fg,
                                bg=bg,
                                geometry=geometry,
                                controller=controller,
                                tenants=tenants,
                                churn=churn,
                                index=len(cells),
                            )
                        )
    ids = [cell.cell_id for cell in cells]
    if len(set(ids)) != len(ids):
        raise ValidationError(
            "manifest expands to duplicate cells (identical axis values "
            "listed twice?)"
        )
    return cells


def axis_counts(cells):
    """``{axis: {value: count}}`` for the dry-run report."""
    counts = {
        "backend": {},
        "policy": {},
        "pair": {},
        "geometry": {},
    }
    for cell in cells:
        counts["backend"][cell.backend] = (
            counts["backend"].get(cell.backend, 0) + 1
        )
        counts["policy"][cell.policy] = counts["policy"].get(cell.policy, 0) + 1
        if cell.tenants:
            counts.setdefault("tenants", {})
            label = "+".join(cell.tenants)
            counts["tenants"][label] = counts["tenants"].get(label, 0) + 1
        else:
            pair = f"{cell.fg}+{cell.bg}"
            counts["pair"][pair] = counts["pair"].get(pair, 0) + 1
        geometry = json.dumps(dict(cell.geometry), sort_keys=True)
        counts["geometry"][geometry] = counts["geometry"].get(geometry, 0) + 1
    return counts
