"""Sharded, checkpointed, resumable campaign execution.

``run_campaign`` is the fleet driver: it expands a manifest, drops every
cell whose content-addressed record already sits in the store, plans the
remainder into shards (:mod:`repro.campaign.planner`), and executes
shard by shard — roster and sweep shards as ONE batched native call
each, dynamic shards as one epoch-batched controller roster, grid
shards as ONE vectorized analytical solve each, fallback shards over
the exec pool. After each shard the records land
in a uniquely named, atomically written RunSet shard file
(:func:`repro.analysis.store.save_runset_shard`), so a campaign killed
at any point resumes by re-running only what is missing; a completed
campaign resumed again replays zero cells (counter-verifiable via
``campaign-cells-run`` / ``trace-accesses``).

Failures are retried with bounded attempts; the attempt count that
finally succeeded is recorded in every record's provenance, AutoPerf
style, so flaky hosts are visible in the data rather than silently
absorbed.
"""

from dataclasses import dataclass, field

from repro.analysis.store import (
    RunRecord,
    RunSet,
    load_runset_dir,
    record_from_group_outcome,
    record_from_outcome,
    save_runset_shard,
)
from repro.campaign.manifest import expand_manifest, static_policy_ways
from repro.campaign.planner import (
    backend_for,
    group_split_for,
    is_batchable,
    plan_shards,
    roster_cell_for,
    split_for,
    trace_group_for,
    trace_spec_for,
)
from repro.perf import engine_counters as ec
from repro.util.errors import ReproError, ValidationError

DEFAULT_MAX_ATTEMPTS = 2


@dataclass
class CampaignResult:
    """What one ``run_campaign`` invocation did."""

    manifest_name: str
    store_dir: str
    cells_total: int = 0
    cells_skipped: int = 0
    cells_run: int = 0
    roster_shards: int = 0
    grid_shards: int = 0
    sweep_shards: int = 0
    dynamic_shards: int = 0
    cluster_shards: int = 0
    fallback_shards: int = 0
    shards_written: int = 0
    retries: int = 0
    stopped_early: bool = False
    records: dict = field(default_factory=dict)  # cell_id -> RunRecord

    @property
    def complete(self):
        return self.cells_skipped + self.cells_run == self.cells_total


def _units_for(cell):
    if cell.backend == "trace":
        return {"fg_cost": "cycles/access", "bg_rate": "accesses/kcycle"}
    return {"fg_cost": "s", "bg_rate": "instr/s"}


def _cell_provenance(cell, source, attempts=1):
    prov = {
        "cell_id": cell.cell_id,
        "source": source,
        "attempts": attempts,
        "geometry": cell.geometry_dict,
    }
    if cell.policy == "dynamic":
        prov["controller"] = cell.controller_dict
    if cell.churn:
        prov["churn"] = cell.churn_spec
    return prov


def _record_from_stats(cell, spec, split, stats, source):
    """A RunRecord from roster-replayed per-cell ``{name: TraceStats}``.

    Mirrors ``record_from_outcome`` over ``TraceBackend.co_run`` exactly
    (same metric sources, same float coercion), so roster records and
    per-cell reference records are comparable bit for bit.
    """
    fg_cost = stats[spec.fg_name].avg_latency
    bg_rate = stats[spec.bg_name].access_rate_per_kilocycle
    return RunRecord(
        policy=cell.policy,
        backend=cell.backend,
        fg=spec.fg_name,
        bg=spec.bg_name,
        fg_ways=split.fg_ways,
        bg_ways=split.bg_ways,
        metrics={
            "fg_cost": float(fg_cost),
            "bg_rate": float(bg_rate),
            "fg_ways": float(split.fg_ways),
            "bg_ways": float(split.bg_ways),
        },
        units=_units_for(cell),
        provenance=_cell_provenance(cell, source),
    )


def _group_controller_for(cell, backend, group):
    """The churn controller for a dynamic group cell (None otherwise)."""
    if not cell.churn:
        return None
    from repro.workloads.churn import ChurnController, ChurnSchedule

    return ChurnController(
        group.names,
        ChurnSchedule.from_spec(cell.churn_spec),
        llc_ways=backend.capabilities().llc_ways,
    )


def run_campaign_cell(cell):
    """Execute ONE cell on a fresh backend; returns its RunRecord.

    This is the sequential per-cell reference path — module-level and
    picklable, so fallback shards can fan it out over the exec pool —
    and the ground truth the roster shards must match bit for bit.
    """
    from repro.core.policies import run_group_policy, run_policy_on

    backend = backend_for(cell)
    if cell.tenants:
        group = trace_group_for(cell)
        outcome = run_group_policy(
            backend,
            group,
            cell.policy,
            controller=_group_controller_for(cell, backend, group),
        )
        return record_from_group_outcome(
            outcome,
            units=_units_for(cell),
            provenance=_cell_provenance(cell, source="cell"),
        )
    if cell.backend == "trace":
        spec = trace_spec_for(cell)
    else:
        from repro.backend import AnalyticalBackend

        spec = AnalyticalBackend.pair_spec(cell.fg, cell.bg)
    static_ways = static_policy_ways(cell.policy)
    if static_ways is not None:
        split = split_for(cell, backend.capabilities().llc_ways)
        measurement = backend.co_run(spec, split)
        return _record_from_stats(
            cell, spec, split, measurement.raw, source="cell"
        )
    outcome = run_policy_on(backend, spec, cell.policy)
    return record_from_outcome(
        outcome,
        units=_units_for(cell),
        provenance=_cell_provenance(cell, source="cell"),
    )


def _group_record_from_stats(cell, backend, group, split, stats, source,
                             plan=None):
    """A RunRecord from roster-replayed stats for one group cell.

    Builds the same GroupMeasurement the per-cell reference path's
    ``co_run_group`` would, so group roster (and cluster) records are
    comparable bit for bit with ``run_campaign_cell``.
    """
    from repro.core.policies import _group_outcome

    m = backend.group_measurement(group, split, stats)
    outcome = _group_outcome(cell.policy, m, plan=plan)
    return record_from_group_outcome(
        outcome,
        units=_units_for(cell),
        provenance=_cell_provenance(cell, source=source),
    )


def _execute_roster_shard(shard, threads):
    """One batched native call for a whole shard of fixed-mask cells.

    Pair cells and N-tenant group cells share the roster: each group
    cell contributes one multi-domain RosterCell with masks straight
    from its GroupSplit.
    """
    from repro.sim.trace_engine import run_packed_roster

    built = []
    for cell in shard:
        if cell.tenants:
            backend = backend_for(cell, threads)
            group = trace_group_for(cell)
            split = group_split_for(cell, backend.capabilities().llc_ways)
            roster = backend.group_roster_cell(group, split)
            built.append(("group", roster, (backend, group, split)))
        else:
            roster, spec, split = roster_cell_for(cell)
            built.append(("pair", roster, (spec, split)))
    outcomes = run_packed_roster(
        [roster for _, roster, _ in built],
        prefetchers_on=False,
        backend="kernel",
        threads=threads,
    )
    records = []
    for cell, (kind, _, extra), stats in zip(shard, built, outcomes):
        if kind == "group":
            backend, group, split = extra
            records.append(_group_record_from_stats(
                cell, backend, group, split, stats, source="roster"
            ))
        else:
            spec, split = extra
            records.append(
                _record_from_stats(cell, spec, split, stats, source="roster")
            )
    return records


def _execute_cluster_shard(shard, threads):
    """Profile-then-replay for a whole shard of cluster cells.

    Each cell profiles its tenants' way-utility curves (one batched
    sweep call per cell, exactly what the reference path measures),
    plans the LFOC-style split host-side, and then every planned split
    in the shard replays in ONE batched roster call.
    """
    from repro.core.clustering import cluster_tenants
    from repro.sim.trace_engine import run_packed_roster

    built = []
    for cell in shard:
        backend = backend_for(cell, threads)
        group = trace_group_for(cell)
        llc_ways = backend.capabilities().llc_ways
        utilities = backend.way_utility(group)
        plan = cluster_tenants(utilities, names=group.names,
                               llc_ways=llc_ways)
        built.append((backend, group, plan))
    outcomes = run_packed_roster(
        [
            backend.group_roster_cell(group, plan.split)
            for backend, group, plan in built
        ],
        prefetchers_on=False,
        backend="kernel",
        threads=threads,
    )
    return [
        _group_record_from_stats(
            cell, backend, group, plan.split, stats,
            source="cluster", plan=plan,
        )
        for cell, (backend, group, plan), stats in zip(shard, built, outcomes)
    ]


def _execute_grid_shard(shard):
    """One vectorized analytical solve for a whole shard of cells.

    Builds the same ``(spec, split)`` items the per-cell reference path
    would measure one at a time and hands them to ``co_run_grid``; the
    records mirror ``record_from_outcome`` over ``run_policy_on`` field
    for field, so grid records and per-cell reference records are
    comparable bit for bit.
    """
    from repro.backend import AnalyticalBackend

    backend = AnalyticalBackend()
    llc_ways = backend.capabilities().llc_ways
    items = []
    for cell in shard:
        spec = AnalyticalBackend.pair_spec(cell.fg, cell.bg)
        items.append((spec, split_for(cell, llc_ways)))
    measurements = backend.co_run_grid(items)
    return [
        RunRecord(
            policy=cell.policy,
            backend=cell.backend,
            fg=m.fg_name,
            bg=m.bg_name,
            fg_ways=m.fg_ways,
            bg_ways=m.bg_ways,
            metrics={
                "fg_cost": float(m.fg_cost),
                "bg_rate": float(m.bg_rate),
                "fg_ways": float(m.fg_ways),
                "bg_ways": float(m.bg_ways),
            },
            units=_units_for(cell),
            provenance=_cell_provenance(cell, source="grid"),
        )
        for cell, m in zip(shard, measurements)
    ]


def _execute_sweep_shard(shard, threads):
    """One batched native call for a whole shard of biased cells.

    Every cell contributes its 11-allocation measured sweep to one
    concatenated roster; the winner is then chosen from the measured
    entries by the ordinary ``policy_biased`` selection rule. Because
    the entries carry real co-run stats (``raw`` is set), no re-measure
    replay happens — the records are field-identical to the per-cell
    reference path, which scores the same measured sweep.
    """
    from repro.core.policies import policy_biased
    from repro.sim.trace_engine import run_packed_roster

    built = []
    roster = []
    for cell in shard:
        backend = backend_for(cell, threads)
        spec = trace_spec_for(cell)
        splits, cells = backend.sweep_roster_cells(spec)
        built.append((backend, spec, splits, len(cells)))
        roster.extend(cells)
    outcomes = run_packed_roster(
        roster, prefetchers_on=False, backend="kernel", threads=threads
    )
    records = []
    offset = 0
    for cell, (backend, spec, splits, width) in zip(shard, built):
        entries = backend.sweep_entries(
            spec, splits, outcomes[offset:offset + width]
        )
        offset += width
        outcome = policy_biased(backend, spec, sweep=entries)
        records.append(
            record_from_outcome(
                outcome,
                units=_units_for(cell),
                provenance=_cell_provenance(cell, source="sweep"),
            )
        )
    return records


def _execute_dynamic_shard(shard, threads):
    """One epoch-batched dynamic roster for a whole shard of cells.

    All cells advance one control period per threaded C call; between
    calls every cell's controller steps host-side in one vectorized
    pass (see :func:`repro.sim.trace_engine.run_dynamic_roster`). Each
    cell gets its own fresh controller, so records — including the
    reallocation timeline length in provenance — are field-identical
    to the per-cell reference path.
    """
    from repro.core.policies import PolicyOutcome
    from repro.sim.trace_engine import run_dynamic_roster

    built = []
    for cell in shard:
        backend = backend_for(cell, threads)
        spec = trace_spec_for(cell)
        built.append((backend, spec, backend.dynamic_roster_cell(spec)))
    results = run_dynamic_roster(
        [roster_cell for _, _, roster_cell in built],
        prefetchers_on=False,
        backend="kernel",
        threads=threads,
    )
    records = []
    for cell, (backend, spec, roster_cell), result in zip(
        shard, built, results
    ):
        m = backend.dynamic_measurement(spec, roster_cell.controller, result)
        outcome = PolicyOutcome(
            policy="dynamic",
            fg_name=m.fg_name,
            bg_name=m.bg_name,
            fg_ways=m.fg_ways,
            bg_ways=m.bg_ways,
            pair=m.raw,
            sweep=[],
            measurement=m,
            backend=m.backend,
        )
        records.append(
            record_from_outcome(
                outcome,
                units=_units_for(cell),
                provenance=_cell_provenance(cell, source="dynamic"),
            )
        )
    return records


def _execute_fallback_shard(shard, workers, pack_paths):
    from repro.exec import parallel_map

    return parallel_map(
        run_campaign_cell, shard, workers=workers, pack_paths=pack_paths
    )


def _materialize_packs(cells):
    """Compile/load every trace pack the campaign will replay, ONCE.

    Packs are content-addressed on disk, so this is the single point
    where trace compilation happens; roster shards then hit the
    in-process pack memo and fallback workers memmap the persisted
    directories shipped via ``pack_paths`` — no worker regenerates or
    receives a trace array.
    """
    from repro.exec import persisted_pack_paths
    from repro.workloads.tracepack import get_pack

    packs = {}
    for cell in cells:
        if cell.backend != "trace":
            continue
        key = (cell.tenants or (cell.fg, cell.bg), cell.geometry)
        if key in packs:
            continue
        if cell.tenants:
            workloads = trace_group_for(cell).tenants
        else:
            spec = trace_spec_for(cell)
            workloads = (spec.fg, spec.bg)
        packs[key] = [get_pack(w.trace_factory()) for w in workloads]
    flat = [pack for group in packs.values() for pack in group]
    return persisted_pack_paths(flat)


def _existing_records(store_dir):
    """``{cell_id: record}`` for everything already persisted."""
    import os

    if not os.path.isdir(store_dir):
        return {}
    from repro.analysis.store import list_runset_shards

    if not list_runset_shards(store_dir):
        return {}
    merged = load_runset_dir(store_dir)
    out = {}
    for record in merged.records:
        cell_id = record.provenance.get("cell_id")
        if cell_id:
            out[cell_id] = record
    return out


def _retrying(execute, shard, max_attempts):
    """Run ``execute()`` with bounded retries; returns (records, attempts)."""
    last = None
    for attempt in range(1, max_attempts + 1):
        try:
            return execute(), attempt
        except (KeyboardInterrupt, SystemExit):
            raise
        except ReproError:
            # Deterministic misconfiguration: retrying cannot change it.
            raise
        except Exception as exc:
            last = exc
            ec.add(ec.CAMPAIGN_RETRIES)
    raise ValidationError(
        f"shard of {len(shard)} cells failed after {max_attempts} "
        f"attempts; last error: {last!r}"
    ) from last


def run_campaign(manifest, store_dir, cells=None, resume=False,
                 shard_size=None, fallback_shard_size=None, threads=None,
                 workers=None, max_attempts=DEFAULT_MAX_ATTEMPTS,
                 no_roster=False, stop_after_shards=None):
    """Execute a campaign into a multi-shard RunSet store.

    ``resume=True`` loads the store first and skips every cell whose
    content address is already present (a fully persisted campaign
    replays nothing); ``resume=False`` insists on an empty store so a
    stale directory can never silently absorb a new campaign.
    ``no_roster=True`` forces every cell down the sequential per-cell
    path (the benchmark baseline). ``stop_after_shards`` ends the run
    early after N persisted shards — a graceful preemption used by the
    resume tests and operable as a time-slicing knob.
    """
    from repro.campaign.planner import (
        DEFAULT_FALLBACK_SHARD_SIZE,
        DEFAULT_SHARD_SIZE,
    )

    if cells is None:
        cells = expand_manifest(manifest)
    done = _existing_records(store_dir)
    if done and not resume:
        raise ValidationError(
            f"store {store_dir} already holds {len(done)} records; pass "
            "resume=True (--resume) to continue it, or use a fresh "
            "directory"
        )

    plan = plan_shards(
        cells,
        done_ids=done if resume else (),
        shard_size=(
            shard_size if shard_size is not None else DEFAULT_SHARD_SIZE
        ),
        fallback_shard_size=(
            fallback_shard_size
            if fallback_shard_size is not None
            else DEFAULT_FALLBACK_SHARD_SIZE
        ),
    )
    if no_roster:
        merged = [
            cell for _, shard in plan.shards() for cell in shard
        ]
        fallback_size = (
            fallback_shard_size
            if fallback_shard_size is not None
            else DEFAULT_FALLBACK_SHARD_SIZE
        )
        plan.roster_shards = []
        plan.grid_shards = []
        plan.sweep_shards = []
        plan.dynamic_shards = []
        plan.cluster_shards = []
        plan.fallback_shards = [
            merged[i:i + fallback_size]
            for i in range(0, len(merged), fallback_size)
        ]

    result = CampaignResult(
        manifest_name=manifest.name,
        store_dir=store_dir,
        cells_total=len(cells),
        cells_skipped=len(plan.skipped),
        roster_shards=len(plan.roster_shards),
        grid_shards=len(plan.grid_shards),
        sweep_shards=len(plan.sweep_shards),
        dynamic_shards=len(plan.dynamic_shards),
        cluster_shards=len(plan.cluster_shards),
        fallback_shards=len(plan.fallback_shards),
    )
    for cell in plan.skipped:
        result.records[cell.cell_id] = done[cell.cell_id]
    ec.add(ec.CAMPAIGN_CELLS_SKIPPED, len(plan.skipped))

    pending = [cell for _, shard in plan.shards() for cell in shard]
    pack_paths = _materialize_packs(pending) if pending else ()

    for kind, shard in plan.shards():
        if kind == "roster":
            records, attempts = _retrying(
                lambda: _execute_roster_shard(shard, threads),
                shard,
                max_attempts,
            )
        elif kind == "grid":
            records, attempts = _retrying(
                lambda: _execute_grid_shard(shard),
                shard,
                max_attempts,
            )
        elif kind == "sweep":
            records, attempts = _retrying(
                lambda: _execute_sweep_shard(shard, threads),
                shard,
                max_attempts,
            )
        elif kind == "dynamic":
            records, attempts = _retrying(
                lambda: _execute_dynamic_shard(shard, threads),
                shard,
                max_attempts,
            )
        elif kind == "cluster":
            records, attempts = _retrying(
                lambda: _execute_cluster_shard(shard, threads),
                shard,
                max_attempts,
            )
        else:
            records, attempts = _retrying(
                lambda: _execute_fallback_shard(shard, workers, pack_paths),
                shard,
                max_attempts,
            )
        if attempts > 1:
            for record in records:
                record.provenance["attempts"] = attempts
        result.retries += attempts - 1
        shard_set = RunSet(
            records=records,
            backend="|".join(sorted({r.backend for r in records})),
            model_version=_model_version(),
            meta={
                "campaign": manifest.name,
                "shard_kind": kind,
                "cells": len(records),
            },
        )
        save_runset_shard(shard_set, store_dir)
        for record in records:
            result.records[record.provenance["cell_id"]] = record
        result.cells_run += len(records)
        result.shards_written += 1
        ec.add(ec.CAMPAIGN_SHARDS)
        ec.add(ec.CAMPAIGN_CELLS_RUN, len(records))
        if (
            stop_after_shards is not None
            and result.shards_written >= stop_after_shards
            and result.cells_skipped + result.cells_run < result.cells_total
        ):
            result.stopped_early = True
            break
    return result


def _model_version():
    from repro import __version__

    return __version__


def verify_campaign(manifest, store_dir, cells=None, stride=1):
    """Re-run cells sequentially and compare against stored records.

    Every ``stride``-th cell (all by default) is executed through the
    per-cell reference path on a fresh backend and its metrics compared
    *exactly* — both paths are deterministic, so any drift means the
    roster translation broke. Returns the number of cells verified;
    raises :class:`ValidationError` on the first mismatch or missing
    record.
    """
    if cells is None:
        cells = expand_manifest(manifest)
    stored = _existing_records(store_dir)
    checked = 0
    for cell in cells[::max(1, stride)]:
        record = stored.get(cell.cell_id)
        if record is None:
            raise ValidationError(
                f"store {store_dir} has no record for cell "
                f"{cell.cell_id} ({cell.policy} {cell.fg}+{cell.bg})"
            )
        reference = run_campaign_cell(cell)
        if reference.metrics != record.metrics:
            raise ValidationError(
                f"cell {cell.cell_id} ({cell.policy} {cell.fg}+{cell.bg}): "
                f"stored metrics {record.metrics} != reference "
                f"{reference.metrics}"
            )
        checked += 1
    return checked


__all__ = [
    "CampaignResult",
    "is_batchable",
    "run_campaign",
    "run_campaign_cell",
    "verify_campaign",
]
