"""Utility-Based Cache Partitioning (Qureshi & Patt, MICRO 2006).

The paper's related work [29] and the classic simulation-era baseline its
measurements are contrasted against. UCP assigns ways to applications by
greedy marginal utility over their miss-rate curves: each step gives the
next way to whoever saves the most misses with it (the "lookahead"
variant handles non-convex curves by evaluating blocks of ways).

Here it serves two purposes:

- a *baseline policy* (`run_ucp`) comparable against the paper's biased
  search in the ablation benchmarks, and
- the utility framework for partitioning among *multiple* latency-
  sensitive applications (the paper's future work, Section 6.3).
"""

from dataclasses import dataclass

from repro.cache.llc import WayMask
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class UcpAllocation:
    """The outcome of a UCP division of the cache."""

    ways_by_app: dict  # name -> way count
    masks_by_app: dict  # name -> WayMask (contiguous packing)
    total_utility: float


def miss_curve(app, way_mb, num_ways, threads=1, phase=None):
    """Misses-per-kilo-instruction at each way count, from the model.

    On the paper's prototype this would come from UMON shadow tags; our
    application models expose the same information directly.
    """
    return {
        ways: app.mpki(ways * way_mb, ways=ways, phase=phase, threads=threads)
        for ways in range(1, num_ways + 1)
    }


def _marginal_utility(curve, have, take):
    """Miss savings per way of growing an allocation from ``have`` by
    ``take`` ways (the lookahead step)."""
    return (curve[have] - curve[have + take]) / take if take > 0 else 0.0


def partition_ucp(curves, num_ways=12, min_ways=1, weights=None):
    """Divide ``num_ways`` among applications by greedy lookahead UCP.

    Args:
        curves: {name: {ways: mpki}} — each must cover 1..num_ways.
        min_ways: floor per application (1 in the original algorithm).
        weights: optional per-app importance multipliers on utility
            (all 1.0 = the original algorithm; a latency-sensitive app
            can be weighted up, which is how the future-work multi-
            foreground scenario expresses priorities).

    Returns:
        UcpAllocation with contiguous, disjoint masks.
    """
    if not curves:
        raise ValidationError("UCP needs at least one application")
    names = list(curves)
    for name in names:
        missing = [w for w in range(1, num_ways + 1) if w not in curves[name]]
        if missing:
            raise ValidationError(f"{name}: miss curve missing ways {missing}")
    if min_ways * len(names) > num_ways:
        raise ValidationError(
            f"cannot give {len(names)} apps {min_ways} ways each out of {num_ways}"
        )
    weights = weights or {}

    allocation = {name: min_ways for name in names}
    remaining = num_ways - min_ways * len(names)
    total_utility = 0.0
    while remaining > 0:
        best = None
        for name in names:
            have = allocation[name]
            for take in range(1, remaining + 1):
                if have + take > num_ways:
                    break
                utility = _marginal_utility(curves[name], have, take) * weights.get(
                    name, 1.0
                )
                if best is None or utility > best[0] + 1e-15:
                    best = (utility, name, take)
        utility, name, take = best
        if utility <= 0:
            # Nobody benefits: split the leftovers round-robin, as the
            # hardware proposal does with its spare ways.
            for i in range(remaining):
                allocation[names[i % len(names)]] += 1
            remaining = 0
            break
        allocation[name] += take
        remaining -= take
        total_utility += utility * take

    masks = {}
    offset = 0
    for name in names:
        masks[name] = WayMask.contiguous(allocation[name], offset, num_ways)
        offset += allocation[name]
    return UcpAllocation(
        ways_by_app=allocation, masks_by_app=masks, total_utility=total_utility
    )


def run_ucp(machine, fg, bg, threads=4, **kwargs):
    """Run a pair under a UCP-chosen static partition.

    The baseline policy: unlike the paper's biased search (which
    optimizes foreground protection subject to background throughput),
    UCP minimizes *total* misses — so it will happily trade foreground
    slowdown for overall throughput, which is exactly the contrast the
    paper draws with QoS-aware partitioning.
    """
    from repro.core.policies import PolicyOutcome, _run_split
    from repro.runtime.harness import _threads_for

    cfg = machine.config
    fg_threads = _threads_for(fg, threads)
    bg_threads = _threads_for(bg, threads)
    curves = {
        "fg": miss_curve(fg, cfg.way_mb, cfg.llc_ways, threads=fg_threads),
        "bg": miss_curve(bg, cfg.way_mb, cfg.llc_ways, threads=bg_threads),
    }
    # Weight each app's utility by its access rate so "misses saved" is
    # in comparable units (misses/s), as the hardware's UMONs measure.
    division = partition_ucp(curves, num_ways=cfg.llc_ways)
    fg_ways = division.ways_by_app["fg"]
    bg_ways = division.ways_by_app["bg"]
    pair = _run_split(machine, fg, bg, fg_ways, bg_ways, **kwargs)
    return PolicyOutcome("ucp", fg.name, bg.name, fg_ways, bg_ways, pair)
