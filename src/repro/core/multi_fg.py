"""Multiple latency-sensitive foregrounds — the paper's future work.

Section 6.3: "Supporting multiple latency-sensitive applications would
require a more complex algorithm, as it is entirely possible for them to
oversubscribe the cache, and in this case some component of the system
would have to judge their relative utility." (The authors point to their
PACORA work [5].)

`SlowdownBoundAllocator` is that component: each foreground declares a
slowdown bound; the allocator uses the applications' miss-ratio curves to
find the smallest way allocation whose *projected* slowdown (memory-stall
CPI model, uncontended) meets each bound, and hands the remainder to the
background partition. When the foregrounds oversubscribe the cache, it
arbitrates by relative utility weight: bounds are relaxed for the
lightest-weight applications first, and the decision is reported rather
than silently violated.
"""

from dataclasses import dataclass, field

from repro.cache.llc import WayMask
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class ForegroundRequest:
    """One latency-sensitive application and its service contract."""

    app: object  # ApplicationModel
    slowdown_bound: float  # e.g. 1.05 = at most 5% over full-cache speed
    utility_weight: float = 1.0
    threads: int = 1

    def __post_init__(self):
        if self.slowdown_bound < 1.0:
            raise ValidationError("a slowdown bound below 1.0 is unsatisfiable")
        if self.utility_weight <= 0:
            raise ValidationError("utility weight must be positive")


@dataclass
class MultiFgPlan:
    """The allocator's decision."""

    ways_by_app: dict  # name -> ways
    masks_by_app: dict  # name -> WayMask
    bg_mask: WayMask
    projected_slowdowns: dict  # name -> projected slowdown at its ways
    relaxed: list = field(default_factory=list)  # names whose bounds gave way

    @property
    def feasible(self):
        return not self.relaxed


def projected_slowdown(app, ways, config, threads=1, phase=None):
    """Uncontended slowdown estimate of ``ways`` versus the full LLC.

    Uses the same CPI composition as the engine, without bandwidth terms
    (a planner runs before co-runners are known).
    """
    def cpi(w):
        capacity = w * config.way_mb
        mr = app.miss_ratio(capacity, ways=w, phase=phase)
        apki = app.apki(phase, threads)
        llc_lat = config.llc_latency_cycles
        mem_lat = llc_lat + config.dram_latency_cycles
        stall = (apki / 1000.0) * ((1 - mr) * llc_lat + mr * mem_lat) / app.mlp
        return app.base_cpi + stall

    return cpi(ways) / cpi(config.llc_ways)


class SlowdownBoundAllocator:
    """Plans way allocations for N foregrounds plus one background pool."""

    def __init__(self, config, bg_min_ways=1):
        self.config = config
        if bg_min_ways < 1:
            raise ValidationError("the background pool needs at least one way")
        self.bg_min_ways = bg_min_ways

    def minimum_ways(self, request):
        """Smallest way count meeting the request's slowdown bound."""
        for ways in range(1, self.config.llc_ways + 1):
            if (
                projected_slowdown(
                    request.app, ways, self.config, threads=request.threads
                )
                <= request.slowdown_bound
            ):
                return ways
        return self.config.llc_ways

    def plan(self, requests):
        """Allocate; returns a MultiFgPlan (possibly with relaxations)."""
        if not requests:
            raise ValidationError("need at least one foreground request")
        names = [r.app.name for r in requests]
        if len(set(names)) != len(names):
            raise ValidationError("foreground applications must be distinct")

        budget = self.config.llc_ways - self.bg_min_ways
        needs = {r.app.name: self.minimum_ways(r) for r in requests}
        relaxed = []

        # Oversubscribed: strip ways from the lowest-utility apps first,
        # one way at a time, never below 1 — and record whom we failed.
        by_weight = sorted(requests, key=lambda r: r.utility_weight)
        while sum(needs.values()) > budget:
            victim = next(
                (r for r in by_weight if needs[r.app.name] > 1), None
            )
            if victim is None:
                raise ValidationError("cannot fit one way per foreground")
            needs[victim.app.name] -= 1
            if victim.app.name not in relaxed:
                relaxed.append(victim.app.name)

        masks = {}
        offset = 0
        for request in requests:
            ways = needs[request.app.name]
            masks[request.app.name] = WayMask.contiguous(
                ways, offset, self.config.llc_ways
            )
            offset += ways
        bg_ways = self.config.llc_ways - offset
        bg_mask = WayMask.contiguous(bg_ways, offset, self.config.llc_ways)

        slowdowns = {
            r.app.name: projected_slowdown(
                r.app, needs[r.app.name], self.config, threads=r.threads
            )
            for r in requests
        }
        return MultiFgPlan(
            ways_by_app=needs,
            masks_by_app=masks,
            bg_mask=bg_mask,
            projected_slowdowns=slowdowns,
            relaxed=relaxed,
        )
