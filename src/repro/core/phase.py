"""Phase detection from MPKI samples — the paper's Algorithm 6.1.

The detector compares each 100 ms MPKI sample against a running average.
A large deviation (> THR1) marks the start of a phase change; the change
is considered finished once the deviation falls back below THR2. The
published thresholds (THR1 = THR2 = 0.02) are relative deviations — the
paper reports results "largely insensitive to small parameter changes".

``update`` returns the same codes as the paper's pseudocode:
2 = a new phase just started, 1 = still transitioning, 0 = stable.
"""

from repro.util.errors import ValidationError


class PhaseDetector:
    """Algorithm 6.1 over a stream of MPKI samples."""

    def __init__(self, thr1=0.02, thr2=0.02, ema_alpha=0.25):
        if thr1 <= 0 or thr2 <= 0:
            raise ValidationError("thresholds must be positive")
        if not 0 < ema_alpha <= 1:
            raise ValidationError("ema_alpha must be in (0, 1]")
        self.thr1 = thr1
        self.thr2 = thr2
        self.ema_alpha = ema_alpha
        self.avg_mpki = None
        self.new_phase = 0

    def _deviation(self, mpki):
        scale = max(abs(self.avg_mpki), 1e-9)
        return abs(self.avg_mpki - mpki) / scale

    def update(self, mpki):
        """Feed one MPKI sample; returns 2 / 1 / 0 per Algorithm 6.1."""
        if mpki < 0:
            raise ValidationError("MPKI cannot be negative")
        if self.avg_mpki is None:
            self.avg_mpki = mpki
            return 0
        deviation = self._deviation(mpki)
        if not self.new_phase:
            result = 0
            if deviation > self.thr1:
                self.new_phase = 1
                result = 2  # a new phase just started
        else:
            if deviation < self.thr2:
                self.new_phase = 0
            result = self.new_phase
        self.avg_mpki += self.ema_alpha * (mpki - self.avg_mpki)
        return result

    def rebase(self):
        """Accept the next sample as the new baseline.

        Called by the controller after it reallocates cache: the
        allocation change itself moves MPKI, and that self-induced step
        must not read as an application phase change (the "hysteresis
        effects" of Section 6.3).
        """
        self.avg_mpki = None
        self.new_phase = 0
