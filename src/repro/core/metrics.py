"""The evaluation metrics of Sections 5 and 6."""

from repro.util.errors import ValidationError


def slowdown(co_runtime_s, solo_runtime_s):
    """Relative execution time of the foreground (1.0 = no degradation).

    This is the quantity on Figs. 8 and 9's y-axes: foreground runtime
    co-scheduled, normalized to the same allocation running alone.
    """
    if solo_runtime_s <= 0:
        raise ValidationError("solo runtime must be positive")
    return co_runtime_s / solo_runtime_s


def weighted_speedup(co_rates_ips, solo_rates_ips):
    """Weighted speedup of consolidation over sequential execution.

    Fig. 11: the sum over both applications of (instruction rate while
    consolidated) / (instruction rate alone on the whole machine).
    Sequential execution scores 1.0 by construction (each app runs at
    full speed for its share of the time); 1.6 means consolidation
    delivered 60% more throughput. The rate formulation is the standard
    multiprogramming metric and is insensitive to how disparate the two
    runtimes are.
    """
    if len(co_rates_ips) != len(solo_rates_ips) or not co_rates_ips:
        raise ValidationError("need matching, non-empty rate lists")
    for rate in solo_rates_ips:
        if rate <= 0:
            raise ValidationError("solo rates must be positive")
    return sum(c / s for c, s in zip(co_rates_ips, solo_rates_ips))


def throughput_gain(solo_runtimes_s, co_makespan_s):
    """Makespan view of consolidation: total sequential time / makespan."""
    if co_makespan_s <= 0:
        raise ValidationError("makespan must be positive")
    return sum(solo_runtimes_s) / co_makespan_s


def energy_ratio(co_energy_j, solo_energies_j):
    """Consolidated energy normalized to sequential execution (Fig. 10).

    Below 1.0 means consolidation saved energy; the theoretical lower
    bound for two equal-length applications is 0.5.
    """
    total = sum(solo_energies_j)
    if total <= 0:
        raise ValidationError("baseline energy must be positive")
    return co_energy_j / total


def relative_throughput(bg_rate_ips, baseline_bg_rate_ips):
    """Background throughput normalized to a baseline policy (Fig. 13)."""
    if baseline_bg_rate_ips <= 0:
        raise ValidationError("baseline background rate must be positive")
    return bg_rate_ips / baseline_bg_rate_ips
