"""Joint (operating point x way allocation) search under QoS slack.

The ROADMAP's "coordinated energy x partitioning optimization" item
(after Nejat et al., PAPERS.md): the paper shows cache partitioning
preserves responsiveness while co-location improves utilization; the
coordinated question is which *combination* of core operating point and
LLC split spends the least energy while still meeting a per-tenant
responsiveness contract. That search needs a co-run measurement per
(config, split) cell — |configs| x (ways - 1) interval solves per pair —
which is exactly the shape :meth:`SimBackend.co_run_grid` batches into
one vectorized call on the analytical backend.

:class:`EnergyQosSearch` implements the policy against the backend
protocol: QoS anchors come from the *nominal* operating point (the
backend's own config) — the foreground budget is its solo cost plus a
slack fraction, the optional background floor a fraction of its
bg_rate under the nominal shared baseline — and the search returns the
minimum-energy feasible cell with a deterministic tie-break. Cells are
memoized per (pair, config, split), so re-searching with a different
slack re-solves nothing.
"""

from dataclasses import dataclass

from repro.backend.protocol import WaySplit
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class EnergyQosPick:
    """The chosen cell of one joint search.

    ``feasible`` says whether any cell met the QoS contract; when none
    did, the pick is the most responsive cell (minimum ``fg_cost``)
    rather than the cheapest, so an infeasible contract degrades toward
    responsiveness, never away from it.
    """

    config_index: int
    config: object
    fg_ways: int
    bg_ways: int
    fg_cost: float
    bg_rate: float
    energy_j: float
    feasible: bool
    fg_budget: float
    bg_floor: float = None
    cells_searched: int = 0


class EnergyQosSearch:
    """Minimum-energy (operating point x way split) under QoS slack.

    ``configs`` lists the candidate operating points (``None`` entries
    mean the backend's nominal config). ``fg_slack`` is the fraction by
    which the foreground's cost may exceed its nominal solo cost;
    ``bg_slack`` (optional) is the fraction by which the background's
    rate may fall below its nominal shared-baseline rate. The backend
    must report energy (``supports_energy``); more than one distinct
    operating point additionally needs ``supports_operating_points``.
    """

    def __init__(self, backend=None, configs=(None,), fg_slack=0.1,
                 bg_slack=None):
        if backend is None:
            from repro.backend import AnalyticalBackend

            backend = AnalyticalBackend()
        caps = backend.capabilities()
        if not caps.supports_energy:
            raise ValidationError(
                f"backend {caps.name!r} reports no energy; the energy-QoS "
                "search needs supports_energy"
            )
        configs = tuple(configs) or (None,)
        if (
            any(config is not None for config in configs)
            and not caps.supports_operating_points
        ):
            raise ValidationError(
                f"backend {caps.name!r} cannot vary operating points; pass "
                "configs=(None,) to search way splits only"
            )
        if fg_slack < 0:
            raise ValidationError("fg_slack must be >= 0")
        if bg_slack is not None and not 0 <= bg_slack <= 1:
            raise ValidationError("bg_slack must be in [0, 1]")
        self.backend = backend
        self.configs = configs
        self.fg_slack = fg_slack
        self.bg_slack = bg_slack
        self._memo = {}  # (fg, bg, config_index, fg_ways) -> measurement

    def _measurements(self, spec):
        """All (config_index, fg_ways) -> CoRunMeasurement, memoized.

        Missing cells are solved in ONE ``co_run_grid`` call — on the
        analytical backend that is a single vectorized grid solve over
        the whole (config x split) plane.
        """
        llc_ways = self.backend.capabilities().llc_ways
        wanted = [
            (ci, fg_ways)
            for ci in range(len(self.configs))
            for fg_ways in range(1, llc_ways)
        ]
        missing = [
            key for key in wanted
            if (spec.fg_name, spec.bg_name) + key not in self._memo
        ]
        if missing:
            items = [
                (
                    spec,
                    WaySplit.disjoint(fg_ways, llc_ways),
                    self.configs[ci],
                )
                for ci, fg_ways in missing
            ]
            for key, m in zip(missing, self.backend.co_run_grid(items)):
                self._memo[(spec.fg_name, spec.bg_name) + key] = m
        return {
            key: self._memo[(spec.fg_name, spec.bg_name) + key]
            for key in wanted
        }

    def search(self, fg, bg, **options):
        """The minimum-energy feasible cell for one pair.

        Feasibility: ``fg_cost <= solo_cost * (1 + fg_slack)`` and,
        when ``bg_slack`` is set, ``bg_rate >= shared_rate * (1 -
        bg_slack)``, both anchored at the nominal operating point. Ties
        break on (energy, config order, fg_ways) so the pick is a
        deterministic function of the measurement grid.
        """
        from repro.backend import AnalyticalBackend

        spec = AnalyticalBackend.pair_spec(fg, bg, **options)
        llc_ways = self.backend.capabilities().llc_ways
        fg_budget = self.backend.solo(spec.fg).cost * (1.0 + self.fg_slack)
        bg_floor = None
        if self.bg_slack is not None:
            baseline = self.backend.co_run(
                spec, WaySplit.shared(llc_ways)
            )
            bg_floor = baseline.bg_rate * (1.0 - self.bg_slack)

        cells = self._measurements(spec)
        best = None
        fallback = None
        for (ci, fg_ways), m in sorted(cells.items()):
            energy = m.raw.socket_energy_j
            feasible = m.fg_cost <= fg_budget and (
                bg_floor is None or m.bg_rate >= bg_floor
            )
            entry = (ci, fg_ways, m, energy)
            if feasible and (best is None or energy < best[3]):
                best = entry
            if fallback is None or m.fg_cost < fallback[2].fg_cost:
                fallback = entry
        ci, fg_ways, m, energy = best if best is not None else fallback
        return EnergyQosPick(
            config_index=ci,
            config=self.configs[ci],
            fg_ways=fg_ways,
            bg_ways=llc_ways - fg_ways,
            fg_cost=m.fg_cost,
            bg_rate=m.bg_rate,
            energy_j=energy,
            feasible=best is not None,
            fg_budget=fg_budget,
            bg_floor=bg_floor,
            cells_searched=len(cells),
        )


__all__ = ["EnergyQosPick", "EnergyQosSearch"]
