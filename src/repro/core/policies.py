"""The static partitioning policies of Section 5.

- *shared*: no partitioning — both applications may replace anywhere.
- *fair*: an even 6/6 way split.
- *biased*: the best static split, found exactly as the paper does —
  evaluate every allocation and, among those with minimum foreground
  degradation, pick the one maximizing background throughput.
"""

from dataclasses import dataclass, field

from repro.runtime.harness import paper_pair_allocations
from repro.util.errors import ValidationError

# Foreground slowdowns within this tolerance count as "minimum
# degradation" when choosing the biased split (measurement-noise margin).
_BIAS_TOLERANCE = 0.005


@dataclass
class PolicyOutcome:
    """A policy run: the chosen split and the resulting measurements."""

    policy: str
    fg_name: str
    bg_name: str
    fg_ways: int
    bg_ways: int
    pair: object  # PairResult
    sweep: list = field(default_factory=list)  # (fg_ways, PairResult)

    @property
    def fg_runtime_s(self):
        return self.pair.fg.runtime_s

    @property
    def bg_rate_ips(self):
        return self.pair.bg_rate_ips


def _run_split(machine, fg, bg, fg_ways, bg_ways, **kwargs):
    fg_alloc, bg_alloc = paper_pair_allocations(
        fg, bg, fg_ways, bg_ways, machine.config.llc_ways
    )
    return machine.run_pair(fg, bg, fg_alloc, bg_alloc, **kwargs)


def run_shared(machine, fg, bg, **kwargs):
    """No partitioning: overlapping full masks."""
    ways = machine.config.llc_ways
    pair = _run_split(machine, fg, bg, ways, ways, **kwargs)
    return PolicyOutcome("shared", fg.name, bg.name, ways, ways, pair)


def run_fair(machine, fg, bg, **kwargs):
    """Even static split."""
    half = machine.config.llc_ways // 2
    pair = _run_split(machine, fg, bg, half, machine.config.llc_ways - half, **kwargs)
    return PolicyOutcome("fair", fg.name, bg.name, half, machine.config.llc_ways - half, pair)


def sweep_static_partitions(machine, fg, bg, **kwargs):
    """Measure every disjoint split (fg gets 1..ways-1)."""
    ways = machine.config.llc_ways
    sweep = []
    for fg_ways in range(1, ways):
        pair = _run_split(machine, fg, bg, fg_ways, ways - fg_ways, **kwargs)
        sweep.append((fg_ways, pair))
    return sweep


def run_biased(machine, fg, bg, sweep=None, **kwargs):
    """The best static split (the paper's 'biased' policy).

    Among splits whose foreground runtime is within a small tolerance of
    the best observed, picks the one with maximum background throughput.
    """
    sweep = sweep or sweep_static_partitions(machine, fg, bg, **kwargs)
    best_fg_time = min(pair.fg.runtime_s for _, pair in sweep)
    cutoff = best_fg_time * (1.0 + _BIAS_TOLERANCE)
    candidates = [(w, p) for w, p in sweep if p.fg.runtime_s <= cutoff]
    fg_ways, pair = max(candidates, key=lambda item: item[1].bg_rate_ips)
    return PolicyOutcome(
        "biased",
        fg.name,
        bg.name,
        fg_ways,
        machine.config.llc_ways - fg_ways,
        pair,
        sweep=sweep,
    )


def run_policy(machine, fg, bg, policy, **kwargs):
    """Dispatch by policy name ('shared' | 'fair' | 'biased')."""
    runners = {"shared": run_shared, "fair": run_fair, "biased": run_biased}
    if policy not in runners:
        raise ValidationError(f"unknown policy {policy!r}")
    return runners[policy](machine, fg, bg, **kwargs)
