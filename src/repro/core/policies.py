"""The partitioning policies of Section 5, written once over any backend.

- *shared*: no partitioning — both applications may replace anywhere.
- *fair*: an even 6/6 way split.
- *biased*: the best static split, found exactly as the paper does —
  score every allocation and, among those with minimum foreground
  degradation, pick the one maximizing background throughput.
- *dynamic*: the Algorithm 6.2 controller (:mod:`repro.core.dynamic`).

Each policy is implemented exactly once, against the
:class:`~repro.backend.protocol.SimBackend` protocol, so the same code
runs on the statistical interval engine
(:class:`~repro.backend.analytical.AnalyticalBackend`) and on
address-level trace replay
(:class:`~repro.backend.trace.TraceBackend`). The historical
machine-first entry points (``run_shared(machine, fg, bg)``, ...) are
kept as thin wrappers that adapt a :class:`~repro.sim.engine.Machine`
into an analytical backend — through them the analytical results are
bit-identical to the pre-backend implementation.
"""

from dataclasses import dataclass, field

from repro.backend import (
    AnalyticalBackend,
    CoRunMeasurement,
    GroupSplit,
    PairSpec,
    SimBackend,
    TenantSet,
    WaySplit,
)
from repro.util.errors import ValidationError

# Foreground degradations within this tolerance count as "minimum
# degradation" when choosing the biased split (measurement-noise margin).
_BIAS_TOLERANCE = 0.005

POLICY_NAMES = ("shared", "fair", "biased", "dynamic")
# The N-tenant plane adds LFOC-style clustering; the pair plane keeps
# the paper's original four.
GROUP_POLICY_NAMES = POLICY_NAMES + ("cluster",)


@dataclass
class PolicyOutcome:
    """A policy run: the chosen split and the resulting measurements.

    ``pair`` is the backend's native result (a
    :class:`~repro.sim.engine.PairResult` on the analytical backend, a
    ``{name: TraceStats}`` dict on the trace backend); ``measurement``
    is the backend-neutral :class:`~repro.backend.protocol.CoRunMeasurement`
    the policy actually compared on.
    """

    policy: str
    fg_name: str
    bg_name: str
    fg_ways: int
    bg_ways: int
    pair: object  # PairResult | {name: TraceStats}
    sweep: list = field(default_factory=list)  # (fg_ways, PairResult | measurement)
    measurement: object = None  # CoRunMeasurement
    backend: str = "analytical"

    @property
    def fg_cost(self):
        """Foreground degradation (seconds, or cycles/access); lower is better."""
        if self.measurement is not None:
            return self.measurement.fg_cost
        return self.pair.fg.runtime_s

    @property
    def bg_rate(self):
        """Background progress rate; higher is better."""
        if self.measurement is not None:
            return self.measurement.bg_rate
        return self.pair.bg_rate_ips

    # Historical names (analytical units); equal to the generic pair on
    # the analytical backend and aliased on the trace backend.
    @property
    def fg_runtime_s(self):
        return self.fg_cost

    @property
    def bg_rate_ips(self):
        return self.bg_rate


@dataclass
class GroupOutcome:
    """An N-tenant policy run: the chosen split and the measurements.

    ``measurement`` is the backend-neutral
    :class:`~repro.backend.protocol.GroupMeasurement`. When the group
    was a 2-tenant pair-shaped view, :meth:`pair_outcome` recovers the
    exact :class:`PolicyOutcome` the pair entry point would have built —
    the pair wrappers delegate through here bit-identically.
    """

    policy: str
    names: tuple
    split: GroupSplit
    measurement: object  # GroupMeasurement
    sweep: list = field(default_factory=list)
    backend: str = "analytical"
    plan: object = None  # ClusterPlan for the 'cluster' policy
    pair_delegate: object = None  # PolicyOutcome when 2-tenant delegated

    @property
    def fg_name(self):
        return self.names[0]

    @property
    def peer_names(self):
        return self.names[1:]

    @property
    def fg_cost(self):
        return self.measurement.fg_cost

    @property
    def bg_rate(self):
        return self.measurement.bg_rate

    @property
    def fg_ways(self):
        return self.measurement.fg_ways

    @property
    def bg_ways(self):
        return self.measurement.bg_ways

    def pair_outcome(self):
        """The equivalent pair :class:`PolicyOutcome`."""
        if self.pair_delegate is not None:
            return self.pair_delegate
        if self.measurement.pair is None:
            raise ValidationError(
                f"a {len(self.names)}-tenant outcome has no pair view"
            )
        return _outcome(self.policy, self.measurement.pair, sweep=self.sweep)


# -- the single policy implementation (any SimBackend) -----------------------


def policy_shared(backend, spec):
    """No partitioning: overlapping full masks."""
    return group_shared(backend, TenantSet.from_pair(spec)).pair_outcome()


def policy_fair(backend, spec):
    """Even static split."""
    return group_fair(backend, TenantSet.from_pair(spec)).pair_outcome()


def sweep_splits(backend, spec):
    """Score every disjoint split (fg gets 1..ways-1).

    Returns ``[(fg_ways, CoRunMeasurement)]`` in ascending order. On the
    analytical backend each entry is a full co-run; the trace backend
    scores all splits from one profiled pass (see
    ``BackendCapabilities.sweep_is_measured``).
    """
    return backend.sweep(spec)


def choose_biased_split(scored, tolerance=_BIAS_TOLERANCE):
    """The biased selection rule over ``[(fg_ways, measurement)]``.

    Among splits whose foreground cost is within ``tolerance`` of the
    best observed, picks the one with maximum background rate. Exact
    rate ties break toward the smaller foreground allocation, so the
    choice is deterministic regardless of the ordering of ``scored``
    (and matches the historical first-maximum over an ascending sweep).
    """
    scored = list(scored)
    if not scored:
        raise ValidationError("cannot choose a split from an empty sweep")
    best_cost = min(m.fg_cost for _, m in scored)
    cutoff = best_cost * (1.0 + tolerance)
    candidates = [(w, m) for w, m in scored if m.fg_cost <= cutoff]
    return max(candidates, key=lambda item: (item[1].bg_rate, -item[0]))


def policy_biased(backend, spec, sweep=None):
    """The best static split (the paper's 'biased' policy).

    ``sweep`` may supply precomputed ``(fg_ways, measurement)`` scores
    (or historical ``(fg_ways, PairResult)`` pairs, which are adapted).
    When the winning entry is a profile-derived score rather than a
    measured co-run, the chosen split is re-measured with one
    ``co_run`` so the outcome carries real co-run measurements.
    """
    sweep = _as_measured_sweep(backend, spec, sweep) if sweep else backend.sweep(spec)
    fg_ways, m = choose_biased_split(sweep)
    if m.raw is None:
        ways = backend.capabilities().llc_ways
        m = backend.co_run(spec, WaySplit.disjoint(fg_ways, ways))
    return _outcome("biased", m, sweep=_compat_sweep(sweep))


def policy_dynamic(backend, spec, controller=None):
    """The Algorithm 6.2 dynamic controller on any backend.

    The controller shrinks the foreground's allocation while its MPKI
    stays flat; the backend decides what an MPKI sample and a control
    period are (100 ms engine steps analytically, replay epochs on
    traces). The outcome's ``measurement.extra`` carries the controller
    and its reallocation trail.
    """
    m = backend.dynamic(spec, controller=controller)
    return _outcome("dynamic", m)


def run_policy_on(backend, spec, policy, sweep=None):
    """Dispatch by policy name ('shared' | 'fair' | 'biased' | 'dynamic')."""
    if policy == "shared":
        return policy_shared(backend, spec)
    if policy == "fair":
        return policy_fair(backend, spec)
    if policy == "biased":
        return policy_biased(backend, spec, sweep=sweep)
    if policy == "dynamic":
        return policy_dynamic(backend, spec)
    raise ValidationError(f"unknown policy {policy!r}")


def _outcome(policy, m, sweep=()):
    return PolicyOutcome(
        policy=policy,
        fg_name=m.fg_name,
        bg_name=m.bg_name,
        fg_ways=m.fg_ways,
        bg_ways=m.bg_ways,
        pair=m.raw if m.raw is not None else m,
        sweep=list(sweep),
        measurement=m,
        backend=m.backend,
    )


def _as_measured_sweep(backend, spec, sweep):
    """Adapt historical ``(fg_ways, PairResult)`` sweeps to measurements."""
    llc_ways = backend.capabilities().llc_ways
    out = []
    for fg_ways, entry in sweep:
        if not isinstance(entry, CoRunMeasurement):
            entry = CoRunMeasurement(
                backend=backend.capabilities().name,
                fg_name=spec.fg_name,
                bg_name=spec.bg_name,
                fg_ways=fg_ways,
                bg_ways=llc_ways - fg_ways,
                fg_cost=entry.fg.runtime_s,
                bg_rate=entry.bg_rate_ips,
                raw=entry,
            )
        out.append((fg_ways, entry))
    return out


def _compat_sweep(sweep):
    """Store raw pairs where available (the historical sweep shape)."""
    return [
        (w, m.raw if m.raw is not None else m) for w, m in sweep
    ]


# -- the N-tenant group plane -------------------------------------------------


def _group_outcome(policy, m, sweep=(), plan=None, pair_delegate=None):
    return GroupOutcome(
        policy=policy,
        names=tuple(m.names),
        split=m.split,
        measurement=m,
        sweep=list(sweep),
        backend=m.backend,
        plan=plan,
        pair_delegate=pair_delegate,
    )


def _delegated_group_outcome(policy, backend, group, outcome):
    """Wrap a pair :class:`PolicyOutcome` as a GroupOutcome (2-tenant
    delegation: the pair entry point already ran, bit-identically)."""
    from repro.backend import GroupMeasurement

    ways = backend.capabilities().llc_ways
    m = outcome.measurement
    split = GroupSplit.from_pair(WaySplit(m.fg_ways, m.bg_ways), ways)
    wrapped = GroupMeasurement(
        backend=m.backend,
        names=(m.fg_name, m.bg_name),
        split=split,
        costs=(m.fg_cost, None),
        rates=(None, m.bg_rate),
        raw=m.raw,
        pair=m,
        extra=m.extra,
    )
    return _group_outcome(
        policy, wrapped, sweep=outcome.sweep, pair_delegate=outcome
    )


def group_shared(backend, group):
    """No partitioning: every tenant sees the whole cache."""
    ways = backend.capabilities().llc_ways
    split = GroupSplit.shared(len(group.tenants), ways)
    m = backend.co_run_group(group, split)
    return _group_outcome("shared", m)


def group_fair(backend, group):
    """Even static apportioning across all N tenants."""
    ways = backend.capabilities().llc_ways
    if len(group.tenants) == 2:
        # The pair realization (fg bottom, bg top) — identical masks,
        # and the exact split object the seed pair path used.
        split = GroupSplit.from_pair(WaySplit.fair(ways), ways)
    else:
        split = GroupSplit.fair(len(group.tenants), ways)
    m = backend.co_run_group(group, split)
    return _group_outcome("fair", m)


def _even_counts(total, slots):
    base, extra = divmod(total, slots)
    return [base + (1 if i < extra else 0) for i in range(slots)]


def group_biased(backend, group, sweep=None, tolerance=_BIAS_TOLERANCE):
    """The best static split favoring the primary tenant.

    2-tenant groups delegate to :func:`policy_biased` (the exact seed
    sweep-and-choose path). Larger groups score each primary allocation
    from the backend's way-utility curves — primary cost as its misses
    at the allocation, peer rate as their aggregate hits at an even
    apportioning of the complement — then re-measure the winner with
    one :meth:`co_run_group`.
    """
    if len(group.tenants) == 2:
        outcome = policy_biased(backend, group.pair_spec(), sweep=sweep)
        return _delegated_group_outcome("biased", backend, group, outcome)

    caps = backend.capabilities()
    ways = caps.llc_ways
    names = tuple(group.names)
    peers = len(names) - 1
    utilities = backend.way_utility(group)
    scored = []
    splits_by_ways = {}
    for fg_ways in range(1, ways - peers + 1):
        counts = [fg_ways] + _even_counts(ways - fg_ways, peers)
        split = GroupSplit.from_way_counts(counts, ways)
        splits_by_ways[fg_ways] = split
        fg_cost = float(utilities[names[0]].misses_at(fg_ways))
        bg_rate = sum(
            float(utilities[name].hits_at(count))
            for name, count in zip(names[1:], counts[1:])
        )
        scored.append((
            fg_ways,
            CoRunMeasurement(
                backend=caps.name,
                fg_name=names[0],
                bg_name="+".join(names[1:]),
                fg_ways=fg_ways,
                bg_ways=ways - fg_ways,
                fg_cost=fg_cost,
                bg_rate=bg_rate,
                raw=None,
                extra={"source": "utility"},
            ),
        ))
    fg_ways, _ = choose_biased_split(scored, tolerance)
    m = backend.co_run_group(group, splits_by_ways[fg_ways])
    return _group_outcome("biased", m, sweep=scored)


def group_dynamic(backend, group, controller=None):
    """The dynamic controller over an N-tenant group.

    2-tenant groups delegate to :func:`policy_dynamic`; larger groups
    run the backend's native group-dynamic path (the Algorithm 6.2
    controller with peers, or any controller speaking the ``masks()`` /
    ``on_tick()`` protocol — churn schedules included).
    """
    if len(group.tenants) == 2 and controller is None:
        outcome = policy_dynamic(backend, group.pair_spec())
        return _delegated_group_outcome("dynamic", backend, group, outcome)
    m = backend.dynamic_group(group, controller=controller)
    return _group_outcome("dynamic", m)


def run_group_policy(backend, group, policy, sweep=None, controller=None):
    """Dispatch by group policy name (:data:`GROUP_POLICY_NAMES`)."""
    if policy == "shared":
        return group_shared(backend, group)
    if policy == "fair":
        return group_fair(backend, group)
    if policy == "biased":
        return group_biased(backend, group, sweep=sweep)
    if policy == "dynamic":
        return group_dynamic(backend, group, controller=controller)
    if policy == "cluster":
        from repro.core.clustering import group_cluster

        return group_cluster(backend, group)
    raise ValidationError(f"unknown group policy {policy!r}")


# -- historical machine-first entry points -----------------------------------


def _run_split(machine, fg, bg, fg_ways, bg_ways, **kwargs):
    """One co-run at an explicit split; returns the backend's raw result
    (kept for the UCP baseline and other fixed-allocation callers)."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return backend.co_run(spec, WaySplit(fg_ways, bg_ways)).raw


def _adapt(machine, fg, bg, kwargs):
    """(machine | backend, fg, bg, run kwargs) -> (backend, spec)."""
    if isinstance(machine, SimBackend):
        backend = machine
        if isinstance(backend, AnalyticalBackend) and (
            isinstance(fg, str) or isinstance(bg, str)
        ):
            return backend, AnalyticalBackend.pair_spec(fg, bg, **kwargs)
        return backend, PairSpec(fg=fg, bg=bg, options=dict(kwargs))
    return AnalyticalBackend(machine), PairSpec(fg=fg, bg=bg, options=dict(kwargs))


def run_shared(machine, fg, bg, **kwargs):
    """No partitioning: overlapping full masks."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_shared(backend, spec)


def run_fair(machine, fg, bg, **kwargs):
    """Even static split."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_fair(backend, spec)


def sweep_static_partitions(machine, fg, bg, **kwargs):
    """Measure every disjoint split (fg gets 1..ways-1).

    Returns the historical ``[(fg_ways, PairResult)]`` shape on the
    analytical backend (profile-scored measurements where a backend has
    no per-split co-run result).
    """
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return _compat_sweep(backend.sweep(spec))


def run_biased(machine, fg, bg, sweep=None, **kwargs):
    """The best static split (the paper's 'biased' policy)."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_biased(backend, spec, sweep=sweep)


def run_dynamic(machine, fg, bg, controller=None, **kwargs):
    """The dynamic controller (Algorithm 6.2)."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_dynamic(backend, spec, controller=controller)


def run_policy(machine, fg, bg, policy, **kwargs):
    """Dispatch by policy name ('shared' | 'fair' | 'biased' | 'dynamic')."""
    if policy not in POLICY_NAMES:
        raise ValidationError(f"unknown policy {policy!r}")
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return run_policy_on(backend, spec, policy)
