"""The partitioning policies of Section 5, written once over any backend.

- *shared*: no partitioning — both applications may replace anywhere.
- *fair*: an even 6/6 way split.
- *biased*: the best static split, found exactly as the paper does —
  score every allocation and, among those with minimum foreground
  degradation, pick the one maximizing background throughput.
- *dynamic*: the Algorithm 6.2 controller (:mod:`repro.core.dynamic`).

Each policy is implemented exactly once, against the
:class:`~repro.backend.protocol.SimBackend` protocol, so the same code
runs on the statistical interval engine
(:class:`~repro.backend.analytical.AnalyticalBackend`) and on
address-level trace replay
(:class:`~repro.backend.trace.TraceBackend`). The historical
machine-first entry points (``run_shared(machine, fg, bg)``, ...) are
kept as thin wrappers that adapt a :class:`~repro.sim.engine.Machine`
into an analytical backend — through them the analytical results are
bit-identical to the pre-backend implementation.
"""

from dataclasses import dataclass, field

from repro.backend import AnalyticalBackend, CoRunMeasurement, PairSpec, SimBackend, WaySplit
from repro.util.errors import ValidationError

# Foreground degradations within this tolerance count as "minimum
# degradation" when choosing the biased split (measurement-noise margin).
_BIAS_TOLERANCE = 0.005

POLICY_NAMES = ("shared", "fair", "biased", "dynamic")


@dataclass
class PolicyOutcome:
    """A policy run: the chosen split and the resulting measurements.

    ``pair`` is the backend's native result (a
    :class:`~repro.sim.engine.PairResult` on the analytical backend, a
    ``{name: TraceStats}`` dict on the trace backend); ``measurement``
    is the backend-neutral :class:`~repro.backend.protocol.CoRunMeasurement`
    the policy actually compared on.
    """

    policy: str
    fg_name: str
    bg_name: str
    fg_ways: int
    bg_ways: int
    pair: object  # PairResult | {name: TraceStats}
    sweep: list = field(default_factory=list)  # (fg_ways, PairResult | measurement)
    measurement: object = None  # CoRunMeasurement
    backend: str = "analytical"

    @property
    def fg_cost(self):
        """Foreground degradation (seconds, or cycles/access); lower is better."""
        if self.measurement is not None:
            return self.measurement.fg_cost
        return self.pair.fg.runtime_s

    @property
    def bg_rate(self):
        """Background progress rate; higher is better."""
        if self.measurement is not None:
            return self.measurement.bg_rate
        return self.pair.bg_rate_ips

    # Historical names (analytical units); equal to the generic pair on
    # the analytical backend and aliased on the trace backend.
    @property
    def fg_runtime_s(self):
        return self.fg_cost

    @property
    def bg_rate_ips(self):
        return self.bg_rate


# -- the single policy implementation (any SimBackend) -----------------------


def policy_shared(backend, spec):
    """No partitioning: overlapping full masks."""
    ways = backend.capabilities().llc_ways
    m = backend.co_run(spec, WaySplit.shared(ways))
    return _outcome("shared", m)


def policy_fair(backend, spec):
    """Even static split."""
    ways = backend.capabilities().llc_ways
    m = backend.co_run(spec, WaySplit.fair(ways))
    return _outcome("fair", m)


def sweep_splits(backend, spec):
    """Score every disjoint split (fg gets 1..ways-1).

    Returns ``[(fg_ways, CoRunMeasurement)]`` in ascending order. On the
    analytical backend each entry is a full co-run; the trace backend
    scores all splits from one profiled pass (see
    ``BackendCapabilities.sweep_is_measured``).
    """
    return backend.sweep(spec)


def choose_biased_split(scored, tolerance=_BIAS_TOLERANCE):
    """The biased selection rule over ``[(fg_ways, measurement)]``.

    Among splits whose foreground cost is within ``tolerance`` of the
    best observed, picks the one with maximum background rate. Exact
    rate ties break toward the smaller foreground allocation, so the
    choice is deterministic regardless of the ordering of ``scored``
    (and matches the historical first-maximum over an ascending sweep).
    """
    scored = list(scored)
    if not scored:
        raise ValidationError("cannot choose a split from an empty sweep")
    best_cost = min(m.fg_cost for _, m in scored)
    cutoff = best_cost * (1.0 + tolerance)
    candidates = [(w, m) for w, m in scored if m.fg_cost <= cutoff]
    return max(candidates, key=lambda item: (item[1].bg_rate, -item[0]))


def policy_biased(backend, spec, sweep=None):
    """The best static split (the paper's 'biased' policy).

    ``sweep`` may supply precomputed ``(fg_ways, measurement)`` scores
    (or historical ``(fg_ways, PairResult)`` pairs, which are adapted).
    When the winning entry is a profile-derived score rather than a
    measured co-run, the chosen split is re-measured with one
    ``co_run`` so the outcome carries real co-run measurements.
    """
    sweep = _as_measured_sweep(backend, spec, sweep) if sweep else backend.sweep(spec)
    fg_ways, m = choose_biased_split(sweep)
    if m.raw is None:
        ways = backend.capabilities().llc_ways
        m = backend.co_run(spec, WaySplit.disjoint(fg_ways, ways))
    return _outcome("biased", m, sweep=_compat_sweep(sweep))


def policy_dynamic(backend, spec, controller=None):
    """The Algorithm 6.2 dynamic controller on any backend.

    The controller shrinks the foreground's allocation while its MPKI
    stays flat; the backend decides what an MPKI sample and a control
    period are (100 ms engine steps analytically, replay epochs on
    traces). The outcome's ``measurement.extra`` carries the controller
    and its reallocation trail.
    """
    m = backend.dynamic(spec, controller=controller)
    return _outcome("dynamic", m)


def run_policy_on(backend, spec, policy, sweep=None):
    """Dispatch by policy name ('shared' | 'fair' | 'biased' | 'dynamic')."""
    if policy == "shared":
        return policy_shared(backend, spec)
    if policy == "fair":
        return policy_fair(backend, spec)
    if policy == "biased":
        return policy_biased(backend, spec, sweep=sweep)
    if policy == "dynamic":
        return policy_dynamic(backend, spec)
    raise ValidationError(f"unknown policy {policy!r}")


def _outcome(policy, m, sweep=()):
    return PolicyOutcome(
        policy=policy,
        fg_name=m.fg_name,
        bg_name=m.bg_name,
        fg_ways=m.fg_ways,
        bg_ways=m.bg_ways,
        pair=m.raw if m.raw is not None else m,
        sweep=list(sweep),
        measurement=m,
        backend=m.backend,
    )


def _as_measured_sweep(backend, spec, sweep):
    """Adapt historical ``(fg_ways, PairResult)`` sweeps to measurements."""
    llc_ways = backend.capabilities().llc_ways
    out = []
    for fg_ways, entry in sweep:
        if not isinstance(entry, CoRunMeasurement):
            entry = CoRunMeasurement(
                backend=backend.capabilities().name,
                fg_name=spec.fg_name,
                bg_name=spec.bg_name,
                fg_ways=fg_ways,
                bg_ways=llc_ways - fg_ways,
                fg_cost=entry.fg.runtime_s,
                bg_rate=entry.bg_rate_ips,
                raw=entry,
            )
        out.append((fg_ways, entry))
    return out


def _compat_sweep(sweep):
    """Store raw pairs where available (the historical sweep shape)."""
    return [
        (w, m.raw if m.raw is not None else m) for w, m in sweep
    ]


# -- historical machine-first entry points -----------------------------------


def _run_split(machine, fg, bg, fg_ways, bg_ways, **kwargs):
    """One co-run at an explicit split; returns the backend's raw result
    (kept for the UCP baseline and other fixed-allocation callers)."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return backend.co_run(spec, WaySplit(fg_ways, bg_ways)).raw


def _adapt(machine, fg, bg, kwargs):
    """(machine | backend, fg, bg, run kwargs) -> (backend, spec)."""
    if isinstance(machine, SimBackend):
        backend = machine
        if isinstance(backend, AnalyticalBackend) and (
            isinstance(fg, str) or isinstance(bg, str)
        ):
            return backend, AnalyticalBackend.pair_spec(fg, bg, **kwargs)
        return backend, PairSpec(fg=fg, bg=bg, options=dict(kwargs))
    return AnalyticalBackend(machine), PairSpec(fg=fg, bg=bg, options=dict(kwargs))


def run_shared(machine, fg, bg, **kwargs):
    """No partitioning: overlapping full masks."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_shared(backend, spec)


def run_fair(machine, fg, bg, **kwargs):
    """Even static split."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_fair(backend, spec)


def sweep_static_partitions(machine, fg, bg, **kwargs):
    """Measure every disjoint split (fg gets 1..ways-1).

    Returns the historical ``[(fg_ways, PairResult)]`` shape on the
    analytical backend (profile-scored measurements where a backend has
    no per-split co-run result).
    """
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return _compat_sweep(backend.sweep(spec))


def run_biased(machine, fg, bg, sweep=None, **kwargs):
    """The best static split (the paper's 'biased' policy)."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_biased(backend, spec, sweep=sweep)


def run_dynamic(machine, fg, bg, controller=None, **kwargs):
    """The dynamic controller (Algorithm 6.2)."""
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return policy_dynamic(backend, spec, controller=controller)


def run_policy(machine, fg, bg, policy, **kwargs):
    """Dispatch by policy name ('shared' | 'fair' | 'biased' | 'dynamic')."""
    if policy not in POLICY_NAMES:
        raise ValidationError(f"unknown policy {policy!r}")
    backend, spec = _adapt(machine, fg, bg, kwargs)
    return run_policy_on(backend, spec, policy)
