"""The paper's contribution: partitioning policies and the dynamic controller.

- :mod:`repro.core.policies` — the Section 5 policy suite (shared /
  fair / biased, plus the dynamic controller as a policy), implemented
  once against the :mod:`repro.backend` protocol so the same code runs
  on the interval engine and on address-level trace replay.
- :mod:`repro.core.phase` — the MPKI phase detector (Algorithm 6.1).
- :mod:`repro.core.dynamic` — the dynamic cache-partitioning controller
  (Algorithm 6.2).
- :mod:`repro.core.metrics` — slowdown, weighted speedup, energy
  improvement: the quantities Figs. 9-11 and 13 report.
- :mod:`repro.core.clustering` — the Section 3.5 single-linkage
  clustering over 19-dimensional feature vectors.
- :mod:`repro.core.energy_qos` — the coordinated (operating point x
  way split) minimum-energy search under per-tenant QoS slack (the
  ROADMAP item after Nejat et al.), grid-solved and memoized.
"""

from repro.core.bandwidth_qos import QosBandwidthDomain, QosContract, apply_qos
from repro.core.clustering import (
    ClusterResult,
    cluster_applications,
    render_dendrogram,
)
from repro.core.dynamic import ControllerAction, DynamicPartitionController
from repro.core.energy_qos import EnergyQosPick, EnergyQosSearch
from repro.core.multi_fg import (
    ForegroundRequest,
    MultiFgPlan,
    SlowdownBoundAllocator,
)
from repro.core.ucp import UcpAllocation, miss_curve, partition_ucp, run_ucp
from repro.core.metrics import (
    energy_ratio,
    relative_throughput,
    slowdown,
    throughput_gain,
    weighted_speedup,
)
from repro.core.phase import PhaseDetector
from repro.core.policies import (
    POLICY_NAMES,
    PolicyOutcome,
    choose_biased_split,
    policy_biased,
    policy_dynamic,
    policy_fair,
    policy_shared,
    run_biased,
    run_dynamic,
    run_fair,
    run_policy,
    run_policy_on,
    run_shared,
    sweep_splits,
    sweep_static_partitions,
)

__all__ = [
    "ClusterResult",
    "ControllerAction",
    "DynamicPartitionController",
    "EnergyQosPick",
    "EnergyQosSearch",
    "ForegroundRequest",
    "MultiFgPlan",
    "POLICY_NAMES",
    "PhaseDetector",
    "PolicyOutcome",
    "QosBandwidthDomain",
    "QosContract",
    "SlowdownBoundAllocator",
    "UcpAllocation",
    "apply_qos",
    "choose_biased_split",
    "cluster_applications",
    "energy_ratio",
    "miss_curve",
    "partition_ucp",
    "policy_biased",
    "policy_dynamic",
    "policy_fair",
    "policy_shared",
    "relative_throughput",
    "render_dendrogram",
    "run_biased",
    "run_dynamic",
    "run_fair",
    "run_policy",
    "run_policy_on",
    "run_shared",
    "run_ucp",
    "slowdown",
    "sweep_splits",
    "sweep_static_partitions",
    "throughput_gain",
    "weighted_speedup",
]
