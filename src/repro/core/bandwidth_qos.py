"""Memory-bandwidth QoS — the hardware the paper asks for (Section 8).

"We determined that partitioning or other quality-of-service mechanisms
for memory bandwidth could potentially be a further effective hardware
addition ... in order to achieve robust performance isolation, latency
quality-of-service in particular would need to improve."

This module models that addition, in the shape Intel later shipped as
Memory Bandwidth Allocation (MBA) plus a latency-priority lane:

- a *bandwidth reservation* guarantees the foreground a fraction of DRAM
  bandwidth regardless of competing demand, and
- *latency priority* exempts its requests from contention-induced
  latency inflation (they bypass the loaded queues).

`BandwidthQosPolicy` applies both to a foreground application; the
ablation bench (`benchmarks/test_ablation_bandwidth_qos.py`) shows it
removing exactly the residual slowdowns Fig. 9 couldn't.
"""

from dataclasses import dataclass

from repro.cpu.bandwidth import BandwidthGrant
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class QosContract:
    """One application's bandwidth service guarantee."""

    name: str
    reserved_fraction: float  # of DRAM bandwidth, guaranteed
    latency_priority: bool = False

    def __post_init__(self):
        if not 0.0 <= self.reserved_fraction < 1.0:
            raise ValidationError("reservation must be in [0, 1)")


class QosBandwidthDomain:
    """Wraps a BandwidthDomain with reservations and priority lanes.

    Reserved capacity is carved out first for contract holders (up to
    their demand); everyone then competes for the remainder through the
    underlying domain's protected-share + weighted-max-min arbitration.
    Priority requesters see no latency inflation.
    """

    def __init__(self, domain, contracts=()):
        self.domain = domain
        self.contracts = {c.name: c for c in contracts}
        total = sum(c.reserved_fraction for c in self.contracts.values())
        if total >= 1.0:
            raise ValidationError("reservations exceed the channel")

    @property
    def capacity_bps(self):
        return self.domain.capacity_bps

    def utilization(self, demands):
        return self.domain.utilization(demands)

    def latency_factor(self, utilization):
        return self.domain.latency_factor(utilization)

    def resolve(self, demands, weights=None):
        reserved_grants = {}
        residual_demands = dict(demands)
        carved = 0.0
        for name, contract in self.contracts.items():
            if name not in demands:
                continue
            reserve = contract.reserved_fraction * self.domain.capacity_bps
            granted = min(demands[name], reserve)
            reserved_grants[name] = granted
            residual_demands[name] = demands[name] - granted
            carved += granted

        # Competition for what's left, on a proportionally shrunk channel.
        shrunk = _Shrunk(self.domain, self.domain.capacity_bps - carved)
        grants = shrunk.resolve(residual_demands, weights)

        out = {}
        for name in demands:
            grant = grants[name]
            total = grant.granted_bps + reserved_grants.get(name, 0.0)
            factor = grant.latency_factor
            contract = self.contracts.get(name)
            if contract is not None and contract.latency_priority:
                factor = 1.0  # priority lane: no queueing inflation
            out[name] = BandwidthGrant(granted_bps=total, latency_factor=factor)
        return out


class _Shrunk:
    """The base domain with part of its capacity carved away."""

    def __init__(self, domain, capacity_bps):
        self._domain = domain
        self.capacity_bps = max(capacity_bps, 1.0)

    def resolve(self, demands, weights=None):
        original = self._domain.capacity_bps
        try:
            self._domain.capacity_bps = self.capacity_bps
            return self._domain.resolve(demands, weights)
        finally:
            self._domain.capacity_bps = original


def apply_qos(machine, contracts):
    """Install bandwidth QoS contracts on a machine's DRAM channel.

    Returns a restore callable; typical use::

        restore = apply_qos(machine, [QosContract("fg-app", 0.3, True)])
        try:
            ...run experiments...
        finally:
            restore()
    """
    original = machine.memory_system.dram
    base = original.domain if isinstance(original, QosBandwidthDomain) else original
    machine.memory_system.dram = QosBandwidthDomain(base, contracts)

    def restore():
        machine.memory_system.dram = base

    return restore
