"""Application clustering (Section 3.5).

The paper forms a 19-value feature vector per application — execution
time versus thread count (7 features), execution time versus LLC size
(10 features), prefetcher sensitivity (1) and bandwidth sensitivity (1) —
normalizes every metric to [0, 1], and applies single-linkage hierarchical
clustering (scipy), cutting the dendrogram at a linkage distance of 0.9.

``cluster_applications`` takes the feature dict built by
``repro.analysis.characterize`` so the algorithm stays decoupled from how
features are measured.
"""

from dataclasses import dataclass, field

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from repro.util.errors import ValidationError

EXPECTED_FEATURES = 19


@dataclass
class ClusterResult:
    """Cluster assignments plus the dendrogram's linkage matrix."""

    names: list
    labels: dict  # name -> cluster id (1-based)
    linkage_matrix: np.ndarray
    features: np.ndarray
    cut_distance: float
    representatives: dict = field(default_factory=dict)  # cluster id -> name

    @property
    def num_clusters(self):
        return len(set(self.labels.values()))

    def members(self, cluster_id):
        return [n for n, c in self.labels.items() if c == cluster_id]

    def clusters(self):
        return {c: self.members(c) for c in sorted(set(self.labels.values()))}


def normalize_features(matrix):
    """Scale each feature column to [0, 1] across applications."""
    matrix = np.asarray(matrix, dtype=float)
    lo = matrix.min(axis=0)
    hi = matrix.max(axis=0)
    span = np.where(hi - lo > 1e-12, hi - lo, 1.0)
    return (matrix - lo) / span


def cluster_applications(features_by_name, cut_distance=0.9, expected_len=None):
    """Single-linkage clustering of the normalized feature vectors.

    Args:
        features_by_name: {application name: sequence of raw features}.
        cut_distance: dendrogram cut (the paper uses 0.9).
        expected_len: optional check on vector length (19 in the paper).
    """
    if not features_by_name:
        raise ValidationError("need at least one application to cluster")
    names = sorted(features_by_name)
    lengths = {len(features_by_name[n]) for n in names}
    if len(lengths) != 1:
        raise ValidationError("feature vectors must all have the same length")
    if expected_len is not None and lengths != {expected_len}:
        raise ValidationError(
            f"expected {expected_len}-value feature vectors, got {lengths}"
        )

    matrix = normalize_features([features_by_name[n] for n in names])
    if len(names) == 1:
        labels = {names[0]: 1}
        return ClusterResult(
            names=names,
            labels=labels,
            linkage_matrix=np.empty((0, 4)),
            features=matrix,
            cut_distance=cut_distance,
            representatives={1: names[0]},
        )

    link = linkage(matrix, method="single", metric="euclidean")
    assignment = fcluster(link, t=cut_distance, criterion="distance")
    labels = {name: int(c) for name, c in zip(names, assignment)}
    result = ClusterResult(
        names=names,
        labels=labels,
        linkage_matrix=link,
        features=matrix,
        cut_distance=cut_distance,
    )
    result.representatives = _representatives(result)
    return result


def render_dendrogram(result, width=60):
    """Render the linkage tree as ASCII (the Fig. 5 view).

    Each merge is one line: the two clusters joined and the linkage
    distance, drawn as a bar scaled to the maximum distance. Leaves are
    application names; internal nodes are shown by their member count.
    """
    link = result.linkage_matrix
    if link.shape[0] == 0:
        return f"(single application: {result.names[0]})"
    n = len(result.names)
    labels = {i: result.names[i] for i in range(n)}
    sizes = {i: 1 for i in range(n)}
    max_distance = float(link[-1, 2]) or 1.0
    lines = []
    for merge_index, (a, b, distance, size) in enumerate(link):
        a, b = int(a), int(b)
        node = n + merge_index
        label_a = labels[a] if sizes[a] == 1 else f"[{sizes[a]} apps]"
        label_b = labels[b] if sizes[b] == 1 else f"[{sizes[b]} apps]"
        bar = "#" * max(1, int(distance / max_distance * width))
        marker = "*" if distance > result.cut_distance else " "
        lines.append(
            f"{distance:6.3f} {marker}|{bar:<{width}}| {label_a} + {label_b}"
        )
        labels[node] = f"[{int(size)} apps]"
        sizes[node] = int(size)
    lines.append(
        f"(cut at {result.cut_distance}: merges marked '*' happen above the "
        f"cut and separate clusters)"
    )
    return "\n".join(lines)


def _representatives(result):
    """The application closest to each cluster's centroid (Table 3 bold)."""
    reps = {}
    index_of = {name: i for i, name in enumerate(result.names)}
    for cluster_id, members in result.clusters().items():
        rows = result.features[[index_of[m] for m in members]]
        centroid = rows.mean(axis=0)
        distances = np.linalg.norm(rows - centroid, axis=1)
        reps[cluster_id] = members[int(np.argmin(distances))]
    return reps


# -- LFOC-style tenant clustering (the N-tenant partitioning policy) ----------
#
# LFOC ("A Lightweight Fairness-Oriented Cache Clustering Policy for
# Commodity Multicores") classifies each co-running program by its
# way-utility curve, groups programs of the same class into partition
# clusters, and sizes each cluster from a small lookup table rather
# than an online search. The policy here follows that shape over the
# repo's exact :class:`~repro.backend.protocol.WayUtility` curves (UMON
# stack distances on the trace backend, cached solo runs analytically).

TENANT_CLASSES = ("squanderer", "insensitive", "sensitive")

# The lookup-table apportioning: ways reserved for the shared cluster
# of each non-sensitive class; sensitive tenants split the remainder.
CLUSTER_RESERVED_WAYS = {"squanderer": 1, "insensitive": 2}


def classify_tenant(utility, llc_ways=None, squander_hit_fraction=0.002,
                    saturate_fraction=0.9, saturate_ways=2):
    """One tenant's LFOC class from its way-utility curve.

    - ``squanderer``: even the whole cache yields almost no hits
      (below ``squander_hit_fraction`` of its accesses) — streaming;
      extra ways are wasted on it;
    - ``insensitive``: reaches ``saturate_fraction`` of its full-cache
      hits within ``saturate_ways`` ways — a small cluster suffices;
    - ``sensitive``: everything else — hits keep growing with ways.
    """
    if llc_ways is None:
        llc_ways = utility.llc_ways
    full_hits = utility.hits_at(llc_ways)
    if full_hits <= squander_hit_fraction * utility.accesses:
        return "squanderer"
    if utility.hits_at(min(saturate_ways, llc_ways)) >= (
        saturate_fraction * full_hits
    ):
        return "insensitive"
    return "sensitive"


@dataclass
class ClusterPlan:
    """An LFOC-style partition plan over one tenant group.

    ``clusters`` lists ``(label, member names, ways)`` bottom-up in
    mask order; every member of a cluster shares the same way mask in
    ``split``.
    """

    names: tuple
    classes: dict  # name -> class label
    clusters: tuple  # ((label, (names...), ways), ...)
    split: object  # GroupSplit


def cluster_tenants(utilities, names=None, llc_ways=None, **classify_kwargs):
    """Cluster tenants by way-utility class and apportion the cache.

    Sensitive tenants get one cluster each; all insensitive tenants
    share one cluster, all squanderers another. Shared clusters take
    their lookup-table reservation (:data:`CLUSTER_RESERVED_WAYS`);
    sensitive clusters split the remaining ways evenly, remainder to
    the earliest. With no sensitive tenant the leftover goes to the
    insensitive cluster (or the squanderers when there is none).
    Masks are contiguous, packed bottom-up: sensitive clusters first
    (tenant order), then insensitive, squanderers on top.
    """
    from repro.backend.protocol import GroupSplit

    if names is None:
        names = tuple(sorted(utilities))
    names = tuple(names)
    if not names:
        raise ValidationError("need at least one tenant to cluster")
    missing = [n for n in names if n not in utilities]
    if missing:
        raise ValidationError(f"no way-utility curve for {missing}")
    if llc_ways is None:
        llc_ways = utilities[names[0]].llc_ways

    classes = {
        name: classify_tenant(utilities[name], llc_ways, **classify_kwargs)
        for name in names
    }
    sensitive = [n for n in names if classes[n] == "sensitive"]
    insensitive = [n for n in names if classes[n] == "insensitive"]
    squanderers = [n for n in names if classes[n] == "squanderer"]

    reserved = 0
    if insensitive:
        reserved += CLUSTER_RESERVED_WAYS["insensitive"]
    if squanderers:
        reserved += CLUSTER_RESERVED_WAYS["squanderer"]
    available = llc_ways - reserved

    clusters = []  # (label, members, ways) bottom-up
    if sensitive:
        if available < len(sensitive):
            raise ValidationError(
                f"{len(sensitive)} sensitive tenants need at least one way "
                f"each; only {available} of {llc_ways} remain after the "
                "lookup-table reservations"
            )
        base, extra = divmod(available, len(sensitive))
        for i, name in enumerate(sensitive):
            clusters.append(
                ("sensitive", (name,), base + (1 if i < extra else 0))
            )
        leftover = 0
    else:
        leftover = available
    if insensitive:
        ways = CLUSTER_RESERVED_WAYS["insensitive"] + leftover
        clusters.append(("insensitive", tuple(insensitive), ways))
        leftover = 0
    if squanderers:
        ways = CLUSTER_RESERVED_WAYS["squanderer"] + leftover
        clusters.append(("squanderer", tuple(squanderers), ways))
        leftover = 0

    bits_of = {}
    offset = 0
    for label, members, ways in clusters:
        mask = ((1 << ways) - 1) << offset
        for member in members:
            bits_of[member] = mask
        offset += ways
    split = GroupSplit(tuple(bits_of[n] for n in names), llc_ways)
    return ClusterPlan(
        names=names,
        classes=classes,
        clusters=tuple(clusters),
        split=split,
    )


def group_cluster(backend, group):
    """The 'cluster' group policy: profile, classify, apportion, run.

    One way-utility pass per tenant (the backend's cheapest exact
    source), one :meth:`co_run_group` at the planned split. Works on
    any backend implementing the group protocol.
    """
    from repro.core.policies import _group_outcome

    llc_ways = backend.capabilities().llc_ways
    utilities = backend.way_utility(group)
    plan = cluster_tenants(utilities, names=group.names, llc_ways=llc_ways)
    m = backend.co_run_group(group, plan.split)
    return _group_outcome("cluster", m, plan=plan)
