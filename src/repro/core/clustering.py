"""Application clustering (Section 3.5).

The paper forms a 19-value feature vector per application — execution
time versus thread count (7 features), execution time versus LLC size
(10 features), prefetcher sensitivity (1) and bandwidth sensitivity (1) —
normalizes every metric to [0, 1], and applies single-linkage hierarchical
clustering (scipy), cutting the dendrogram at a linkage distance of 0.9.

``cluster_applications`` takes the feature dict built by
``repro.analysis.characterize`` so the algorithm stays decoupled from how
features are measured.
"""

from dataclasses import dataclass, field

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from repro.util.errors import ValidationError

EXPECTED_FEATURES = 19


@dataclass
class ClusterResult:
    """Cluster assignments plus the dendrogram's linkage matrix."""

    names: list
    labels: dict  # name -> cluster id (1-based)
    linkage_matrix: np.ndarray
    features: np.ndarray
    cut_distance: float
    representatives: dict = field(default_factory=dict)  # cluster id -> name

    @property
    def num_clusters(self):
        return len(set(self.labels.values()))

    def members(self, cluster_id):
        return [n for n, c in self.labels.items() if c == cluster_id]

    def clusters(self):
        return {c: self.members(c) for c in sorted(set(self.labels.values()))}


def normalize_features(matrix):
    """Scale each feature column to [0, 1] across applications."""
    matrix = np.asarray(matrix, dtype=float)
    lo = matrix.min(axis=0)
    hi = matrix.max(axis=0)
    span = np.where(hi - lo > 1e-12, hi - lo, 1.0)
    return (matrix - lo) / span


def cluster_applications(features_by_name, cut_distance=0.9, expected_len=None):
    """Single-linkage clustering of the normalized feature vectors.

    Args:
        features_by_name: {application name: sequence of raw features}.
        cut_distance: dendrogram cut (the paper uses 0.9).
        expected_len: optional check on vector length (19 in the paper).
    """
    if not features_by_name:
        raise ValidationError("need at least one application to cluster")
    names = sorted(features_by_name)
    lengths = {len(features_by_name[n]) for n in names}
    if len(lengths) != 1:
        raise ValidationError("feature vectors must all have the same length")
    if expected_len is not None and lengths != {expected_len}:
        raise ValidationError(
            f"expected {expected_len}-value feature vectors, got {lengths}"
        )

    matrix = normalize_features([features_by_name[n] for n in names])
    if len(names) == 1:
        labels = {names[0]: 1}
        return ClusterResult(
            names=names,
            labels=labels,
            linkage_matrix=np.empty((0, 4)),
            features=matrix,
            cut_distance=cut_distance,
            representatives={1: names[0]},
        )

    link = linkage(matrix, method="single", metric="euclidean")
    assignment = fcluster(link, t=cut_distance, criterion="distance")
    labels = {name: int(c) for name, c in zip(names, assignment)}
    result = ClusterResult(
        names=names,
        labels=labels,
        linkage_matrix=link,
        features=matrix,
        cut_distance=cut_distance,
    )
    result.representatives = _representatives(result)
    return result


def render_dendrogram(result, width=60):
    """Render the linkage tree as ASCII (the Fig. 5 view).

    Each merge is one line: the two clusters joined and the linkage
    distance, drawn as a bar scaled to the maximum distance. Leaves are
    application names; internal nodes are shown by their member count.
    """
    link = result.linkage_matrix
    if link.shape[0] == 0:
        return f"(single application: {result.names[0]})"
    n = len(result.names)
    labels = {i: result.names[i] for i in range(n)}
    sizes = {i: 1 for i in range(n)}
    max_distance = float(link[-1, 2]) or 1.0
    lines = []
    for merge_index, (a, b, distance, size) in enumerate(link):
        a, b = int(a), int(b)
        node = n + merge_index
        label_a = labels[a] if sizes[a] == 1 else f"[{sizes[a]} apps]"
        label_b = labels[b] if sizes[b] == 1 else f"[{sizes[b]} apps]"
        bar = "#" * max(1, int(distance / max_distance * width))
        marker = "*" if distance > result.cut_distance else " "
        lines.append(
            f"{distance:6.3f} {marker}|{bar:<{width}}| {label_a} + {label_b}"
        )
        labels[node] = f"[{int(size)} apps]"
        sizes[node] = int(size)
    lines.append(
        f"(cut at {result.cut_distance}: merges marked '*' happen above the "
        f"cut and separate clusters)"
    )
    return "\n".join(lines)


def _representatives(result):
    """The application closest to each cluster's centroid (Table 3 bold)."""
    reps = {}
    index_of = {name: i for i, name in enumerate(result.names)}
    for cluster_id, members in result.clusters().items():
        rows = result.features[[index_of[m] for m in members]]
        centroid = rows.mean(axis=0)
        distances = np.linalg.norm(rows - centroid, axis=1)
        reps[cluster_id] = members[int(np.argmin(distances))]
    return reps
