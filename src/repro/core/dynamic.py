"""The dynamic cache-partitioning controller — the paper's Algorithm 6.2.

When the foreground application starts or changes phase, the controller
gives it as much cache as possible (11 of 12 ways — the background always
keeps at least one). It then shrinks the foreground's allocation one way
per 100 ms control period while MPKI stays flat (relative change below
THR3 = 0.05), down to a 1 MB floor. The first shrink that *does* move
MPKI is undone and the search stops until the next phase change. The
background application(s) always receive the complement of the
foreground's ways, so capacity the foreground doesn't need turns into
background throughput (Fig. 13).
"""

from dataclasses import dataclass

from repro.cache.llc import WayMask
from repro.core.phase import PhaseDetector
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class ControllerAction:
    """One reallocation decision, kept for the audit trail."""

    time_s: float
    fg_ways: int
    reason: str
    mpki: float


def mpki_window(misses, accesses):
    """Misses per kilo-access over one measurement window.

    The trace engine has no instruction counts, so accesses stand in
    for (kilo-)instructions — a fixed rescaling that leaves every
    relative-change test in the controller and the phase detector
    unchanged. Integer inputs make the result reproducible to the bit
    across replay backends.
    """
    return 1000.0 * misses / accesses if accesses else 0.0


def mpki_windows(misses, accesses):
    """Vectorized :func:`mpki_window` over banked counter deltas.

    ``misses`` and ``accesses`` are integer arrays (any matching shape —
    the batched dynamic roster passes ``(cells, domains)`` banks); the
    result is float64 with zeros where a window saw no accesses. Counter
    deltas are far below 2**53, so the int->float conversion is exact
    and each element is bit-identical to the scalar
    ``mpki_window(misses[i], accesses[i])``.
    """
    import numpy as np

    m = np.asarray(misses, dtype=np.float64)
    a = np.asarray(accesses, dtype=np.float64)
    out = np.zeros(np.broadcast(m, a).shape, dtype=np.float64)
    np.divide(1000.0 * m, a, out=out, where=a != 0.0)
    return out


class DynamicPartitionController:
    """Algorithm 6.2, driving fg/bg way masks from foreground MPKI."""

    def __init__(
        self,
        fg_name,
        bg_name,
        llc_ways=12,
        way_mb=0.5,
        min_fg_mb=1.0,
        thr3=0.05,
        period_s=0.1,
        detector=None,
        resctrl=None,
        comparison="baseline",
    ):
        """``bg_name`` may be a single name or a sequence of peer names —
        multiple background applications share one partition and contend
        for capacity within it (Section 6.3).

        ``comparison`` selects the shrink test:

        - ``"baseline"`` (default): compare against the MPKI at the start
          of the shrink sequence — bounds cumulative degradation at THR3.
        - ``"per-step"``: the paper's literal pseudocode — compare against
          the previous sample only. On the prototype, stale data in
          deallocated ways masked per-step effects; in a model with
          immediate capacity effects this variant drifts (each step is
          under THR3 while the total is not), which the ablation bench
          demonstrates.
        """
        if comparison not in ("baseline", "per-step"):
            raise ValidationError(f"unknown comparison mode {comparison!r}")
        self.comparison = comparison
        if llc_ways < 2:
            raise ValidationError("need at least two ways to partition")
        self.fg_name = fg_name
        if isinstance(bg_name, str):
            self.bg_names = (bg_name,)
        else:
            self.bg_names = tuple(bg_name)
            if not self.bg_names:
                raise ValidationError("need at least one background peer")
        self.bg_name = self.bg_names[0]
        self.llc_ways = llc_ways
        self.min_fg_ways = max(1, round(min_fg_mb / way_mb))
        self.max_fg_ways = llc_ways - 1  # the background keeps one way
        if self.min_fg_ways > self.max_fg_ways:
            raise ValidationError("floor exceeds the maximum allocation")
        self.thr3 = thr3
        self.period_s = period_s
        self.detector = detector or PhaseDetector()
        self.resctrl = resctrl
        self.fg_ways = self.max_fg_ways
        self.phase_starts = 1  # application start counts as a phase start
        self.last_mpki = None
        # MPKI at the start of the current shrink sequence. Shrinking is
        # allowed while MPKI stays within THR3 of this baseline — the
        # cumulative form of the paper's test. (On the prototype, data
        # left in deallocated ways hid per-step effects and a later
        # "phase change" restored capacity; a model with immediate
        # capacity effects needs the cumulative bound to get the same
        # outcome without that detour.)
        self.baseline_mpki = None
        self.actions = []
        self._since_last_decision = 0.0

    # -- the control loop ---------------------------------------------------

    def on_tick(self, now_s, dt_s, metrics):
        """Engine hook: consume metrics, possibly return new masks."""
        self._since_last_decision += dt_s
        if self._since_last_decision + 1e-9 < self.period_s:
            return None
        self._since_last_decision = 0.0
        if self.fg_name not in metrics:
            return None
        self._publish_occupancy(metrics)
        return self.decide(now_s, metrics[self.fg_name]["mpki"])

    def _publish_occupancy(self, metrics):
        """Refresh resctrl mon_data (llc_occupancy) from engine metrics."""
        if self.resctrl is None:
            return
        mb = 1 << 20
        readings = {}
        fg = metrics.get(self.fg_name, {})
        if "occupancy_mb" in fg:
            readings["fg"] = int(fg["occupancy_mb"] * mb)
        bg_total = sum(
            metrics[name]["occupancy_mb"]
            for name in self.bg_names
            if name in metrics and "occupancy_mb" in metrics[name]
        )
        if bg_total:
            readings["bg"] = int(bg_total * mb)
        if readings:
            self.resctrl.update_occupancy(readings)

    def decide(self, now_s, mpki):
        """One Algorithm 6.2 decision from a foreground MPKI sample."""
        detected = self.detector.update(mpki)
        changed = False
        if detected == 2:
            self.phase_starts = 1
            self.baseline_mpki = None  # re-measure after the expansion
            if self.fg_ways != self.max_fg_ways:
                self.fg_ways = self.max_fg_ways
                changed = True
                self._record(now_s, "phase-start: expand to max", mpki)
        elif detected == 0 and self.phase_starts == 1:
            if self.last_mpki is None:
                # First settled sample after a reallocation: take it as
                # the comparison point, decide on the next one.
                if self.baseline_mpki is None:
                    self.baseline_mpki = mpki
            elif self._stable(mpki):
                if self.fg_ways > self.min_fg_ways:
                    self.fg_ways -= 1
                    changed = True
                    self._record(now_s, "stable MPKI: shrink", mpki)
                else:
                    self.phase_starts = 0  # hold the 1 MB floor
            else:
                if self.fg_ways < self.max_fg_ways:
                    self.fg_ways += 1
                    changed = True
                    self._record(now_s, "MPKI rose: give back one way", mpki)
                self.phase_starts = 0
        self.last_mpki = mpki
        if not changed:
            return None
        # The reallocation itself moves MPKI: rebase the detector and
        # drop the last sample so the next comparison is settled-vs-
        # settled rather than across our own change.
        self.detector.rebase()
        self.last_mpki = None
        masks = self.masks()
        if self.resctrl is not None:
            self.resctrl.group("fg").set_mask(masks[self.fg_name])
            self.resctrl.group("bg").set_mask(masks[self.bg_name])
        return masks

    def _stable(self, mpki):
        if self.comparison == "per-step" or self.baseline_mpki is None:
            reference = self.last_mpki
        else:
            reference = self.baseline_mpki
        scale = max(abs(reference), 1e-9)
        return (mpki - reference) / scale < self.thr3

    def masks(self):
        """Current way masks: fg's allocation, the complement for every
        background peer (peers share one partition)."""
        fg_mask = WayMask.contiguous(self.fg_ways, 0, self.llc_ways)
        bg_mask = WayMask.contiguous(
            self.llc_ways - self.fg_ways, self.fg_ways, self.llc_ways
        )
        out = {self.fg_name: fg_mask}
        for name in self.bg_names:
            out[name] = bg_mask
        return out

    def _record(self, now_s, reason, mpki):
        self.actions.append(
            ControllerAction(time_s=now_s, fg_ways=self.fg_ways, reason=reason, mpki=mpki)
        )

    @property
    def fg_mb(self):
        return self.fg_ways * 0.5
