"""Thrash-containment partitioning (Xie & Loh), related work [38].

"Xie and Loh further use the LLC measurements to partition the cache
according to their classification of applications as thrashing or
non-thrashing." A *thrashing* application touches far more data than any
cache share it could hold, so giving it capacity only destroys its
neighbours: the policy confines all thrashers to one small shared
partition and leaves the rest of the cache to applications that can use
it.

This is the second baseline (after UCP) the paper's measured results are
implicitly contrasted with; `run_thrash_containment` makes the contrast
explicit in the ablation benches.
"""

from dataclasses import dataclass

from repro.cache.llc import WayMask
from repro.util.errors import ValidationError

# An app is thrashing when even the full LLC leaves most of its accesses
# missing (its reuse distances exceed the cache).
THRASH_MISS_RATIO = 0.5
# ...and it is hammering the cache hard enough to matter.
THRASH_MIN_APKI = 8.0

# The containment partition's size (Xie & Loh use a small fixed slice).
CONTAINMENT_WAYS = 1


def is_thrashing(app, capacity_mb=6.0):
    """Classify one application from its model (UMON-equivalent data)."""
    return (
        app.miss_ratio(capacity_mb) >= THRASH_MISS_RATIO
        and app.llc_apki >= THRASH_MIN_APKI
    )


@dataclass(frozen=True)
class ThrashPlan:
    """The policy's division of the cache."""

    thrashing: tuple  # names confined to the containment partition
    containment_mask: object  # WayMask (None if nobody thrashes)
    main_mask: object  # WayMask for everyone else

    def mask_for(self, app):
        if app.name in self.thrashing:
            return self.containment_mask
        return self.main_mask


def plan_containment(apps, llc_ways=12, containment_ways=CONTAINMENT_WAYS):
    """Build the thrash-containment plan for a set of applications."""
    if not apps:
        raise ValidationError("need at least one application")
    if not 1 <= containment_ways < llc_ways:
        raise ValidationError("containment partition must leave main ways")
    thrashing = tuple(sorted(a.name for a in apps if is_thrashing(a)))
    if not thrashing:
        full = WayMask.full(llc_ways)
        return ThrashPlan(thrashing=(), containment_mask=None, main_mask=full)
    containment = WayMask.contiguous(
        containment_ways, llc_ways - containment_ways, llc_ways
    )
    main = WayMask.contiguous(llc_ways - containment_ways, 0, llc_ways)
    return ThrashPlan(
        thrashing=thrashing, containment_mask=containment, main_mask=main
    )


def run_thrash_containment(machine, fg, bg, **kwargs):
    """Run a pair under the thrash-containment policy."""
    from repro.core.policies import PolicyOutcome
    from repro.runtime.harness import paper_pair_allocations

    plan = plan_containment([fg, bg], llc_ways=machine.config.llc_ways)
    fg_alloc, bg_alloc = paper_pair_allocations(
        fg, bg, llc_ways=machine.config.llc_ways
    )
    fg_mask = plan.mask_for(fg)
    bg_mask = plan.mask_for(bg)
    pair = machine.run_pair(
        fg,
        bg,
        fg_alloc.with_mask(fg_mask),
        bg_alloc.with_mask(bg_mask),
        **kwargs,
    )
    return PolicyOutcome(
        "thrash-containment",
        fg.name,
        bg.name,
        fg_mask.count,
        bg_mask.count,
        pair,
    )
