"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` in environments whose
setuptools lacks the modern editable-install path (no ``wheel`` package).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
